"""Blood glucose management system (BGMS) case study.

Reproduces the paper's end-to-end scenario on the full 12-patient synthetic
cohort: attack heterogeneity across patients (Appendix A), the benign
normal-to-abnormal ratios (Figure 4), the vulnerability clusters (Table II),
and the selective-training comparison for kNN and OneClassSVM (Figures 7/8).

This is the heaviest example (roughly 10-15 minutes on a laptop CPU).  Reduce
``TRAIN_DAYS`` or increase the attack stride to make it faster.
"""

from repro.attacks import AttackCampaign
from repro.data import expected_less_vulnerable_labels, generate_cohort
from repro.detectors import KNNClassifierDetector, OneClassSVMDetector
from repro.eval import (
    DetectorSpec,
    SelectiveTrainingExperiment,
    attack_success_report,
    benign_ratio_by_patient,
    render_attack_success,
    render_cluster_table,
    render_headline_claims,
    render_metric_figure,
    render_ratio_figure,
)
from repro.glucose import GlucoseModelZoo
from repro.risk import RiskProfilingFramework, SelectionPlanner

TRAIN_DAYS = 4
TEST_DAYS = 2


def main() -> None:
    cohort = generate_cohort(train_days=TRAIN_DAYS, test_days=TEST_DAYS, seed=7)
    print(f"Cohort: {len(cohort)} patients, subsets A and B")

    zoo = GlucoseModelZoo(predictor_kwargs=dict(epochs=4, hidden_size=12), seed=3)
    zoo.fit(cohort)

    # Benign data heterogeneity (paper Figure 4).
    print(render_ratio_figure(benign_ratio_by_patient(cohort)))

    # Risk profiling over the training split (framework steps 1-4).
    framework = RiskProfilingFramework(zoo, campaign=AttackCampaign(zoo, stride=4))
    assessment = framework.assess(cohort, split="train")
    print(render_cluster_table(assessment))

    # Attack heterogeneity on the held-out split (paper Appendix A).
    test_campaign = AttackCampaign(zoo, stride=3).run_cohort(cohort, split="test")
    print(render_attack_success(attack_success_report(test_campaign), "normal_to_hyper"))

    # Selective-training comparison (paper Figures 7 and 8) for the two point
    # detectors; MAD-GAN is exercised by the benchmark suite instead because
    # of its training cost.
    planner = SelectionPlanner(
        all_labels=sorted(record.label for record in cohort),
        less_vulnerable=expected_less_vulnerable_labels(),
        random_runs=3,
        seed=11,
    )
    experiment = SelectiveTrainingExperiment(
        train_campaign=assessment.campaign,
        test_campaign=test_campaign,
        detector_factories={
            "kNN": DetectorSpec(lambda: KNNClassifierDetector(n_neighbors=7), unit="sample"),
            "OneClassSVM": DetectorSpec(
                lambda: OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0),
                unit="sample",
            ),
        },
    )
    result = experiment.run(planner.plan())
    print(render_metric_figure(result, "recall", "Recall"))
    print(render_metric_figure(result, "precision", "Precision"))
    print(render_headline_claims(result))


if __name__ == "__main__":
    main()
