"""Explore the URET-style evasion attack on a single patient.

Shows how to build custom transformation sets, constraints, and explorers, and
how a patient's glycemic control changes the attack's success rate — the
heterogeneity that motivates the paper's risk profiling framework.

Run with:  python examples/attack_playground.py
"""

import numpy as np

from repro.attacks import (
    BeamExplorer,
    EvasionAttack,
    GreedyExplorer,
    MaxModifiedSamplesConstraint,
    CompositeConstraint,
    SuffixLevelTransformer,
    SuffixOffsetTransformer,
    constraint_for_scenario,
)
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo, Scenario


def attack_success_rate(attack, windows, scenario, limit=40):
    results = [attack.attack_window(window, scenario) for window in windows[:limit]]
    eligible = [result for result in results if result.eligible]
    if not eligible:
        return float("nan"), 0
    return float(np.mean([result.success for result in eligible])), len(eligible)


def main() -> None:
    profiles = [make_patient_profile("A", 5), make_patient_profile("A", 2)]
    cohort = SyntheticOhioT1DM(train_days=3, test_days=1, seed=21, profiles=profiles).generate()
    zoo = GlucoseModelZoo(predictor_kwargs=dict(epochs=3, hidden_size=10), seed=2)
    zoo.fit(cohort)

    for label in ("A_5", "A_2"):
        record = cohort[label]
        windows, _, _ = zoo.dataset.from_record(record, "test")
        predictor = zoo.model_for(label)

        # Default attack: greedy explorer, paper constraint set.
        default_attack = EvasionAttack(predictor)
        rate, eligible = attack_success_rate(default_attack, windows, Scenario.POSTPRANDIAL)
        print(f"{label}: default greedy attack   success={rate:.2f} over {eligible} eligible windows")

        # Stealthier adversary: may only modify the two most recent samples and
        # only nudge them upward by bounded offsets.
        stealthy_attack = EvasionAttack(
            predictor,
            transformers=[
                SuffixLevelTransformer(levels=(185.0, 220.0), suffix_lengths=(1, 2)),
                SuffixOffsetTransformer(offsets=(40.0, 80.0), suffix_lengths=(1, 2)),
            ],
            explorer=BeamExplorer(beam_width=2, max_depth=2),
        )
        constraint = CompositeConstraint(
            [constraint_for_scenario(Scenario.POSTPRANDIAL), MaxModifiedSamplesConstraint(2)]
        )
        results = [
            stealthy_attack.attack_window(window, Scenario.POSTPRANDIAL, constraint=constraint)
            for window in windows[:40]
        ]
        eligible = [result for result in results if result.eligible]
        rate = float(np.mean([result.success for result in eligible])) if eligible else float("nan")
        print(f"{label}: stealthy beam attack    success={rate:.2f} over {len(eligible)} eligible windows")

        # Inspect one successful attack in detail.
        success = next((result for result in results if result.success), None)
        if success is not None:
            print(
                f"  example: benign prediction {success.benign_prediction:.0f} mg/dL -> "
                f"adversarial {success.adversarial_prediction:.0f} mg/dL via {success.path}"
            )


if __name__ == "__main__":
    main()
