"""Streaming demo: live glucose serving with a mid-stream attack and detection.

The example trains the aggregate forecaster on a small synthetic cohort, fits
a kNN anomaly detector on benign training measurements, then *replays* every
patient's test trace through the streaming serving subsystem one CGM sample at
a time.  Halfway through, a man-in-the-middle attacker starts tampering one
patient's stream using the URET evasion engine on the live context window; the
demo prints the attacked stretch of the trace tick by tick (benign vs
delivered CGM, forecast, detector verdict) and closes with the trace-level
detection summary — including detection latency, a quantity only the
streaming evaluation can measure.

Run with:  PYTHONPATH=src python examples/streaming_demo.py
(Expected runtime: well under a minute on a laptop CPU.)
"""

import numpy as np

from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.detectors import KNNDistanceDetector
from repro.glucose import GlucoseModelZoo
from repro.serving import AttackEpisode, OnlineAttacker, StreamReplayer

ATTACKED_PATIENT = "A_5"
EPISODE = AttackEpisode(start=40, duration=15)
REPLAY_TICKS = 90


def main() -> None:
    # 1. Data + target model: every patient streams through the shared
    #    aggregate forecaster, so the scheduler serves the cohort in one lane.
    profiles = [
        make_patient_profile("A", 5),  # excellent control (the attack target)
        make_patient_profile("A", 0),  # fair control
        make_patient_profile("A", 2),  # very poor control
    ]
    cohort = SyntheticOhioT1DM(train_days=2, test_days=1, seed=11, profiles=profiles).generate()
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=2, hidden_size=12), train_personalized=False, seed=3
    )
    zoo.fit(cohort)
    print(f"Serving {len(cohort)} patients through the aggregate forecaster.")

    # 2. A per-measurement anomaly detector fitted on benign training samples.
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=7).fit(train_windows[::3, -1:, :])

    # 3. The man-in-the-middle: tamper A_5's stream for 15 ticks mid-replay.
    attacker = OnlineAttacker({ATTACKED_PATIENT: [EPISODE]})

    # 4. Replay the test traces through the scheduler, live.
    replayer = StreamReplayer(zoo, detectors={"kNN": (detector, "sample")}, attacker=attacker)
    report = replayer.replay(cohort, split="test", max_ticks=REPLAY_TICKS)

    # 5. Show the attacked stretch of the target's stream.
    trace = report.sessions[ATTACKED_PATIENT]
    benign_cgm = cohort[ATTACKED_PATIENT].features("test")[:REPLAY_TICKS, 0]
    print(f"\n{ATTACKED_PATIENT}'s stream around the attack episode "
          f"(ticks {EPISODE.start - 3}..{EPISODE.end + 2}):")
    print("  tick  benign  delivered  forecast  verdict")
    for outcome in trace.ticks[EPISODE.start - 3 : EPISODE.end + 3]:
        verdict = outcome.verdicts["kNN"]
        marker = "TAMPERED" if outcome.attacked else ""
        flag = "FLAGGED" if verdict.flagged else "-"
        forecast = "warming" if outcome.prediction is None else f"{outcome.prediction:7.1f}"
        print(
            f"  {outcome.tick:4d}  {benign_cgm[outcome.tick]:6.1f}  "
            f"{outcome.sample[0]:9.1f}  {forecast:>8}  {flag:7s}  {marker}"
        )

    # 6. Trace-level detection summary.
    matrix = report.confusion("kNN")
    print(f"\nTick-level confusion (tampered = positive): {matrix}")
    print(f"Per-trace TP/FN breakdown: {report.trace_breakdown('kNN')}")
    outcome = report.episode_outcomes("kNN")[0]
    if outcome.detected:
        print(
            f"Episode detected: first flag at tick {outcome.first_flag_tick} "
            f"-> detection latency {outcome.latency_ticks:.0f} tick(s) "
            f"({outcome.latency_ticks * 5:.0f} minutes of CGM time)"
        )
    else:
        print("Episode went undetected.")
    print(f"Mean CGM shift while tampered: "
          f"{np.mean([record.shift for record in attacker.records]):+.1f} mg/dL "
          f"over {len(attacker.records)} manipulated samples")


if __name__ == "__main__":
    main()
