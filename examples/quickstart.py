"""Quickstart: run the risk profiling framework end to end on a small cohort.

The example builds a four-patient synthetic cohort, trains the target glucose
forecasters, simulates the evasion attack, builds risk profiles, clusters the
patients into vulnerability groups, and trains a kNN detector selectively on
the less-vulnerable cluster — comparing it against indiscriminate training.

Run with:  python examples/quickstart.py
(Expected runtime: a couple of minutes on a laptop CPU.)
"""

from repro.attacks import AttackCampaign
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.detectors import KNNClassifierDetector
from repro.eval import confusion_matrix, render_cluster_table
from repro.glucose import GlucoseModelZoo
from repro.risk import RiskProfilingFramework


def main() -> None:
    # 1. Synthetic OhioT1DM-like data: two well-controlled and two poorly
    #    controlled patients.
    profiles = [
        make_patient_profile("A", 5),  # excellent control
        make_patient_profile("B", 2),  # excellent control
        make_patient_profile("A", 0),  # fair control
        make_patient_profile("A", 2),  # very poor control
    ]
    cohort = SyntheticOhioT1DM(train_days=3, test_days=1, seed=7, profiles=profiles).generate()
    print(f"Generated {len(cohort)} patients: {', '.join(cohort.labels)}")

    # 2. Train the target glucose forecasters (the DNN under attack).
    zoo = GlucoseModelZoo(predictor_kwargs=dict(epochs=3, hidden_size=10), seed=1)
    zoo.fit(cohort)
    print("Forecaster RMSE (mg/dL):", {k: round(v, 1) for k, v in zoo.evaluate(cohort).rmse.items()})

    # 3-4. Risk profiling: simulate the attack, build risk profiles, cluster.
    framework = RiskProfilingFramework(zoo, campaign=AttackCampaign(zoo, stride=6))
    assessment = framework.assess(cohort, split="train")
    print(render_cluster_table(assessment))

    # 5. Selective training: fit a kNN detector on the less-vulnerable cluster
    #    and compare against indiscriminate training on all patients.
    test_campaign = AttackCampaign(zoo, stride=4).run_cohort(cohort, split="test")
    test_samples, test_labels, _ = test_campaign.sample_dataset()

    for name, patient_set in [
        ("less vulnerable (selective)", assessment.less_vulnerable),
        ("all patients (indiscriminate)", cohort.labels),
    ]:
        train_samples, train_labels, _ = assessment.campaign.sample_dataset(patient_labels=patient_set)
        detector = KNNClassifierDetector().fit(train_samples, train_labels)
        matrix = confusion_matrix(test_labels, detector.predict(test_samples))
        print(
            f"kNN trained on {name:<32} recall={matrix.recall:.3f} "
            f"precision={matrix.precision:.3f} f1={matrix.f1:.3f}"
        )


if __name__ == "__main__":
    main()
