"""Plug a custom anomaly detector into the selective-training pipeline.

The paper's framework is detector-agnostic: any static detector that exposes
``fit`` / ``scores`` / ``predict`` can be trained selectively on the less
vulnerable cluster.  This example implements a simple robust z-score detector,
registers it next to the built-in kNN, and runs both through the
selective-training experiment.

Run with:  python examples/custom_detector.py
"""

from typing import Optional

import numpy as np

from repro.attacks import AttackCampaign
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.detectors import AnomalyDetector, KNNClassifierDetector, ThresholdCalibrator
from repro.eval import DetectorSpec, SelectiveTrainingExperiment, render_metric_figure
from repro.glucose import GlucoseModelZoo
from repro.risk import SelectionPlanner


class RobustZScoreDetector(AnomalyDetector):
    """Flag samples whose CGM value deviates from the benign median by > k MAD."""

    name = "robust-z"

    def __init__(self, threshold: float = 5.0):
        self.threshold = threshold
        self.median_: Optional[float] = None
        self.mad_: Optional[float] = None

    def fit(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> "RobustZScoreDetector":
        windows = np.asarray(windows, dtype=np.float64)
        if labels is not None:
            windows = windows[np.asarray(labels) == 0]
        cgm_values = windows[:, -1, 0]
        self.median_ = float(np.median(cgm_values))
        self.mad_ = float(np.median(np.abs(cgm_values - self.median_)) + 1e-9)
        return self

    def scores(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        return np.abs(windows[:, -1, 0] - self.median_) / self.mad_

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return (self.scores(windows) > self.threshold).astype(int)


def main() -> None:
    profiles = [
        make_patient_profile("A", 5),
        make_patient_profile("B", 2),
        make_patient_profile("A", 0),
        make_patient_profile("A", 2),
    ]
    cohort = SyntheticOhioT1DM(train_days=3, test_days=1, seed=5, profiles=profiles).generate()
    zoo = GlucoseModelZoo(predictor_kwargs=dict(epochs=3, hidden_size=10), seed=4)
    zoo.fit(cohort)

    train_campaign = AttackCampaign(zoo, stride=5).run_cohort(cohort, split="train")
    test_campaign = AttackCampaign(zoo, stride=4).run_cohort(cohort, split="test")

    planner = SelectionPlanner(
        all_labels=sorted(cohort.labels), less_vulnerable=["A_5", "B_2"], random_runs=2, seed=0
    )
    experiment = SelectiveTrainingExperiment(
        train_campaign=train_campaign,
        test_campaign=test_campaign,
        detector_factories={
            "kNN": DetectorSpec(lambda: KNNClassifierDetector(n_neighbors=7), unit="sample"),
            "robust-z": DetectorSpec(lambda: RobustZScoreDetector(threshold=5.0), unit="sample"),
        },
    )
    result = experiment.run(planner.plan())
    print(render_metric_figure(result, "recall", "Recall"))
    print(render_metric_figure(result, "precision", "Precision"))


if __name__ == "__main__":
    main()
