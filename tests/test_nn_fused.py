"""Equivalence tests for the graph-free fused training engine.

The regression guarantee (docs/architecture.md): for every layer with a
hand-written analytic backward (`fused_forward_train` / `fused_backward_train`
/ `Module.fused_grads`), the fused gradients — parameter gradients AND input
gradients — must match the reverse-mode autodiff graph within 1e-8, across
batch sizes and sequence lengths; and fixed-seed training runs of
`GlucosePredictor.fit` and `MADGANDetector.fit` must produce step-for-step
matching loss curves on the fused (`use_fast_path=True`) and graph (`False`)
engines.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.detectors import MADGANDetector
from repro.detectors.madgan import SequenceDiscriminator, SequenceGenerator
from repro.glucose.predictor import GlucosePredictor
from repro.nn import (
    Activation,
    Adam,
    BiLSTM,
    Dense,
    Dropout,
    FusedTrainer,
    LSTM,
    Module,
    Sequential,
    Tensor,
    fused_bce_with_logits_loss,
    fused_mse_loss,
)
from repro.nn.functional import binary_cross_entropy_with_logits, mse_loss

GRADIENT_TOLERANCE = 1e-8
LOSS_CURVE_TOLERANCE = 1e-8


def graph_reference(layer, x, grad_out):
    """Autodiff forward + backward: (output, input grad, parameter grads)."""
    layer.zero_grad()
    inputs = Tensor(x, requires_grad=True)
    out = layer(inputs)
    out.backward(grad_out)
    param_grads = {
        name: parameter.grad.copy()
        for name, parameter in layer.named_parameters().items()
    }
    output = out.numpy(copy=True)
    input_grad = inputs.grad.copy()
    layer.zero_grad()
    return output, input_grad, param_grads


def fused_gap(layer, x, grad_out):
    """Worst |fused - graph| across output, input grad, and every param grad."""
    graph_out, graph_input_grad, graph_param_grads = graph_reference(layer, x, grad_out)
    fused_out, fused_input_grad = layer.fused_grads(x, grad_out)
    worst = max(
        float(np.abs(fused_out - graph_out).max()),
        float(np.abs(fused_input_grad - graph_input_grad).max()),
    )
    for name, parameter in layer.named_parameters().items():
        assert parameter.grad is not None, f"{name} received no fused gradient"
        worst = max(worst, float(np.abs(parameter.grad - graph_param_grads[name]).max()))
    layer.zero_grad()
    return worst


class TestFusedLayerGradients:
    @pytest.mark.parametrize(
        "activation", [None, "linear", "tanh", "sigmoid", "relu", "leaky_relu"]
    )
    @pytest.mark.parametrize("batch_size", [1, 3, 17])
    def test_dense(self, rng, activation, batch_size):
        layer = Dense(6, 4, activation=activation, seed=3)
        x = rng.normal(size=(batch_size, 6))
        grad_out = rng.normal(size=(batch_size, 4))
        assert fused_gap(layer, x, grad_out) <= GRADIENT_TOLERANCE

    @pytest.mark.parametrize("return_sequences", [False, True])
    @pytest.mark.parametrize("reverse", [False, True])
    @pytest.mark.parametrize("batch_size,timesteps", [(1, 1), (3, 5), (9, 12)])
    def test_lstm(self, rng, return_sequences, reverse, batch_size, timesteps):
        layer = LSTM(4, 8, return_sequences=return_sequences, reverse=reverse, seed=7)
        x = rng.normal(size=(batch_size, timesteps, 4))
        out_shape = (
            (batch_size, timesteps, 8) if return_sequences else (batch_size, 8)
        )
        grad_out = rng.normal(size=out_shape)
        assert fused_gap(layer, x, grad_out) <= GRADIENT_TOLERANCE

    @pytest.mark.parametrize("batch_size,timesteps", [(1, 1), (5, 12)])
    def test_bilstm(self, rng, batch_size, timesteps):
        layer = BiLSTM(4, 8, seed=7)
        x = rng.normal(size=(batch_size, timesteps, 4))
        grad_out = rng.normal(size=(batch_size, 16))
        assert fused_gap(layer, x, grad_out) <= GRADIENT_TOLERANCE

    def test_activation_layer(self, rng):
        layer = Activation("tanh")
        x = rng.normal(size=(7, 5))
        grad_out = rng.normal(size=(7, 5))
        out, grad_in = layer.fused_grads(x, grad_out)
        graph_out, graph_grad, _ = graph_reference(layer, x, grad_out)
        assert np.abs(out - graph_out).max() <= GRADIENT_TOLERANCE
        assert np.abs(grad_in - graph_grad).max() <= GRADIENT_TOLERANCE

    @pytest.mark.parametrize("batch_size", [2, 13])
    def test_forecaster_stack(self, rng, batch_size):
        model = Sequential(
            BiLSTM(4, 8, seed=1),
            Dense(16, 8, activation="tanh", seed=2),
            Dense(8, 1, seed=3),
        )
        x = rng.normal(size=(batch_size, 12, 4))
        grad_out = rng.normal(size=(batch_size, 1))
        assert fused_gap(model, x, grad_out) <= GRADIENT_TOLERANCE

    def test_sequence_generator(self, rng):
        generator = SequenceGenerator(latent_dim=3, hidden_size=6, n_features=4, seed=5)
        latent = rng.normal(size=(5, 12, 3))
        grad_out = rng.normal(size=(5, 12, 4))
        assert fused_gap(generator, latent, grad_out) <= GRADIENT_TOLERANCE

    def test_sequence_discriminator(self, rng):
        discriminator = SequenceDiscriminator(n_features=4, hidden_size=6, seed=5)
        windows = rng.normal(size=(5, 12, 4))
        grad_out = rng.normal(size=(5, 1))
        assert fused_gap(discriminator, windows, grad_out) <= GRADIENT_TOLERANCE

    def test_property_random_shapes(self):
        rng = np.random.default_rng(11)
        for _ in range(6):
            batch = int(rng.integers(1, 9))
            timesteps = int(rng.integers(1, 14))
            features = int(rng.integers(1, 6))
            hidden = int(rng.integers(2, 10))
            layer = LSTM(
                features,
                hidden,
                return_sequences=bool(rng.integers(0, 2)),
                reverse=bool(rng.integers(0, 2)),
                seed=int(rng.integers(0, 1000)),
            )
            x = rng.normal(size=(batch, timesteps, features))
            out_shape = (
                (batch, timesteps, hidden) if layer.return_sequences else (batch, hidden)
            )
            grad_out = rng.normal(size=out_shape)
            assert fused_gap(layer, x, grad_out) <= GRADIENT_TOLERANCE


class TestFusedLossHeads:
    def test_mse_matches_graph(self, rng):
        predictions = rng.normal(size=(9, 1))
        targets = rng.normal(size=(9, 1))
        graph_pred = Tensor(predictions, requires_grad=True)
        loss = mse_loss(graph_pred, Tensor(targets))
        loss.backward()
        value, grad = fused_mse_loss(predictions, targets)
        assert abs(value - loss.item()) <= GRADIENT_TOLERANCE
        assert np.abs(grad - graph_pred.grad).max() <= GRADIENT_TOLERANCE

    @pytest.mark.parametrize("target_value", [0.0, 1.0])
    def test_bce_with_logits_matches_graph(self, rng, target_value):
        logits = rng.normal(size=(11, 1)) * 4.0
        targets = np.full((11, 1), target_value)
        graph_logits = Tensor(logits, requires_grad=True)
        loss = binary_cross_entropy_with_logits(graph_logits, Tensor(targets))
        loss.backward()
        value, grad = fused_bce_with_logits_loss(logits, targets)
        assert abs(value - loss.item()) <= GRADIENT_TOLERANCE
        assert np.abs(grad - graph_logits.grad).max() <= GRADIENT_TOLERANCE

    def test_unknown_loss_name_rejected(self):
        layer = Dense(2, 1, seed=0)
        with pytest.raises(ValueError, match="unknown fused loss"):
            FusedTrainer(layer, Adam(layer.parameters()), loss="huber")

    def test_invalid_gradient_clip_rejected(self):
        layer = Dense(2, 1, seed=0)
        with pytest.raises(ValueError, match="gradient_clip"):
            FusedTrainer(layer, Adam(layer.parameters()), gradient_clip=0.0)


class TestFusedPlumbing:
    def test_fused_grads_validates_grad_output_shape(self, rng):
        layer = Dense(4, 2, seed=0)
        with pytest.raises(ValueError, match="grad_output"):
            layer.fused_grads(rng.normal(size=(3, 4)), rng.normal(size=(3, 5)))

    def test_base_module_has_no_fused_path(self):
        class Custom(Module):
            def forward(self, inputs):
                return inputs

        with pytest.raises(NotImplementedError, match="no fused training path"):
            Custom().fused_forward_train(np.zeros((1, 2)))

    def test_dropout_identity_in_eval_and_rejected_in_training(self, rng):
        layer = Dropout(rate=0.5, seed=0)
        x = rng.normal(size=(4, 3))
        layer.eval()
        out, cache = layer.fused_forward_train(x)
        np.testing.assert_array_equal(out, x)
        grad = layer.fused_backward_train(x, cache)
        np.testing.assert_array_equal(grad, x)
        layer.train()
        with pytest.raises(NotImplementedError, match="Dropout"):
            layer.fused_forward_train(x)

    def test_two_branch_accumulation_matches_graph(self, rng):
        """The GAN discriminator pattern: two backward passes into one .grad."""
        layer = Dense(5, 2, activation="tanh", seed=1)
        x1 = rng.normal(size=(6, 5))
        x2 = rng.normal(size=(4, 5))
        g1 = rng.normal(size=(6, 2))
        g2 = rng.normal(size=(4, 2))

        layer.zero_grad()
        t1 = Tensor(x1)
        t2 = Tensor(x2)
        layer(t1).backward(g1)
        layer(t2).backward(g2)
        graph_grads = {
            name: parameter.grad.copy()
            for name, parameter in layer.named_parameters().items()
        }

        layer.zero_grad()
        layer.fused_grads(x1, g1)
        layer.fused_grads(x2, g2)
        for name, parameter in layer.named_parameters().items():
            assert np.abs(parameter.grad - graph_grads[name]).max() <= GRADIENT_TOLERANCE
        layer.zero_grad()

    def test_frozen_parameters_receive_no_gradients(self, rng):
        """requires_grad_(False) skips weight grads but still routes input grads."""
        layer = LSTM(3, 6, seed=2)
        layer.requires_grad_(False)
        try:
            x = rng.normal(size=(4, 7, 3))
            grad_out = rng.normal(size=(4, 6))
            _, grad_in = layer.fused_grads(x, grad_out)
            assert grad_in.shape == x.shape
            assert np.abs(grad_in).max() > 0
            for parameter in layer.parameters():
                assert parameter.grad is None
        finally:
            layer.requires_grad_(True)

    def test_gradient_buffers_are_reused(self, rng):
        layer = Dense(4, 3, seed=0)
        x = rng.normal(size=(5, 4))
        grad_out = rng.normal(size=(5, 3))
        layer.fused_grads(x, grad_out)
        first_buffer = layer.weight.grad
        layer.zero_grad()
        layer.fused_grads(x, grad_out)
        assert layer.weight.grad is first_buffer  # preallocated buffer reused
        layer.zero_grad()


class TestFusedTrainer:
    def test_step_matches_graph_training_step(self, rng):
        """One fused Adam step == one graph Adam step (same clip, same update)."""
        x = rng.normal(size=(16, 12, 4))
        y = rng.normal(size=(16, 1))

        def build():
            return Sequential(
                BiLSTM(4, 6, seed=1),
                Dense(12, 6, activation="tanh", seed=2),
                Dense(6, 1, seed=3),
            )

        graph_model = build()
        optimizer = Adam(graph_model.parameters(), learning_rate=0.01)
        optimizer.zero_grad()
        loss = mse_loss(graph_model(Tensor(x)), Tensor(y))
        loss.backward()
        optimizer.clip_gradients(5.0)
        optimizer.step()

        fused_model = build()
        trainer = FusedTrainer(
            fused_model,
            Adam(fused_model.parameters(), learning_rate=0.01),
            loss="mse",
            gradient_clip=5.0,
        )
        fused_loss = trainer.step(x, y)

        assert abs(fused_loss - loss.item()) <= GRADIENT_TOLERANCE
        graph_state = graph_model.state_dict()
        for name, value in fused_model.state_dict().items():
            assert np.abs(value - graph_state[name]).max() <= GRADIENT_TOLERANCE

    def test_repeated_steps_reduce_loss(self, rng):
        x = rng.normal(size=(32, 8, 3))
        y = (x[:, -1, :1] * 0.5) + 0.1
        model = Sequential(LSTM(3, 8, seed=4), Dense(8, 1, seed=5))
        trainer = FusedTrainer(model, Adam(model.parameters(), learning_rate=0.01))
        losses = [trainer.step(x, y) for _ in range(30)]
        assert losses[-1] < losses[0]


class TestPredictorFitParity:
    @pytest.fixture(scope="class")
    def fit_pair(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        windows, targets, _ = tiny_zoo.dataset.from_record(record, "train")
        windows, targets = windows[:200], targets[:200]
        predictors = {}
        for fast in (False, True):
            predictor = GlucosePredictor(
                epochs=3, hidden_size=8, seed=21, use_fast_path=fast
            )
            predictor.fit(windows, targets)
            predictors[fast] = predictor
        return predictors

    def test_loss_curves_match_step_for_step(self, fit_pair):
        graph_losses = np.asarray(fit_pair[False].history_.epoch_losses)
        fused_losses = np.asarray(fit_pair[True].history_.epoch_losses)
        assert graph_losses.shape == fused_losses.shape
        assert np.abs(graph_losses - fused_losses).max() <= LOSS_CURVE_TOLERANCE

    def test_final_weights_match(self, fit_pair):
        graph_state = fit_pair[False].state_dict()
        for name, value in fit_pair[True].state_dict().items():
            assert np.abs(value - graph_state[name]).max() <= 1e-6

    def test_fused_and_graph_predictions_agree(self, fit_pair, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        graph_predictions = fit_pair[False].predict(windows[:20])
        fused_predictions = fit_pair[True].predict(windows[:20])
        assert np.abs(graph_predictions - fused_predictions).max() <= 1e-4


class TestMADGANFitParity:
    @pytest.fixture(scope="class")
    def fit_pair(self, tiny_zoo, tiny_cohort):
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        windows = windows[:160]
        detectors = {}
        for fast in (False, True):
            detector = MADGANDetector(
                epochs=2, hidden_size=8, inversion_steps=3, seed=13, use_fast_path=fast
            )
            detector.fit(windows)
            detectors[fast] = detector
        return detectors

    def test_loss_curves_match_step_for_step(self, fit_pair):
        for attribute in ("generator_losses", "discriminator_losses"):
            graph_losses = np.asarray(getattr(fit_pair[False].history_, attribute))
            fused_losses = np.asarray(getattr(fit_pair[True].history_, attribute))
            assert graph_losses.shape == fused_losses.shape
            assert np.abs(graph_losses - fused_losses).max() <= LOSS_CURVE_TOLERANCE

    def test_trained_weights_match(self, fit_pair):
        for module in ("generator", "discriminator"):
            graph_state = getattr(fit_pair[False], module).state_dict()
            for name, value in getattr(fit_pair[True], module).state_dict().items():
                assert np.abs(value - graph_state[name]).max() <= 1e-6

    def test_calibrated_thresholds_match(self, fit_pair):
        assert (
            abs(
                fit_pair[False].calibrator.threshold_
                - fit_pair[True].calibrator.threshold_
            )
            <= 1e-4
        )

    def test_generator_step_keeps_discriminator_frozen(self, fit_pair):
        """After a fused fit, the discriminator must be trainable again."""
        detector = fit_pair[True]
        assert all(
            parameter.requires_grad
            for parameter in detector.discriminator.parameters()
        )


class TestTrainingParitySmoke:
    """Wire scripts/check_parity.py's training parity into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_training", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_training_parity_passes(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_training_parity(tiny_zoo, tiny_cohort)
        assert report["gradient_gap"] <= check_parity.GRADIENT_TOLERANCE
        assert report["predictor_loss_gap"] <= check_parity.LOSS_CURVE_TOLERANCE
        assert report["madgan_loss_gap"] <= check_parity.LOSS_CURVE_TOLERANCE
