"""Crash recovery: scheduler snapshots resume bitwise; snapshot files are safe.

Pins the contract of :mod:`repro.serving.recovery` (see ``docs/recovery.md``):

* ``StreamScheduler.snapshot()`` → ``StreamScheduler.restore()`` continues
  ticking **bitwise identically** to the uninterrupted scheduler, for every
  carried state family — predictor lane slots (BiLSTM recurrent stream
  state), sample rings, the LSTM-VAE projection ring and Gaussian-HMM
  partial-alpha band, MAD-GAN's warm-started inversion state (including its
  RNG position), and a :class:`SessionHealth` snapshotted mid-quarantine
  with a non-zero backoff,
* snapshot files are versioned + checksummed: truncation, corruption, bad
  magic, trailing bytes, and unknown versions are rejected loudly
  (:class:`SnapshotError`) instead of deserializing garbage state, and
* :class:`SchedulerCheckpointer` rotates atomically-written files and loads
  the newest one.

The end-to-end recovery gate (kill-mix at 2/4 shards under full chaos) is
wired in via ``scripts/check_parity.py::run_recovery_smoke`` at the bottom.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.detectors import KNNDistanceDetector
from repro.detectors.streaming import StreamingDetector
from repro.serving import (
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    SchedulerCheckpointer,
    SnapshotError,
    StreamScheduler,
)
from repro.serving.recovery import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    read_snapshot,
    write_snapshot,
)

HISTORY = 12


def tick_fingerprint(outcomes):
    """Bitwise-comparable view of one tick's outcomes."""
    return tuple(
        (
            session_id,
            outcome.tick,
            outcome.sample.tobytes(),
            None if outcome.prediction is None else float(outcome.prediction),
            tuple(
                (name, verdict.warming, verdict.flagged, verdict.score)
                for name, verdict in sorted(outcome.verdicts.items())
            ),
            outcome.dropped,
            outcome.ingress,
        )
        for session_id, outcome in sorted(outcomes.items())
    )


def timeline_of(scheduler, session_id):
    health = scheduler._sessions[session_id].health
    if health is None:
        return []
    return [
        (event.tick, str(event.state), event.reason, event.delivered_at, event.backoff)
        for event in health.timeline
    ]


def assert_resumes_bitwise(build, feeds, split_at):
    """Tick to ``split_at``, snapshot, restore, and require bitwise continuation."""
    original = build()
    for tick in range(split_at):
        original.tick(feeds[tick], now=tick)
    snapshot = original.snapshot()
    restored = StreamScheduler.restore(snapshot)
    assert restored.n_sessions == original.n_sessions
    assert restored.n_lanes == original.n_lanes
    for tick in range(split_at, len(feeds)):
        live = tick_fingerprint(original.tick(feeds[tick], now=tick))
        resumed = tick_fingerprint(restored.tick(feeds[tick], now=tick))
        assert resumed == live, f"restored run diverged at tick {tick}"
    for session_id in sorted(original._sessions):
        assert timeline_of(restored, session_id) == timeline_of(original, session_id)
    return original, restored


class TestSchedulerSnapshot:
    @pytest.fixture(scope="class")
    def knn(self, tiny_zoo, tiny_cohort):
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        return KNNDistanceDetector(n_neighbors=5).fit(windows[::4, -1:, :])

    @pytest.fixture(scope="class")
    def feeds(self, tiny_cohort):
        records = list(tiny_cohort)
        return [
            {record.label: record.features("test")[tick] for record in records}
            for tick in range(20)
        ]

    def test_knn_lanes_resume_bitwise(self, tiny_zoo, tiny_cohort, knn, feeds):
        """Predictor lane slots + sample rings + health resume bitwise."""
        records = list(tiny_cohort)

        def build():
            scheduler = StreamScheduler(
                health=HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4),
                ingress=IngressConfig(policy=IngressPolicy.REJECT),
            )
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "knn": StreamingDetector(knn, unit="sample", history=HISTORY)
                    },
                )
            return scheduler

        assert_resumes_bitwise(build, feeds, split_at=7)

    def test_window_brains_resume_bitwise(self, tiny_zoo, tiny_cohort, feeds):
        """LSTM-VAE projection ring + HMM alpha band resume bitwise, warm."""
        from repro.detectors import GaussianHMMDetector, LSTMVAEDetector

        records = list(tiny_cohort)[:2]
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        benign = windows[::4]
        vae = LSTMVAEDetector(epochs=1, hidden_size=8, batch_size=16, seed=0).fit(benign)
        hmm = GaussianHMMDetector(n_states=3, n_iter=3, seed=0).fit(benign)

        def build():
            scheduler = StreamScheduler()
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "vae": StreamingDetector(vae, unit="window", history=HISTORY),
                        "hmm": StreamingDetector(hmm, unit="window", history=HISTORY),
                    },
                )
            return scheduler

        labels = {record.label for record in records}
        feeds = [
            {label: sample for label, sample in feed.items() if label in labels}
            for feed in feeds
        ]
        # Snapshot after warm-up so both carried stream states are non-trivial.
        original, restored = assert_resumes_bitwise(
            build, feeds[:18], split_at=HISTORY + 2
        )
        final = restored.tick(feeds[18], now=18)
        for outcome in final.values():
            for verdict in outcome.verdicts.values():
                assert not verdict.warming and verdict.flagged is not None

    def test_madgan_inversion_state_resumes_bitwise(self, tiny_zoo, tiny_cohort, feeds):
        """Warm-started inversion latents + detector RNG resume bitwise."""
        from repro.detectors import MADGANDetector

        records = list(tiny_cohort)[:2]
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        madgan = MADGANDetector(
            epochs=1,
            hidden_size=8,
            inversion_steps=6,
            warm_inversion_steps=2,
            max_samples=200,
            seed=0,
        ).fit(windows[::4])

        def build():
            scheduler = StreamScheduler()
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "madgan": StreamingDetector(
                            madgan, unit="window", history=HISTORY
                        )
                    },
                )
            return scheduler

        labels = {record.label for record in records}
        feeds = [
            {label: sample for label, sample in feed.items() if label in labels}
            for feed in feeds
        ]
        assert_resumes_bitwise(build, feeds[:17], split_at=HISTORY + 2)

    def test_health_backoff_resumes_bitwise(self, tiny_zoo, tiny_cohort, knn, feeds):
        """A session snapshotted mid-quarantine keeps its backoff countdown."""
        records = list(tiny_cohort)
        victim = records[0].label
        poisoned = []
        for tick, feed in enumerate(feeds):
            feed = dict(feed)
            if tick in (3, 4):  # two rejected deliveries -> quarantine + backoff
                feed[victim] = np.full_like(feed[victim], np.nan)
            poisoned.append(feed)

        def build():
            scheduler = StreamScheduler(
                health=HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4),
                ingress=IngressConfig(policy=IngressPolicy.REJECT),
            )
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "knn": StreamingDetector(knn, unit="sample", history=HISTORY)
                    },
                )
            return scheduler

        probe = build()
        for tick in range(6):
            probe.tick(poisoned[tick], now=tick)
        health = probe._sessions[victim].health
        assert health.backoff_remaining > 0, "fixture never reached a live backoff"
        assert health.quarantines == 1

        original, restored = assert_resumes_bitwise(build, poisoned, split_at=6)
        # The victim must have been re-admitted after the backoff in both runs.
        assert original._sessions[victim].health.readmissions == 1
        assert restored._sessions[victim].health.readmissions == 1

    def test_snapshot_metadata(self, tiny_zoo, tiny_cohort, knn, feeds):
        records = list(tiny_cohort)
        scheduler = StreamScheduler()
        for record in records:
            scheduler.open_session(record.label, tiny_zoo.model_for(record.label))
        for tick in range(3):
            scheduler.tick(feeds[tick], now=tick)
        snapshot = scheduler.snapshot(meta={"ticks_seen": 3})
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.n_sessions_hint() == len(records)
        assert snapshot.meta["ticks_seen"] == 3
        assert len(snapshot.models) == scheduler.n_lanes


class TestSnapshotFiles:
    @pytest.fixture(scope="class")
    def snapshot(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        scheduler = StreamScheduler()
        scheduler.open_session(record.label, tiny_zoo.model_for(record.label))
        for tick in range(3):
            scheduler.tick({record.label: record.features("test")[tick]}, now=tick)
        return scheduler.snapshot()

    def test_file_round_trip_restores(self, snapshot, tmp_path):
        path = tmp_path / "one.snap"
        write_snapshot(snapshot, path)
        loaded = read_snapshot(path)
        restored = StreamScheduler.restore(loaded)
        assert restored.n_sessions == 1

    def test_truncated_file_rejected(self, snapshot, tmp_path):
        path = tmp_path / "trunc.snap"
        write_snapshot(snapshot, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path)

    def test_corrupted_body_rejected(self, snapshot, tmp_path):
        path = tmp_path / "corrupt.snap"
        write_snapshot(snapshot, path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a body byte; the header checksum must catch it
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(path)

    def test_bad_magic_rejected(self, snapshot, tmp_path):
        path = tmp_path / "magic.snap"
        write_snapshot(snapshot, path)
        data = bytearray(path.read_bytes())
        assert data[: len(SNAPSHOT_MAGIC)] == SNAPSHOT_MAGIC
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(path)

    def test_unknown_version_rejected(self, snapshot, tmp_path):
        path = tmp_path / "version.snap"
        write_snapshot(snapshot, path)
        data = bytearray(path.read_bytes())
        data[len(SNAPSHOT_MAGIC)] = 0xEE  # little-endian u32 version field
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(path)

    def test_trailing_bytes_rejected(self, snapshot, tmp_path):
        path = tmp_path / "trailing.snap"
        write_snapshot(snapshot, path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(SnapshotError, match="trailing"):
            read_snapshot(path)

    def test_checkpointer_rotates_and_loads_latest(self, snapshot, tmp_path):
        checkpointer = SchedulerCheckpointer(tmp_path / "ckpt", keep=2)
        assert checkpointer.latest() is None
        paths = [checkpointer.save(snapshot) for _ in range(3)]
        remaining = sorted((tmp_path / "ckpt").glob("*.snap"))
        assert remaining == sorted(paths[1:]), "keep=2 must prune the oldest file"
        assert checkpointer.latest() == paths[-1]
        loaded = checkpointer.load()
        assert loaded.version == snapshot.version
        specific = checkpointer.load(paths[1])
        assert specific.version == snapshot.version

    def test_checkpointer_load_without_files_raises(self, tmp_path):
        checkpointer = SchedulerCheckpointer(tmp_path / "empty")
        with pytest.raises(SnapshotError, match="checkpoints"):
            checkpointer.load()


class TestRecoverySmokeGate:
    """Wire scripts/check_parity.py's recovery smoke into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_recovery", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_recovery_smoke_passes(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_recovery_smoke(tiny_zoo, tiny_cohort, n_ticks=40)
        assert report["shard_counts"] == (2, 4)
        assert report["respawns"][2] >= 1
        assert report["respawns"][4] >= 2
        assert report["snapshot_bytes"] > 0
