"""Tests for glucose state logic and the BiLSTM forecaster."""

import numpy as np
import pytest

from repro.data import ForecastingDataset
from repro.glucose import (
    AGGREGATE_KEY,
    FASTING_HYPER_THRESHOLD,
    GlucoseModelZoo,
    GlucosePredictor,
    GlucoseState,
    HYPOGLYCEMIA_THRESHOLD,
    POSTPRANDIAL_HYPER_THRESHOLD,
    Scenario,
    classify_glucose,
    classify_series,
    hyperglycemia_threshold,
    is_abnormal,
    normal_to_abnormal_ratio,
    scenario_for_samples,
    transition_between,
)


class TestStates:
    def test_hypo_classification(self):
        assert classify_glucose(60.0) == GlucoseState.HYPO

    def test_normal_classification_postprandial(self):
        assert classify_glucose(150.0, Scenario.POSTPRANDIAL) == GlucoseState.NORMAL

    def test_same_value_differs_by_scenario(self):
        assert classify_glucose(150.0, Scenario.FASTING) == GlucoseState.HYPER
        assert classify_glucose(150.0, Scenario.POSTPRANDIAL) == GlucoseState.NORMAL

    def test_thresholds_match_paper(self):
        assert HYPOGLYCEMIA_THRESHOLD == 70.0
        assert FASTING_HYPER_THRESHOLD == 125.0
        assert POSTPRANDIAL_HYPER_THRESHOLD == 180.0

    def test_hyperglycemia_threshold_lookup(self):
        assert hyperglycemia_threshold(Scenario.FASTING) == 125.0
        assert hyperglycemia_threshold(Scenario.POSTPRANDIAL) == 180.0

    def test_classify_series(self):
        states = classify_series([60.0, 100.0, 200.0])
        assert states == [GlucoseState.HYPO, GlucoseState.NORMAL, GlucoseState.HYPER]

    def test_is_abnormal(self):
        assert is_abnormal(60.0)
        assert is_abnormal(200.0)
        assert not is_abnormal(120.0)

    def test_scenario_for_samples_marks_postprandial_window(self):
        carbs = np.zeros(40)
        carbs[5] = 60.0
        scenarios = scenario_for_samples(carbs, window=10)
        assert scenarios[4] == Scenario.FASTING
        assert scenarios[5] == Scenario.POSTPRANDIAL
        assert scenarios[14] == Scenario.POSTPRANDIAL
        assert scenarios[20] == Scenario.FASTING

    def test_normal_to_abnormal_ratio(self):
        values = [100.0, 110.0, 200.0, 60.0]
        assert normal_to_abnormal_ratio(values) == pytest.approx(1.0)

    def test_ratio_infinite_when_no_abnormal(self):
        assert normal_to_abnormal_ratio([100.0, 110.0]) == float("inf")

    def test_ratio_rejects_empty(self):
        with pytest.raises(ValueError):
            normal_to_abnormal_ratio([])

    def test_transition_between(self):
        transition = transition_between(100.0, 250.0)
        assert transition.benign == GlucoseState.NORMAL
        assert transition.adversarial == GlucoseState.HYPER
        assert transition.is_misdiagnosis
        assert str(transition) == "normal->hyper"

    def test_no_transition_not_misdiagnosis(self):
        assert not transition_between(100.0, 110.0).is_misdiagnosis


class TestGlucosePredictor:
    def _toy_forecasting_problem(self, n: int = 200, seed: int = 0):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        cgm = 130 + 40 * np.sin(2 * np.pi * t / 80.0) + rng.normal(0, 2, n)
        features = np.column_stack([cgm, rng.normal(0, 1, (n, 3))])
        return ForecastingDataset(history=8, horizon=2).windows_from_features(features)

    def test_training_reduces_loss(self):
        windows, targets, _ = self._toy_forecasting_problem()
        predictor = GlucosePredictor(history=8, horizon=2, hidden_size=8, epochs=4, seed=0)
        predictor.fit(windows, targets)
        assert predictor.history_.improved

    def test_predictions_beat_mean_baseline(self):
        windows, targets, _ = self._toy_forecasting_problem(300)
        predictor = GlucosePredictor(history=8, horizon=2, hidden_size=8, epochs=6, seed=0)
        predictor.fit(windows[:250], targets[:250])
        metrics = predictor.evaluate(windows[250:], targets[250:])
        baseline_rmse = float(np.sqrt(np.mean((targets[250:] - targets[:250].mean()) ** 2)))
        assert metrics["rmse"] < baseline_rmse

    def test_predict_requires_fit(self):
        predictor = GlucosePredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(np.zeros((1, 12, 4)))

    def test_shape_validation(self):
        predictor = GlucosePredictor(history=8, horizon=2)
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((10, 5, 4)), np.zeros(10))

    def test_predict_one_returns_scalar(self):
        windows, targets, _ = self._toy_forecasting_problem()
        predictor = GlucosePredictor(history=8, horizon=2, hidden_size=6, epochs=2, seed=0)
        predictor.fit(windows, targets)
        assert isinstance(predictor.predict_one(windows[0]), float)

    def test_input_clipping_bounds_extrapolation(self):
        windows, targets, _ = self._toy_forecasting_problem()
        clipped = GlucosePredictor(history=8, horizon=2, hidden_size=6, epochs=3, seed=0, input_clip_std=2.0)
        clipped.fit(windows, targets)
        manipulated = windows[:20].copy()
        manipulated[:, -3:, 0] = 480.0
        extreme = windows[:20].copy()
        extreme[:, -3:, 0] = 5000.0
        np.testing.assert_allclose(
            clipped.predict(manipulated), clipped.predict(extreme), atol=1e-9
        )

    def test_state_dict_roundtrip(self):
        windows, targets, _ = self._toy_forecasting_problem()
        predictor = GlucosePredictor(history=8, horizon=2, hidden_size=6, epochs=2, seed=0)
        predictor.fit(windows, targets)
        clone = GlucosePredictor(history=8, horizon=2, hidden_size=6, epochs=2, seed=99)
        clone.scaler = predictor.scaler
        clone.load_state_dict(predictor.state_dict())
        np.testing.assert_allclose(clone.predict(windows[:5]), predictor.predict(windows[:5]))

    def test_invalid_epochs_rejected(self):
        with pytest.raises(ValueError):
            GlucosePredictor(epochs=0)

    def test_invalid_clip_rejected(self):
        with pytest.raises(ValueError):
            GlucosePredictor(input_clip_std=-1.0)


class TestGlucoseModelZoo:
    def test_zoo_contains_aggregate_and_personalized(self, tiny_zoo, tiny_cohort):
        assert AGGREGATE_KEY in tiny_zoo.available_models()
        for label in tiny_cohort.labels:
            assert label in tiny_zoo.available_models()

    def test_model_for_unknown_patient_falls_back_to_aggregate(self, tiny_zoo):
        assert tiny_zoo.model_for("Z_9") is tiny_zoo.aggregate

    def test_evaluation_reports_each_patient(self, tiny_zoo, tiny_cohort):
        evaluation = tiny_zoo.evaluate(tiny_cohort, split="test")
        for label in tiny_cohort.labels:
            assert label in evaluation.rmse
            assert evaluation.rmse[label] > 0

    def test_predictions_are_physiological(self, tiny_zoo, tiny_cohort):
        dataset = tiny_zoo.dataset
        windows, _, _ = dataset.from_record(tiny_cohort["A_5"], "test")
        predictions = tiny_zoo.model_for("A_5").predict(windows)
        assert np.all(predictions > 20.0)
        assert np.all(predictions < 600.0)

    def test_unfitted_zoo_raises(self):
        with pytest.raises(RuntimeError):
            GlucoseModelZoo().aggregate
