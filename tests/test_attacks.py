"""Tests for the URET-style evasion attack framework."""

import numpy as np
import pytest

from repro.attacks import (
    AttackCampaign,
    BeamExplorer,
    CompositeConstraint,
    EvasionAttack,
    GlucoseRangeConstraint,
    GreedyExplorer,
    MaxModifiedSamplesConstraint,
    RampTransformer,
    RandomExplorer,
    ScaleTransformer,
    SuffixLevelTransformer,
    SuffixOffsetTransformer,
    constraint_for_scenario,
    default_transformers,
)
from repro.data.cohort import CGM_COLUMN
from repro.glucose import Scenario
from repro.glucose.states import FASTING_HYPER_THRESHOLD, POSTPRANDIAL_HYPER_THRESHOLD


def benign_window(level: float = 110.0, history: int = 12) -> np.ndarray:
    window = np.zeros((history, 4))
    window[:, CGM_COLUMN] = level
    window[:, 1] = 0.5
    window[:, 3] = 70.0
    return window


class TestConstraints:
    def test_scenario_constraint_bounds(self):
        fasting = constraint_for_scenario(Scenario.FASTING)
        postprandial = constraint_for_scenario(Scenario.POSTPRANDIAL)
        assert fasting.low == FASTING_HYPER_THRESHOLD
        assert postprandial.low == POSTPRANDIAL_HYPER_THRESHOLD
        assert fasting.high == 499.0

    def test_unmodified_window_satisfies(self):
        constraint = constraint_for_scenario(Scenario.FASTING)
        window = benign_window()
        assert constraint.is_satisfied(window.copy(), window)

    def test_modified_value_must_be_in_range(self):
        constraint = constraint_for_scenario(Scenario.POSTPRANDIAL)
        original = benign_window()
        modified = original.copy()
        modified[-1, CGM_COLUMN] = 150.0  # below the postprandial bound
        assert not constraint.is_satisfied(modified, original)
        modified[-1, CGM_COLUMN] = 250.0
        assert constraint.is_satisfied(modified, original)

    def test_non_cgm_modification_rejected(self):
        constraint = constraint_for_scenario(Scenario.FASTING)
        original = benign_window()
        modified = original.copy()
        modified[-1, 1] = 99.0
        assert not constraint.is_satisfied(modified, original)

    def test_projection_clamps_and_restores(self):
        constraint = constraint_for_scenario(Scenario.FASTING)
        original = benign_window()
        modified = original.copy()
        modified[-1, CGM_COLUMN] = 1000.0
        modified[-1, 1] = 99.0
        projected = constraint.project(modified, original)
        assert projected[-1, CGM_COLUMN] == 499.0
        assert projected[-1, 1] == original[-1, 1]
        assert constraint.is_satisfied(projected, original)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            GlucoseRangeConstraint(low=500.0, high=400.0)

    def test_max_modified_constraint(self):
        constraint = MaxModifiedSamplesConstraint(max_modified=2)
        original = benign_window()
        modified = original.copy()
        modified[-4:, CGM_COLUMN] += 100.0
        assert not constraint.is_satisfied(modified, original)
        projected = constraint.project(modified, original)
        assert constraint.is_satisfied(projected, original)
        # The latest samples are the ones kept.
        assert projected[-1, CGM_COLUMN] != original[-1, CGM_COLUMN]

    def test_composite_constraint(self):
        composite = CompositeConstraint(
            [constraint_for_scenario(Scenario.FASTING), MaxModifiedSamplesConstraint(max_modified=1)]
        )
        original = benign_window()
        modified = original.copy()
        modified[-3:, CGM_COLUMN] = 300.0
        projected = composite.project(modified, original)
        assert composite.is_satisfied(projected, original)


class TestTransformers:
    @pytest.mark.parametrize(
        "transformer",
        [SuffixLevelTransformer(), SuffixOffsetTransformer(), RampTransformer(), ScaleTransformer()],
        ids=["level", "offset", "ramp", "scale"],
    )
    def test_candidates_only_touch_cgm(self, transformer):
        window = benign_window()
        for edge in transformer.candidates(window):
            assert edge.window.shape == window.shape
            np.testing.assert_array_equal(edge.window[:, 1:], window[:, 1:])
            assert edge.description

    def test_level_transformer_sets_levels(self):
        edges = SuffixLevelTransformer(levels=(250.0,), suffix_lengths=(3,)).candidates(benign_window())
        assert len(edges) == 1
        np.testing.assert_array_equal(edges[0].window[-3:, CGM_COLUMN], 250.0)

    def test_offsets_increase_values(self):
        window = benign_window(100.0)
        for edge in SuffixOffsetTransformer().candidates(window):
            assert np.all(edge.window[:, CGM_COLUMN] >= 100.0)

    def test_default_transformer_set_nonempty(self):
        assert len(default_transformers()) >= 3


class _LastValuePredictor:
    """Stub predictor: prediction equals the final CGM value of the window."""

    def predict(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        return windows[:, -1, CGM_COLUMN]

    def predict_one(self, window):
        return float(np.asarray(window)[-1, CGM_COLUMN])


class _CappedPredictor(_LastValuePredictor):
    """Stub predictor whose output saturates below the postprandial threshold."""

    def predict(self, windows):
        return np.minimum(super().predict(windows), 980.0) * 0.0 + np.minimum(
            np.asarray(windows)[:, -1, CGM_COLUMN], 180.0
        ) * 0.9

    def predict_one(self, window):
        return float(self.predict(np.asarray(window)[np.newaxis])[0])


class TestExplorers:
    def _score(self, batch):
        return np.asarray(batch)[:, -1, CGM_COLUMN]

    def _goal(self, threshold):
        return lambda window, score: score > threshold

    @pytest.mark.parametrize(
        "explorer",
        [GreedyExplorer(max_depth=2), BeamExplorer(beam_width=2, max_depth=2), RandomExplorer(max_depth=2, n_walks=15)],
        ids=["greedy", "beam", "random"],
    )
    def test_explorers_reach_reachable_goal(self, explorer):
        result = explorer.search(
            original=benign_window(110.0),
            transformers=[SuffixLevelTransformer(levels=(260.0, 400.0), suffix_lengths=(2,))],
            constraint=constraint_for_scenario(Scenario.POSTPRANDIAL),
            score_function=self._score,
            goal_function=self._goal(200.0),
        )
        assert result.success
        assert result.queries > 0
        assert result.path

    def test_greedy_stops_when_goal_unreachable(self):
        result = GreedyExplorer(max_depth=2).search(
            original=benign_window(110.0),
            transformers=[SuffixLevelTransformer(levels=(200.0,), suffix_lengths=(1,))],
            constraint=constraint_for_scenario(Scenario.POSTPRANDIAL),
            score_function=self._score,
            goal_function=self._goal(1000.0),
        )
        assert not result.success

    def test_exploration_respects_constraint(self):
        constraint = constraint_for_scenario(Scenario.POSTPRANDIAL)
        original = benign_window(110.0)
        result = GreedyExplorer(max_depth=3).search(
            original=original,
            transformers=default_transformers(),
            constraint=constraint,
            score_function=self._score,
            goal_function=self._goal(10_000.0),
        )
        assert constraint.is_satisfied(result.window, original)


class TestEvasionAttack:
    def test_successful_attack_flips_state(self):
        attack = EvasionAttack(_LastValuePredictor())
        result = attack.attack_window(benign_window(110.0), Scenario.POSTPRANDIAL)
        assert result.eligible
        assert result.success
        assert result.benign_state.value == "normal"
        assert result.adversarial_state.value == "hyper"
        assert result.adversarial_prediction > POSTPRANDIAL_HYPER_THRESHOLD

    def test_ineligible_window_not_attacked(self):
        attack = EvasionAttack(_LastValuePredictor())
        result = attack.attack_window(benign_window(250.0), Scenario.POSTPRANDIAL)
        assert not result.eligible
        assert not result.success
        np.testing.assert_array_equal(result.adversarial_window, result.benign_window)

    def test_resilient_model_resists_postprandial_attack(self):
        attack = EvasionAttack(_CappedPredictor())
        result = attack.attack_window(benign_window(110.0), Scenario.POSTPRANDIAL)
        assert result.eligible
        assert not result.success

    def test_adversarial_window_respects_constraint(self):
        attack = EvasionAttack(_LastValuePredictor())
        result = attack.attack_window(benign_window(100.0), Scenario.FASTING)
        constraint = constraint_for_scenario(Scenario.FASTING)
        assert constraint.is_satisfied(result.adversarial_window, result.benign_window)

    def test_attack_batch_length(self):
        attack = EvasionAttack(_LastValuePredictor())
        windows = np.stack([benign_window(100.0), benign_window(105.0)])
        results = attack.attack_batch(windows, [Scenario.FASTING, Scenario.POSTPRANDIAL])
        assert len(results) == 2

    def test_perturbation_norm_positive_for_success(self):
        attack = EvasionAttack(_LastValuePredictor())
        result = attack.attack_window(benign_window(100.0), Scenario.FASTING)
        assert result.perturbation_norm > 0


class TestCampaign:
    def test_campaign_covers_all_patients(self, tiny_test_campaign, tiny_cohort):
        assert set(tiny_test_campaign.patient_labels) == set(tiny_cohort.labels)

    def test_summaries_have_valid_rates(self, tiny_test_campaign):
        for label, summary in tiny_test_campaign.summaries().items():
            assert summary.n_windows > 0
            if summary.n_eligible:
                assert 0.0 <= summary.success_rate <= 1.0

    def test_well_controlled_patient_has_more_eligible_windows(self, tiny_test_campaign):
        summaries = tiny_test_campaign.summaries()
        assert summaries["A_5"].n_eligible > summaries["A_2"].n_eligible

    def test_detection_dataset_labels(self, tiny_test_campaign):
        windows, labels, provenance = tiny_test_campaign.detection_dataset()
        assert len(windows) == len(labels) == len(provenance)
        assert set(np.unique(labels)) <= {0, 1}
        assert windows.ndim == 3

    def test_sample_dataset_single_timestep(self, tiny_test_campaign):
        samples, labels, _ = tiny_test_campaign.sample_dataset()
        assert samples.shape[1] == 1
        assert samples.shape[2] == 4
        assert np.sum(labels == 0) > 0

    def test_sample_dataset_patient_filter(self, tiny_test_campaign):
        _, _, provenance = tiny_test_campaign.sample_dataset(patient_labels=["A_5"])
        assert set(provenance) == {"A_5"}

    def test_invalid_stride_rejected(self, tiny_zoo):
        with pytest.raises(ValueError):
            AttackCampaign(tiny_zoo, stride=0)

    def test_summary_unknown_patient_raises(self, tiny_test_campaign):
        with pytest.raises(KeyError):
            tiny_test_campaign.summary("Z_9")
