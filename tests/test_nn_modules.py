"""Tests for layers, losses, optimizers, and batching."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    BatchIterator,
    Dense,
    Dropout,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    huber_loss,
    initialize,
    l2_penalty,
    mae_loss,
    mse_loss,
)
from repro.nn.module import apply_activation


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, seed=0)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_parameters_count(self):
        layer = Dense(4, 3, seed=0)
        assert layer.count_parameters() == 4 * 3 + 3

    def test_no_bias_option(self):
        layer = Dense(4, 3, use_bias=False, seed=0)
        assert layer.count_parameters() == 12

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_activation_applied(self):
        layer = Dense(2, 2, activation="relu", seed=0)
        layer.weight.data = -np.ones((2, 2))
        layer.bias.data = np.zeros(2)
        output = layer(Tensor(np.ones((1, 2)))).numpy()
        np.testing.assert_array_equal(output, 0.0)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            apply_activation(Tensor([1.0]), "swishy")

    def test_seeded_initialization_reproducible(self):
        first = Dense(3, 3, seed=7).weight.data
        second = Dense(3, 3, seed=7).weight.data
        np.testing.assert_array_equal(first, second)


class TestSequentialAndModule:
    def test_forward_composition(self):
        model = Sequential(Dense(2, 4, activation="tanh", seed=0), Dense(4, 1, seed=1))
        assert model(Tensor(np.zeros((3, 2)))).shape == (3, 1)

    def test_parameters_deduplicated(self):
        layer = Dense(2, 2, seed=0)
        model = Sequential(layer, Activation("relu"))
        assert len(model.parameters()) == 2

    def test_state_dict_roundtrip(self):
        model = Sequential(Dense(2, 3, seed=0), Dense(3, 1, seed=1))
        state = model.state_dict()
        clone = Sequential(Dense(2, 3, seed=5), Dense(3, 1, seed=6))
        clone.load_state_dict(state)
        inputs = Tensor(np.ones((2, 2)))
        np.testing.assert_allclose(model(inputs).numpy(), clone(inputs).numpy())

    def test_load_state_dict_rejects_mismatch(self):
        model = Sequential(Dense(2, 3, seed=0))
        with pytest.raises(ValueError):
            model.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5, seed=0), Dense(2, 2, seed=0))
        model.eval()
        assert all(not child.training for child in model.children())
        model.train()
        assert all(child.training for child in model.children())

    def test_named_parameters_paths(self):
        model = Sequential(Dense(2, 2, seed=0))
        names = set(model.named_parameters())
        assert any("weight" in name for name in names)
        assert any("bias" in name for name in names)

    def test_zero_grad_clears(self):
        layer = Dense(2, 1, seed=0)
        (layer(Tensor(np.ones((1, 2)))).sum()).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_requires_grad_toggle_freezes_parameters(self):
        model = Sequential(Dense(2, 3, seed=0), Dense(3, 1, seed=1))
        model.requires_grad_(False)
        inputs = Tensor(np.ones((2, 2)), requires_grad=True)
        model(inputs).sum().backward()
        # Frozen parameters accumulate nothing; differentiable inputs still do.
        assert all(parameter.grad is None for parameter in model.parameters())
        assert inputs.grad is not None
        model.requires_grad_(True)
        model(Tensor(np.ones((2, 2)))).sum().backward()
        assert all(parameter.grad is not None for parameter in model.parameters())


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        inputs = np.ones((4, 4))
        np.testing.assert_array_equal(layer(Tensor(inputs)).numpy(), inputs)

    def test_train_mode_zeroes_some_entries(self):
        layer = Dropout(0.5, seed=0)
        output = layer(Tensor(np.ones((20, 20)))).numpy()
        assert np.any(output == 0.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLosses:
    def test_mse_value(self):
        assert mse_loss(Tensor([1.0, 3.0]), Tensor([1.0, 1.0])).item() == pytest.approx(2.0)

    def test_mae_value(self):
        assert mae_loss(Tensor([1.0, 3.0]), Tensor([0.0, 1.0])).item() == pytest.approx(1.5)

    def test_bce_matches_manual(self):
        probabilities = np.array([0.9, 0.2])
        targets = np.array([1.0, 0.0])
        expected = -np.mean(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities))
        assert binary_cross_entropy(Tensor(probabilities), Tensor(targets)).item() == pytest.approx(expected)

    def test_bce_with_logits_matches_probability_form(self):
        logits = np.array([2.0, -1.0, 0.5])
        targets = np.array([1.0, 0.0, 1.0])
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        expected = -np.mean(
            targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)
        )
        value = binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets)).item()
        assert value == pytest.approx(expected, rel=1e-6)

    def test_huber_quadratic_region(self):
        assert huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0).item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        assert huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0).item() == pytest.approx(2.5)

    def test_l2_penalty(self):
        parameter = Parameter(np.array([1.0, 2.0]))
        assert l2_penalty([parameter], weight=0.5).item() == pytest.approx(2.5)


class TestOptimizers:
    def _quadratic_problem(self):
        parameter = Parameter(np.array([5.0, -3.0]))

        def loss_fn():
            return (Tensor(parameter.data * 0.0) + parameter * parameter).sum()

        return parameter, loss_fn

    def test_sgd_reduces_loss(self):
        parameter, loss_fn = self._quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.1)
        initial = loss_fn().item()
        for _ in range(50):
            optimizer.zero_grad()
            loss = loss_fn()
            loss.backward()
            optimizer.step()
        assert loss_fn().item() < initial * 1e-3

    def test_sgd_momentum_converges(self):
        parameter, loss_fn = self._quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.05, momentum=0.9)
        for _ in range(250):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, 0.0, atol=1e-2)

    def test_adam_converges(self):
        parameter, loss_fn = self._quadratic_problem()
        optimizer = Adam([parameter], learning_rate=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, 0.0, atol=1e-3)

    def test_gradient_clipping_bounds_norm(self):
        parameter = Parameter(np.array([100.0]))
        optimizer = SGD([parameter], learning_rate=0.1)
        optimizer.zero_grad()
        (parameter * parameter).sum().backward()
        norm = optimizer.clip_gradients(1.0)
        assert norm > 1.0
        assert np.linalg.norm(parameter.grad) <= 1.0 + 1e-9

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], learning_rate=-1.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert abs(parameter.data[0]) < 1.0


def _shuffled_indices(iterator):
    """Replay one epoch of an iterator's shuffle order (same RNG stream)."""
    count = len(iterator.inputs)
    order = iterator._rng.permutation(np.arange(count))
    for start in range(0, count, iterator.batch_size):
        index = order[start : start + iterator.batch_size]
        if iterator.drop_last and len(index) < iterator.batch_size:
            break
        yield index


class TestBatchIterator:
    def test_batch_shapes(self):
        iterator = BatchIterator(np.arange(10).reshape(10, 1), np.arange(10), batch_size=4, shuffle=False)
        batches = list(iterator)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 1)
        assert batches[-1][0].shape == (2, 1)

    def test_drop_last(self):
        iterator = BatchIterator(np.arange(10).reshape(10, 1), batch_size=4, drop_last=True)
        assert len(list(iterator)) == 2

    def test_len_matches_iteration(self):
        iterator = BatchIterator(np.arange(10).reshape(10, 1), batch_size=3)
        assert len(iterator) == len(list(iterator))

    def test_shuffle_reproducible_with_seed(self):
        data = np.arange(20).reshape(20, 1)
        first = [batch[0].copy() for batch in BatchIterator(data, batch_size=5, seed=3)]
        second = [batch[0].copy() for batch in BatchIterator(data, batch_size=5, seed=3)]
        for left, right in zip(first, second):
            np.testing.assert_array_equal(left, right)

    def test_covers_all_samples(self):
        data = np.arange(10).reshape(10, 1)
        # Batches are views into the iterator's reused gather buffer, so a
        # caller retaining them across iterations must copy.
        seen = np.concatenate(
            [batch[0].copy().reshape(-1) for batch in BatchIterator(data, batch_size=3, seed=0)]
        )
        assert sorted(seen.tolist()) == list(range(10))

    def test_batches_reuse_gather_buffer(self):
        """The kernel-floor fix: no per-batch allocation, same values as fancy indexing."""
        data = np.arange(24, dtype=np.float64).reshape(12, 2)
        targets = np.arange(12, dtype=np.float64)
        iterator = BatchIterator(data, targets, batch_size=5, seed=7)
        reference = BatchIterator(data, targets, batch_size=5, seed=7)
        reference_batches = [
            (b.copy(), t.copy()) for b, t in
            ((data[idx], targets[idx]) for idx in _shuffled_indices(reference))
        ]
        bases = set()
        for (batch, target), (expected, expected_target) in zip(iterator, reference_batches):
            np.testing.assert_array_equal(batch, expected)
            np.testing.assert_array_equal(target, expected_target)
            bases.add(id(batch.base if batch.base is not None else batch))
        # Every full batch aliases the same preallocated storage.
        assert len(bases) == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((5, 1)), np.zeros(4))

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((5, 1)), batch_size=0)


class TestInitializers:
    @pytest.mark.parametrize("name", ["xavier_uniform", "xavier_normal", "he_uniform", "orthogonal"])
    def test_shapes(self, name):
        assert initialize(name, (6, 4), seed=0).shape == (6, 4)

    def test_orthogonal_columns(self):
        matrix = initialize("orthogonal", (8, 8), seed=0)
        np.testing.assert_allclose(matrix.T @ matrix, np.eye(8), atol=1e-8)

    def test_zeros(self):
        assert initialize("zeros", (3,)).sum() == 0.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            initialize("nope", (2, 2))

    def test_reproducibility(self):
        np.testing.assert_array_equal(
            initialize("xavier_uniform", (4, 4), seed=2),
            initialize("xavier_uniform", (4, 4), seed=2),
        )
