"""Tests for the anomaly detectors (kNN, OneClassSVM, MAD-GAN, ensemble)."""

import numpy as np
import pytest

from tests.conftest import make_toy_windows
from repro.detectors import (
    KNNClassifierDetector,
    KNNDistanceDetector,
    MADGANDetector,
    OneClassSVMDetector,
    ThresholdCalibrator,
    VotingEnsembleDetector,
    kernel_matrix,
    minkowski_distances,
)


class TestThresholdCalibrator:
    def test_quantile_threshold(self):
        calibrator = ThresholdCalibrator(quantile=0.9).fit(np.arange(100.0))
        assert calibrator.threshold_ == pytest.approx(89.1)

    def test_predict_flags_above_threshold(self):
        calibrator = ThresholdCalibrator(quantile=0.5).fit(np.array([0.0, 1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(calibrator.predict(np.array([0.0, 10.0])), [0, 1])

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            ThresholdCalibrator().predict(np.array([1.0]))

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(quantile=1.5).fit(np.arange(10.0))


class TestDistances:
    def test_euclidean_matches_manual(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        distances = minkowski_distances(a, b, p=2.0)
        manual = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
        np.testing.assert_allclose(distances, manual, atol=1e-9)

    def test_manhattan(self):
        distances = minkowski_distances(np.array([[0.0, 0.0]]), np.array([[1.0, 2.0]]), p=1.0)
        assert distances[0, 0] == pytest.approx(3.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            minkowski_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_kernel_matrix_rbf_diagonal_is_one(self, rng):
        data = rng.normal(size=(6, 4))
        gram = kernel_matrix(data, data, "rbf", gamma=0.5, coef0=0.0, degree=3)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_kernel_matrix_linear(self, rng):
        data = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            kernel_matrix(data, data, "linear", 1.0, 0.0, 3), data @ data.T
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_matrix(np.zeros((2, 2)), np.zeros((2, 2)), "mystery", 1.0, 0.0, 3)


class TestKNNClassifier:
    def test_detects_separable_anomalies(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector(n_neighbors=5).fit(windows, labels)
        predictions = detector.predict(windows)
        recall = np.mean(predictions[labels == 1] == 1)
        false_positive_rate = np.mean(predictions[labels == 0] == 1)
        assert recall > 0.7
        assert false_positive_rate < 0.2

    def test_requires_labels(self, toy_detection_data):
        windows, _ = toy_detection_data
        with pytest.raises(ValueError):
            KNNClassifierDetector().fit(windows)

    def test_rejects_non_binary_labels(self, toy_detection_data):
        windows, labels = toy_detection_data
        with pytest.raises(ValueError):
            KNNClassifierDetector().fit(windows, labels + 1)

    def test_scores_are_fractions(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector().fit(windows, labels)
        scores = detector.scores(windows[:10])
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    def test_distance_weighting_supported(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector(weights="distance").fit(windows, labels)
        assert detector.predict(windows[:5]).shape == (5,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNNClassifierDetector().predict(np.zeros((1, 12, 4)))

    def test_single_timestep_windows_supported(self, toy_detection_data):
        windows, labels = toy_detection_data
        samples = windows[:, -1:, :]
        detector = KNNClassifierDetector().fit(samples, labels)
        assert detector.predict(samples[:3]).shape == (3,)


class TestKNNDistance:
    def test_flags_outliers(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector(quantile=0.95).fit(windows[labels == 0])
        predictions = detector.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.8

    def test_benign_false_positive_rate_bounded(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector(quantile=0.95).fit(windows[labels == 0])
        predictions = detector.predict(windows[labels == 0])
        assert np.mean(predictions) < 0.25

    def test_accepts_labels_and_filters_benign(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector().fit(windows, labels)
        assert detector.predict(windows[:4]).shape == (4,)


class TestOneClassSVM:
    def test_rbf_detects_anomalies(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0)
        detector.fit(windows[labels == 0])
        predictions = detector.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.8
        assert np.mean(predictions[labels == 0] == 1) < 0.35

    def test_nu_controls_benign_rejection(self, toy_detection_data):
        windows, labels = toy_detection_data
        benign = windows[labels == 0]
        tight = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.05, seed=0).fit(benign)
        loose = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.5, seed=0).fit(benign)
        tight_rate = np.mean(tight.predict(benign))
        loose_rate = np.mean(loose.predict(benign))
        assert loose_rate > tight_rate

    def test_decision_function_sign_convention(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0).fit(
            windows[labels == 0]
        )
        decisions = detector.decision_function(windows)
        predictions = detector.predict(windows)
        np.testing.assert_array_equal(predictions, (decisions < 0).astype(int))

    def test_invalid_nu_rejected(self):
        with pytest.raises(ValueError):
            OneClassSVMDetector(nu=0.0)

    def test_subsampling_limits_training_size(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.2, max_samples=30, seed=0)
        detector.fit(windows[labels == 0])
        assert len(detector._train_scaled) <= 30

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSVMDetector().predict(np.zeros((1, 12, 4)))

    def test_sigmoid_kernel_runs(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="sigmoid", coef0=10.0, nu=0.5, seed=0)
        detector.fit(windows[labels == 0][:40])
        assert detector.predict(windows[:5]).shape == (5,)


class TestMADGAN:
    @pytest.fixture(scope="class")
    def fitted_madgan(self):
        windows, labels = make_toy_windows(
            n_benign=120, n_malicious=0, seed=3
        )
        detector = MADGANDetector(epochs=4, hidden_size=12, inversion_steps=25, seed=0)
        detector.fit(windows[labels == 0])
        return detector

    def test_training_history_recorded(self, fitted_madgan):
        assert len(fitted_madgan.history_.generator_losses) == 4
        assert len(fitted_madgan.history_.discriminator_losses) == 4

    def test_detects_large_manipulations(self, fitted_madgan):
        windows, labels = make_toy_windows(
            n_benign=30, n_malicious=30, seed=9
        )
        predictions = fitted_madgan.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.7

    def test_benign_false_positive_rate_bounded(self, fitted_madgan):
        windows, labels = make_toy_windows(
            n_benign=40, n_malicious=0, seed=11
        )
        assert np.mean(fitted_madgan.predict(windows)) < 0.3

    def test_wrong_window_shape_rejected(self, fitted_madgan):
        with pytest.raises(ValueError):
            fitted_madgan.predict(np.zeros((2, 5, 4)))

    def test_scores_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            MADGANDetector().scores(np.zeros((1, 12, 4)))

    def test_invalid_reconstruction_weight(self):
        with pytest.raises(ValueError):
            MADGANDetector(reconstruction_weight=1.5)


class TestMADGANFastPathRegression:
    """The graph-free inversion/scoring fast paths are pinned to the autodiff
    reference: reconstruction errors within 1e-8, detection decisions
    unchanged."""

    @pytest.fixture(scope="class")
    def fitted(self):
        windows, labels = make_toy_windows(n_benign=90, n_malicious=0, seed=3)
        detector = MADGANDetector(epochs=3, hidden_size=10, inversion_steps=20, seed=0)
        detector.fit(windows[labels == 0])
        return detector

    def test_reconstruction_errors_match_graph_path(self, fitted):
        windows, _ = make_toy_windows(n_benign=12, n_malicious=8, seed=21)
        scaled = fitted._scale(windows)
        latent = fitted._sample_latent(len(scaled)) * 0.1
        fast = fitted._reconstruction_errors(scaled, fast_path=True, initial_latent=latent)
        graph = fitted._reconstruction_errors(scaled, fast_path=False, initial_latent=latent)
        np.testing.assert_allclose(fast, graph, atol=1e-8, rtol=0.0)

    def test_discrimination_scores_match_graph_path(self, fitted):
        windows, _ = make_toy_windows(n_benign=10, n_malicious=5, seed=22)
        scaled = fitted._scale(windows)
        fast = fitted._discrimination_scores(scaled)
        fitted.use_fast_path = False
        try:
            graph = fitted._discrimination_scores(scaled)
        finally:
            fitted.use_fast_path = True
        np.testing.assert_allclose(fast, graph, atol=1e-10, rtol=0.0)

    def test_detection_decisions_unchanged(self, fitted):
        # Same fitted detector, same latent initialization: routing the DR
        # score through the fast path must not flip a single decision on the
        # seed fixture windows.
        windows, _ = make_toy_windows(n_benign=20, n_malicious=12, seed=33)
        scaled = fitted._scale(windows)
        latent = fitted._sample_latent(len(scaled)) * 0.1

        def decisions(fast_path: bool) -> np.ndarray:
            reconstruction = fitted._reconstruction_errors(
                scaled, fast_path=fast_path, initial_latent=latent
            )
            fitted.use_fast_path = fast_path
            try:
                scores = fitted._dr_scores(scaled, reconstruction)
            finally:
                fitted.use_fast_path = True
            return fitted.calibrator.predict(scores)

        np.testing.assert_array_equal(decisions(True), decisions(False))

    def test_inversion_grad_matches_autodiff(self, fitted):
        from repro.nn import Parameter, Tensor

        windows, _ = make_toy_windows(n_benign=6, n_malicious=0, seed=44)
        scaled = fitted._scale(windows)
        latent_values = fitted._sample_latent(len(scaled)) * 0.1

        generated_fast, grad_fast = fitted.generator.inversion_grad(latent_values, scaled)

        latent = Parameter(latent_values.copy(), name="latent")
        fitted.generator.zero_grad()
        generated = fitted.generator(latent)
        residual = generated - Tensor(scaled)
        (residual * residual).mean().backward()

        np.testing.assert_allclose(generated_fast, generated.numpy(), atol=1e-10, rtol=0.0)
        np.testing.assert_allclose(grad_fast, latent.grad, atol=1e-12, rtol=0.0)
        fitted.generator.zero_grad()


def make_toy_trace(n_ticks: int, seed: int = 5, history: int = 12):
    """A smooth benign trace whose sliding windows match the toy statistics."""
    generator = np.random.default_rng(seed)
    length = n_ticks + history - 1
    timeline = np.arange(length) / float(history)
    cgm = 110 + 18 * np.sin(2 * np.pi * (timeline + generator.uniform()))
    cgm = cgm + generator.normal(0, 2.5, size=length)
    other = generator.normal(0.0, 1.0, size=(length, 3))
    return np.column_stack([cgm, other])


def sliding_windows(trace: np.ndarray, n_ticks: int, history: int = 12):
    return np.stack([trace[tick : tick + history] for tick in range(n_ticks)])


class TestMADGANIncremental:
    """Warm-started incremental scoring is pinned to the cold path: a cold
    first call is bitwise-identical, warm continuations stay within a
    documented score tolerance with unchanged decisions, and a regressing
    warm start falls back to the cold inversion."""

    TOLERANCE = 0.5  # warm-vs-cold DR score gap bound on the toy fixture

    @pytest.fixture(scope="class")
    def fitted(self):
        windows, labels = make_toy_windows(n_benign=90, n_malicious=0, seed=3)
        detector = MADGANDetector(
            epochs=3,
            hidden_size=10,
            inversion_steps=20,
            warm_inversion_steps=6,
            seed=0,
        )
        detector.fit(windows[labels == 0])
        return detector

    def test_first_call_matches_cold_scores_exactly(self, fitted):
        from repro.utils.rng import as_random_state

        windows = sliding_windows(make_toy_trace(4), 4)
        fitted._rng = as_random_state(77)
        cold = fitted.scores(windows)
        states = [fitted.make_inversion_state() for _ in range(len(windows))]
        fitted._rng = as_random_state(77)
        warm = fitted.scores_incremental(windows, states)
        np.testing.assert_array_equal(warm, cold)
        for state in states:
            assert state.latent is not None
            assert state.latent.shape == (fitted.sequence_length, fitted.latent_dim)
            assert state.error is not None
            assert state.ticks == 1
            assert state.fallbacks == 0

    def test_warm_scores_track_cold_with_identical_decisions(self, fitted):
        n_streams, n_ticks = 3, 8
        traces = [make_toy_trace(n_ticks, seed=40 + index) for index in range(n_streams)]
        states = [fitted.make_inversion_state() for _ in range(n_streams)]
        for tick in range(n_ticks):
            windows = np.stack(
                [trace[tick : tick + fitted.sequence_length] for trace in traces]
            )
            warm = fitted.scores_incremental(windows, states)
            cold = fitted.scores(windows)
            assert np.abs(warm - cold).max() <= self.TOLERANCE
            np.testing.assert_array_equal(
                fitted.calibrator.predict(warm), fitted.calibrator.predict(cold)
            )
        assert all(state.ticks == n_ticks for state in states)

    def test_regressing_warm_start_falls_back_to_cold(self, fitted):
        windows = sliding_windows(make_toy_trace(1, seed=9), 1)
        state = fitted.make_inversion_state()
        # A stale, far-off latent with an implausibly tiny previous error:
        # the warm residual must regress beyond the fallback ratio.
        state.latent = np.full((fitted.sequence_length, fitted.latent_dim), 2.5)
        state.error = 1e-9
        state.ticks = 1
        warm = fitted.scores_incremental(windows, [state])
        assert state.fallbacks == 1
        cold = fitted.scores(windows)
        assert abs(float(warm[0]) - float(cold[0])) <= self.TOLERANCE

    def test_fallback_keeps_the_better_inversion(self, fitted):
        # Same setup, but the carried error is so tiny the fallback fires even
        # though the warm result may beat the cold restart; the stored error
        # must be the minimum of the two.
        windows = sliding_windows(make_toy_trace(1, seed=10), 1)
        state = fitted.make_inversion_state()
        state.latent = np.zeros((fitted.sequence_length, fitted.latent_dim))
        state.error = 1e-12
        warm = fitted.scores_incremental(windows, [state])
        assert state.fallbacks == 1
        assert np.isfinite(warm).all()
        assert state.error is not None and state.error >= 0.0

    def test_restored_state_without_error_is_cold_verified(self, fitted):
        # A state deserialized with a latent but no carried error must not
        # crash: the fallback comparison runs against the floor instead.
        windows = sliding_windows(make_toy_trace(1, seed=14), 1)
        state = fitted.make_inversion_state()
        state.latent = np.zeros((fitted.sequence_length, fitted.latent_dim))
        state.error = None
        scores = fitted.scores_incremental(windows, [state])
        assert np.isfinite(scores).all()
        assert state.error is not None

    def test_predict_incremental_reuses_one_inversion(self, fitted):
        windows = sliding_windows(make_toy_trace(2, seed=11), 2)
        states = [fitted.make_inversion_state() for _ in range(len(windows))]
        flags, scores = fitted.predict_incremental(windows, states, include_scores=True)
        np.testing.assert_array_equal(flags, fitted.calibrator.predict(scores))
        assert all(state.ticks == 1 for state in states)

    def test_state_alignment_validated(self, fitted):
        windows = sliding_windows(make_toy_trace(2, seed=12), 2)
        with pytest.raises(ValueError, match="same length"):
            fitted.scores_incremental(windows, [fitted.make_inversion_state()])
        bad = fitted.make_inversion_state()
        bad.latent = np.zeros((3, fitted.latent_dim))
        with pytest.raises(ValueError, match="shape"):
            fitted.scores_incremental(windows[:1], [bad])

    def test_invalid_warm_parameters_rejected(self):
        with pytest.raises(ValueError):
            MADGANDetector(warm_inversion_steps=0)
        with pytest.raises(ValueError):
            MADGANDetector(warm_fallback_ratio=0.5)
        with pytest.raises(ValueError):
            MADGANDetector(cold_refresh_interval=0)

    def test_reference_path_detector_rejects_incremental(self):
        detector = MADGANDetector(use_fast_path=False)
        with pytest.raises(ValueError, match="fast-path"):
            detector.scores_incremental(
                np.zeros((1, 12, 4)), [detector.make_inversion_state()]
            )

    def test_cold_refresh_reanchors_periodically(self, fitted):
        trace = make_toy_trace(7, seed=15)
        state = fitted.make_inversion_state()
        calls = []
        original = fitted._invert_fast

        def recording(scaled, initial, steps):
            calls.append((len(scaled), steps))
            return original(scaled, initial, steps)

        previous_interval = fitted.cold_refresh_interval
        fitted._invert_fast = recording
        fitted.cold_refresh_interval = 3
        try:
            for tick in range(6):
                window = trace[tick : tick + fitted.sequence_length][np.newaxis]
                fitted.scores_incremental(window, [state])
        finally:
            fitted._invert_fast = original
            fitted.cold_refresh_interval = previous_interval
        steps = [step for _, step in calls]
        # tick 0 cold, ticks 1-2 warm, tick 3 refresh (cold), ticks 4-5 warm
        assert steps == [
            fitted.inversion_steps,
            fitted.warm_inversion_steps,
            fitted.warm_inversion_steps,
            fitted.inversion_steps,
            fitted.warm_inversion_steps,
            fitted.warm_inversion_steps,
        ]
        assert state.ticks == 6
        assert state.fallbacks == 0

    def test_state_reset_forgets_carryover(self, fitted):
        windows = sliding_windows(make_toy_trace(1, seed=13), 1)
        state = fitted.make_inversion_state()
        fitted.scores_incremental(windows, [state])
        state.reset()
        assert state.latent is None
        assert state.error is None
        assert state.ticks == 0


class TestEnsemble:
    def test_majority_vote(self, toy_detection_data):
        windows, labels = toy_detection_data
        ensemble = VotingEnsembleDetector(
            [KNNClassifierDetector(n_neighbors=3), KNNDistanceDetector(), OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0)]
        )
        ensemble.fit(windows, labels)
        predictions = ensemble.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.6

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            VotingEnsembleDetector([])

    def test_min_votes_validated(self):
        with pytest.raises(ValueError):
            VotingEnsembleDetector([KNNDistanceDetector()], min_votes=5)


class TestMADGANFallbackCoalescing:
    """Deferred cold fallbacks (`fallback_defer`): under churn-heavy streams,
    benign-scale warm regressions coalesce into fewer batched cold inversions
    with verdicts identical to the eager mode, while anomaly-relevant
    regressions still cold-verify in the same tick."""

    BASE_KWARGS = dict(
        epochs=3,
        hidden_size=10,
        inversion_steps=20,
        warm_inversion_steps=2,  # deliberately under-converged: frequent mild
        warm_fallback_ratio=1.02,  # regressions without any real anomaly
        cold_refresh_interval=None,
        seed=2,
    )

    @classmethod
    def _fit(cls, fallback_defer):
        windows, labels = make_toy_windows(n_benign=120, n_malicious=0, seed=3)
        detector = MADGANDetector(fallback_defer=fallback_defer, **cls.BASE_KWARGS)
        detector.fit(windows[labels == 0][:100])
        return detector

    @staticmethod
    def _churn_traces(n_streams, length):
        """Mild benign wobble everywhere; a genuine spoofed burst on a few."""
        generator = np.random.default_rng(5)
        traces = []
        for index in range(n_streams):
            trace = make_toy_trace(length, seed=30 + index)
            trace[:, 0] += generator.normal(0, 1.2, size=len(trace))
            if index % 4 == 0:
                trace[20:23, 0] += 120.0
            traces.append(trace)
        return traces

    @classmethod
    def _replay(cls, fallback_defer, n_streams=8, n_ticks=24):
        from repro.utils.rng import as_random_state

        detector = cls._fit(fallback_defer)
        history = detector.sequence_length
        traces = cls._churn_traces(n_streams, n_ticks + history)
        states = [detector.make_inversion_state() for _ in range(n_streams)]
        detector._rng = as_random_state(99)
        detector.inversion_calls = 0
        verdicts = []
        for tick in range(n_ticks):
            windows = np.stack(
                [trace[tick : tick + history] for trace in traces]
            )
            verdicts.append(detector.predict_incremental(windows, states).tolist())
        return detector, states, verdicts

    def test_invalid_fallback_defer_rejected(self):
        with pytest.raises(ValueError, match="fallback_defer"):
            MADGANDetector(fallback_defer=-1)

    def test_fewer_inversion_calls_identical_verdicts(self):
        eager, _, eager_verdicts = self._replay(fallback_defer=0)
        deferred, _, deferred_verdicts = self._replay(fallback_defer=4)
        # The deferred mode must pay strictly fewer `_invert_fast` batches...
        assert deferred.inversion_calls < eager.inversion_calls
        # ...with the very same decisions on every tick of every stream
        # (including the genuinely spoofed bursts, which must stay flagged).
        assert deferred_verdicts == eager_verdicts
        assert sum(map(sum, eager_verdicts)) > 0

    def test_deferred_streams_are_reanchored(self):
        _, states, _ = self._replay(fallback_defer=2)
        # Nothing may wait past its defer budget: every pending counter is
        # below the maximum (a flush ran at or before the deadline).
        assert all(state.pending_cold <= 2 for state in states)
        assert any(state.fallbacks > 0 for state in states)

    def test_deferral_never_inflates_scores(self):
        """While pending, a stream reports at most its carried anchor error."""
        detector = self._fit(fallback_defer=8)
        history = detector.sequence_length
        trace = make_toy_trace(6 + history, seed=41)
        state = detector.make_inversion_state()
        previous_error = None
        for tick in range(6):
            window = trace[tick : tick + history][np.newaxis]
            detector.scores_incremental(window, [state])
            if previous_error is not None and state.pending_cold > 1:
                assert state.error <= previous_error + 1e-12
            previous_error = state.error

    def test_anomaly_relevant_regression_is_not_deferred(self):
        """A genuine level shift cold-verifies in the same tick (no latency)."""
        detector = self._fit(fallback_defer=8)
        history = detector.sequence_length
        trace = make_toy_trace(4 + history, seed=42)
        state = detector.make_inversion_state()
        # Warm up on the benign prefix, then hit a hard spoofed level.
        for tick in range(3):
            detector.scores_incremental(trace[tick : tick + history][np.newaxis], [state])
        spoofed = trace[3 : 3 + history].copy()
        spoofed[-3:, 0] += 150.0
        calls_before = detector.inversion_calls
        flags = detector.predict_incremental(spoofed[np.newaxis], [state])
        # The regression escalated: a cold batch ran this very tick (warm +
        # cold = 2 calls), the window is flagged, and nothing is left pending.
        assert detector.inversion_calls == calls_before + 2
        assert int(flags[0]) == 1
        assert state.pending_cold == 0
