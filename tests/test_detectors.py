"""Tests for the anomaly detectors (kNN, OneClassSVM, MAD-GAN, ensemble)."""

import numpy as np
import pytest

from tests.conftest import make_toy_windows
from repro.detectors import (
    KNNClassifierDetector,
    KNNDistanceDetector,
    MADGANDetector,
    OneClassSVMDetector,
    ThresholdCalibrator,
    VotingEnsembleDetector,
    kernel_matrix,
    minkowski_distances,
)


class TestThresholdCalibrator:
    def test_quantile_threshold(self):
        calibrator = ThresholdCalibrator(quantile=0.9).fit(np.arange(100.0))
        assert calibrator.threshold_ == pytest.approx(89.1)

    def test_predict_flags_above_threshold(self):
        calibrator = ThresholdCalibrator(quantile=0.5).fit(np.array([0.0, 1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(calibrator.predict(np.array([0.0, 10.0])), [0, 1])

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            ThresholdCalibrator().predict(np.array([1.0]))

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(quantile=1.5).fit(np.arange(10.0))


class TestDistances:
    def test_euclidean_matches_manual(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        distances = minkowski_distances(a, b, p=2.0)
        manual = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
        np.testing.assert_allclose(distances, manual, atol=1e-9)

    def test_manhattan(self):
        distances = minkowski_distances(np.array([[0.0, 0.0]]), np.array([[1.0, 2.0]]), p=1.0)
        assert distances[0, 0] == pytest.approx(3.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            minkowski_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_kernel_matrix_rbf_diagonal_is_one(self, rng):
        data = rng.normal(size=(6, 4))
        gram = kernel_matrix(data, data, "rbf", gamma=0.5, coef0=0.0, degree=3)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_kernel_matrix_linear(self, rng):
        data = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            kernel_matrix(data, data, "linear", 1.0, 0.0, 3), data @ data.T
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_matrix(np.zeros((2, 2)), np.zeros((2, 2)), "mystery", 1.0, 0.0, 3)


class TestKNNClassifier:
    def test_detects_separable_anomalies(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector(n_neighbors=5).fit(windows, labels)
        predictions = detector.predict(windows)
        recall = np.mean(predictions[labels == 1] == 1)
        false_positive_rate = np.mean(predictions[labels == 0] == 1)
        assert recall > 0.7
        assert false_positive_rate < 0.2

    def test_requires_labels(self, toy_detection_data):
        windows, _ = toy_detection_data
        with pytest.raises(ValueError):
            KNNClassifierDetector().fit(windows)

    def test_rejects_non_binary_labels(self, toy_detection_data):
        windows, labels = toy_detection_data
        with pytest.raises(ValueError):
            KNNClassifierDetector().fit(windows, labels + 1)

    def test_scores_are_fractions(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector().fit(windows, labels)
        scores = detector.scores(windows[:10])
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    def test_distance_weighting_supported(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNClassifierDetector(weights="distance").fit(windows, labels)
        assert detector.predict(windows[:5]).shape == (5,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNNClassifierDetector().predict(np.zeros((1, 12, 4)))

    def test_single_timestep_windows_supported(self, toy_detection_data):
        windows, labels = toy_detection_data
        samples = windows[:, -1:, :]
        detector = KNNClassifierDetector().fit(samples, labels)
        assert detector.predict(samples[:3]).shape == (3,)


class TestKNNDistance:
    def test_flags_outliers(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector(quantile=0.95).fit(windows[labels == 0])
        predictions = detector.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.8

    def test_benign_false_positive_rate_bounded(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector(quantile=0.95).fit(windows[labels == 0])
        predictions = detector.predict(windows[labels == 0])
        assert np.mean(predictions) < 0.25

    def test_accepts_labels_and_filters_benign(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = KNNDistanceDetector().fit(windows, labels)
        assert detector.predict(windows[:4]).shape == (4,)


class TestOneClassSVM:
    def test_rbf_detects_anomalies(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0)
        detector.fit(windows[labels == 0])
        predictions = detector.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.8
        assert np.mean(predictions[labels == 0] == 1) < 0.35

    def test_nu_controls_benign_rejection(self, toy_detection_data):
        windows, labels = toy_detection_data
        benign = windows[labels == 0]
        tight = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.05, seed=0).fit(benign)
        loose = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.5, seed=0).fit(benign)
        tight_rate = np.mean(tight.predict(benign))
        loose_rate = np.mean(loose.predict(benign))
        assert loose_rate > tight_rate

    def test_decision_function_sign_convention(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0).fit(
            windows[labels == 0]
        )
        decisions = detector.decision_function(windows)
        predictions = detector.predict(windows)
        np.testing.assert_array_equal(predictions, (decisions < 0).astype(int))

    def test_invalid_nu_rejected(self):
        with pytest.raises(ValueError):
            OneClassSVMDetector(nu=0.0)

    def test_subsampling_limits_training_size(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.2, max_samples=30, seed=0)
        detector.fit(windows[labels == 0])
        assert len(detector._train_scaled) <= 30

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSVMDetector().predict(np.zeros((1, 12, 4)))

    def test_sigmoid_kernel_runs(self, toy_detection_data):
        windows, labels = toy_detection_data
        detector = OneClassSVMDetector(kernel="sigmoid", coef0=10.0, nu=0.5, seed=0)
        detector.fit(windows[labels == 0][:40])
        assert detector.predict(windows[:5]).shape == (5,)


class TestMADGAN:
    @pytest.fixture(scope="class")
    def fitted_madgan(self):
        windows, labels = make_toy_windows(
            n_benign=120, n_malicious=0, seed=3
        )
        detector = MADGANDetector(epochs=4, hidden_size=12, inversion_steps=25, seed=0)
        detector.fit(windows[labels == 0])
        return detector

    def test_training_history_recorded(self, fitted_madgan):
        assert len(fitted_madgan.history_.generator_losses) == 4
        assert len(fitted_madgan.history_.discriminator_losses) == 4

    def test_detects_large_manipulations(self, fitted_madgan):
        windows, labels = make_toy_windows(
            n_benign=30, n_malicious=30, seed=9
        )
        predictions = fitted_madgan.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.7

    def test_benign_false_positive_rate_bounded(self, fitted_madgan):
        windows, labels = make_toy_windows(
            n_benign=40, n_malicious=0, seed=11
        )
        assert np.mean(fitted_madgan.predict(windows)) < 0.3

    def test_wrong_window_shape_rejected(self, fitted_madgan):
        with pytest.raises(ValueError):
            fitted_madgan.predict(np.zeros((2, 5, 4)))

    def test_scores_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            MADGANDetector().scores(np.zeros((1, 12, 4)))

    def test_invalid_reconstruction_weight(self):
        with pytest.raises(ValueError):
            MADGANDetector(reconstruction_weight=1.5)


class TestMADGANFastPathRegression:
    """The graph-free inversion/scoring fast paths are pinned to the autodiff
    reference: reconstruction errors within 1e-8, detection decisions
    unchanged."""

    @pytest.fixture(scope="class")
    def fitted(self):
        windows, labels = make_toy_windows(n_benign=90, n_malicious=0, seed=3)
        detector = MADGANDetector(epochs=3, hidden_size=10, inversion_steps=20, seed=0)
        detector.fit(windows[labels == 0])
        return detector

    def test_reconstruction_errors_match_graph_path(self, fitted):
        windows, _ = make_toy_windows(n_benign=12, n_malicious=8, seed=21)
        scaled = fitted._scale(windows)
        latent = fitted._sample_latent(len(scaled)) * 0.1
        fast = fitted._reconstruction_errors(scaled, fast_path=True, initial_latent=latent)
        graph = fitted._reconstruction_errors(scaled, fast_path=False, initial_latent=latent)
        np.testing.assert_allclose(fast, graph, atol=1e-8, rtol=0.0)

    def test_discrimination_scores_match_graph_path(self, fitted):
        windows, _ = make_toy_windows(n_benign=10, n_malicious=5, seed=22)
        scaled = fitted._scale(windows)
        fast = fitted._discrimination_scores(scaled)
        fitted.use_fast_path = False
        try:
            graph = fitted._discrimination_scores(scaled)
        finally:
            fitted.use_fast_path = True
        np.testing.assert_allclose(fast, graph, atol=1e-10, rtol=0.0)

    def test_detection_decisions_unchanged(self, fitted):
        # Same fitted detector, same latent initialization: routing the DR
        # score through the fast path must not flip a single decision on the
        # seed fixture windows.
        windows, _ = make_toy_windows(n_benign=20, n_malicious=12, seed=33)
        scaled = fitted._scale(windows)
        latent = fitted._sample_latent(len(scaled)) * 0.1

        def decisions(fast_path: bool) -> np.ndarray:
            reconstruction = fitted._reconstruction_errors(
                scaled, fast_path=fast_path, initial_latent=latent
            )
            fitted.use_fast_path = fast_path
            try:
                scores = fitted._dr_scores(scaled, reconstruction)
            finally:
                fitted.use_fast_path = True
            return fitted.calibrator.predict(scores)

        np.testing.assert_array_equal(decisions(True), decisions(False))

    def test_inversion_grad_matches_autodiff(self, fitted):
        from repro.nn import Parameter, Tensor

        windows, _ = make_toy_windows(n_benign=6, n_malicious=0, seed=44)
        scaled = fitted._scale(windows)
        latent_values = fitted._sample_latent(len(scaled)) * 0.1

        generated_fast, grad_fast = fitted.generator.inversion_grad(latent_values, scaled)

        latent = Parameter(latent_values.copy(), name="latent")
        fitted.generator.zero_grad()
        generated = fitted.generator(latent)
        residual = generated - Tensor(scaled)
        (residual * residual).mean().backward()

        np.testing.assert_allclose(generated_fast, generated.numpy(), atol=1e-10, rtol=0.0)
        np.testing.assert_allclose(grad_fast, latent.grad, atol=1e-12, rtol=0.0)
        fitted.generator.zero_grad()


class TestEnsemble:
    def test_majority_vote(self, toy_detection_data):
        windows, labels = toy_detection_data
        ensemble = VotingEnsembleDetector(
            [KNNClassifierDetector(n_neighbors=3), KNNDistanceDetector(), OneClassSVMDetector(kernel="rbf", gamma="scale", nu=0.1, seed=0)]
        )
        ensemble.fit(windows, labels)
        predictions = ensemble.predict(windows)
        assert np.mean(predictions[labels == 1] == 1) > 0.6

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            VotingEnsembleDetector([])

    def test_min_votes_validated(self):
        with pytest.raises(ValueError):
            VotingEnsembleDetector([KNNDistanceDetector()], min_votes=5)
