"""Tests for meal/bolus/exercise behaviour generation."""

import numpy as np
import pytest

from repro.data.events import (
    BehaviourProfile,
    BolusPolicy,
    DailyScheduleGenerator,
    ExercisePlan,
    MealPlan,
    MINUTES_PER_DAY,
)


class TestMealPlan:
    def test_mismatched_meals_rejected(self):
        with pytest.raises(ValueError):
            MealPlan(meal_times=(420,), meal_carbs=(40.0, 50.0))

    def test_defaults_are_three_meals(self):
        plan = MealPlan()
        assert len(plan.meal_times) == 3


class TestScheduleGenerator:
    def test_output_length(self):
        inputs = DailyScheduleGenerator(BehaviourProfile(), seed=0).generate(3)
        assert inputs.minutes == 3 * MINUTES_PER_DAY

    def test_invalid_days_rejected(self):
        with pytest.raises(ValueError):
            DailyScheduleGenerator(BehaviourProfile(), seed=0).generate(0)

    def test_reproducible_with_seed(self):
        first = DailyScheduleGenerator(BehaviourProfile(), seed=4).generate(2)
        second = DailyScheduleGenerator(BehaviourProfile(), seed=4).generate(2)
        np.testing.assert_array_equal(first.carbs, second.carbs)
        np.testing.assert_array_equal(first.bolus, second.bolus)

    def test_daily_carbs_are_plausible(self):
        inputs = DailyScheduleGenerator(BehaviourProfile(), seed=1).generate(10)
        per_day = inputs.carbs.reshape(10, MINUTES_PER_DAY).sum(axis=1)
        assert np.all(per_day >= 0)
        assert 50 <= per_day.mean() <= 350

    def test_basal_constant(self):
        behaviour = BehaviourProfile(basal_rate=0.9)
        inputs = DailyScheduleGenerator(behaviour, seed=0).generate(1)
        assert np.all(inputs.basal == 0.9)

    def test_noncompliant_patient_boluses_less(self):
        compliant = BehaviourProfile(bolus_policy=BolusPolicy(compliance=1.0, correction_probability=0.0))
        skipper = BehaviourProfile(bolus_policy=BolusPolicy(compliance=0.2, correction_probability=0.0))
        days = 15
        compliant_total = DailyScheduleGenerator(compliant, seed=2).generate(days).bolus.sum()
        skipper_total = DailyScheduleGenerator(skipper, seed=2).generate(days).bolus.sum()
        assert skipper_total < compliant_total * 0.7

    def test_exercise_only_within_window(self):
        behaviour = BehaviourProfile(exercise_plan=ExercisePlan(session_probability=1.0))
        inputs = DailyScheduleGenerator(behaviour, seed=3).generate(5)
        for day in range(5):
            day_slice = inputs.exercise[day * MINUTES_PER_DAY : (day + 1) * MINUTES_PER_DAY]
            active = np.where(day_slice > 0)[0]
            if len(active):
                assert active.min() >= 16 * 60
                assert active.max() <= 21 * 60

    def test_correction_probability_adds_boluses(self):
        no_corrections = BehaviourProfile(
            bolus_policy=BolusPolicy(compliance=1.0, correction_probability=0.0)
        )
        with_corrections = BehaviourProfile(
            bolus_policy=BolusPolicy(compliance=1.0, correction_probability=1.0)
        )
        days = 10
        base_total = DailyScheduleGenerator(no_corrections, seed=7).generate(days).bolus.sum()
        corrected_total = DailyScheduleGenerator(with_corrections, seed=7).generate(days).bolus.sum()
        assert corrected_total > base_total

    def test_pre_bolus_shifts_timing_earlier(self):
        plan = MealPlan(time_jitter_std=0.0, snack_probability=0.0, skip_probability=0.0)
        on_time = BehaviourProfile(
            meal_plan=plan,
            bolus_policy=BolusPolicy(
                compliance=1.0, timing_offset=0.0, timing_error_std=0.0, correction_probability=0.0
            ),
        )
        early = BehaviourProfile(
            meal_plan=plan,
            bolus_policy=BolusPolicy(
                compliance=1.0, timing_offset=-20.0, timing_error_std=0.0, correction_probability=0.0
            ),
        )
        on_time_minutes = np.where(DailyScheduleGenerator(on_time, seed=5).generate(1).bolus > 0)[0]
        early_minutes = np.where(DailyScheduleGenerator(early, seed=5).generate(1).bolus > 0)[0]
        assert early_minutes.min() < on_time_minutes.min()
