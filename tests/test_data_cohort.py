"""Tests for patient profiles, the synthetic cohort, and dataset views."""

import numpy as np
import pytest

from repro.data import (
    CGM_COLUMN,
    FEATURE_NAMES,
    ForecastingDataset,
    SUBSET_A,
    SUBSET_B,
    SyntheticOhioT1DM,
    WindowScaler,
    build_cohort_profiles,
    build_feature_matrix,
    detection_windows,
    expected_less_vulnerable_labels,
    expected_more_vulnerable_labels,
    flatten_windows,
    make_patient_profile,
)


class TestPatientProfiles:
    def test_cohort_has_twelve_patients(self):
        profiles = build_cohort_profiles()
        assert len(profiles) == 12
        assert sum(1 for profile in profiles if profile.subset == SUBSET_A) == 6
        assert sum(1 for profile in profiles if profile.subset == SUBSET_B) == 6

    def test_labels_are_unique(self):
        labels = [profile.label for profile in build_cohort_profiles()]
        assert len(set(labels)) == 12

    def test_expected_vulnerability_split_partitions_cohort(self):
        less = set(expected_less_vulnerable_labels())
        more = set(expected_more_vulnerable_labels())
        all_labels = {profile.label for profile in build_cohort_profiles()}
        assert less | more == all_labels
        assert not less & more

    def test_less_vulnerable_patients_have_better_control(self):
        profiles = {profile.label: profile for profile in build_cohort_profiles()}
        for label in expected_less_vulnerable_labels():
            assert profiles[label].control_level in ("excellent", "good")

    def test_invalid_subset_rejected(self):
        with pytest.raises(ValueError):
            make_patient_profile("C", 0)

    def test_invalid_control_level_rejected(self):
        with pytest.raises(ValueError):
            make_patient_profile(SUBSET_A, 0, control_level="heroic")

    def test_single_subset_build(self):
        profiles = build_cohort_profiles(subsets=(SUBSET_A,))
        assert len(profiles) == 6


class TestCohortGeneration:
    def test_records_and_labels(self, tiny_cohort):
        assert len(tiny_cohort) == 4
        assert set(tiny_cohort.labels) == {"A_5", "B_2", "A_0", "A_2"}

    def test_feature_matrix_shape_and_names(self, tiny_cohort):
        record = tiny_cohort["A_5"]
        features = record.features("train")
        assert features.shape[1] == len(FEATURE_NAMES)
        assert features.shape[0] == record.train.n_samples

    def test_feature_matrix_cgm_column(self, tiny_cohort):
        record = tiny_cohort["A_5"]
        np.testing.assert_array_equal(record.features("train")[:, CGM_COLUMN], record.train.cgm)

    def test_invalid_split_rejected(self, tiny_cohort):
        with pytest.raises(ValueError):
            tiny_cohort["A_5"].features("validation")

    def test_subset_selection(self, tiny_cohort):
        subset = tiny_cohort.subset(SUBSET_A)
        assert set(subset.labels) == {"A_5", "A_0", "A_2"}

    def test_select_unknown_label_raises(self, tiny_cohort):
        with pytest.raises(KeyError):
            tiny_cohort.select(["Z_9"])

    def test_generation_is_deterministic(self):
        profiles = [make_patient_profile(SUBSET_A, 5)]
        first = SyntheticOhioT1DM(train_days=1, test_days=1, seed=3, profiles=profiles).generate()
        second = SyntheticOhioT1DM(train_days=1, test_days=1, seed=3, profiles=profiles).generate()
        np.testing.assert_allclose(first["A_5"].train.cgm, second["A_5"].train.cgm)

    def test_different_seeds_differ(self):
        profiles = [make_patient_profile(SUBSET_A, 5)]
        first = SyntheticOhioT1DM(train_days=1, test_days=1, seed=3, profiles=profiles).generate()
        second = SyntheticOhioT1DM(train_days=1, test_days=1, seed=4, profiles=profiles).generate()
        assert not np.allclose(first["A_5"].train.cgm, second["A_5"].train.cgm)

    def test_invalid_days_rejected(self):
        with pytest.raises(ValueError):
            SyntheticOhioT1DM(train_days=0, test_days=1)

    def test_well_controlled_patient_has_higher_normal_fraction(self, tiny_cohort):
        good = tiny_cohort["A_5"].cgm("train")
        bad = tiny_cohort["A_2"].cgm("train")
        good_normal = np.mean((good >= 70) & (good <= 180))
        bad_normal = np.mean((bad >= 70) & (bad <= 180))
        assert good_normal > bad_normal + 0.2


class TestForecastingDataset:
    def test_window_shapes(self, tiny_cohort):
        dataset = ForecastingDataset(history=12, horizon=6)
        windows, targets, indices = dataset.from_record(tiny_cohort["A_5"], "train")
        assert windows.shape[1:] == (12, 4)
        assert len(windows) == len(targets) == len(indices)

    def test_targets_match_future_cgm(self, tiny_cohort):
        record = tiny_cohort["A_5"]
        dataset = ForecastingDataset(history=12, horizon=6)
        windows, targets, indices = dataset.from_record(record, "train")
        features = record.features("train")
        np.testing.assert_allclose(targets[0], features[indices[0], CGM_COLUMN])
        assert indices[0] == 12 + 6 - 1

    def test_cohort_pooling(self, tiny_cohort):
        dataset = ForecastingDataset()
        windows, targets, labels = dataset.from_cohort(tiny_cohort, "train")
        assert len(windows) == len(labels)
        assert set(labels) == set(tiny_cohort.labels)

    def test_too_short_series_yields_empty(self):
        dataset = ForecastingDataset(history=12, horizon=6)
        windows, targets, indices = dataset.windows_from_features(np.zeros((10, 4)))
        assert len(windows) == 0

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            ForecastingDataset(history=0)


class TestWindowScaler:
    def test_roundtrip_targets(self, rng):
        windows = rng.normal(100, 20, size=(50, 12, 4))
        scaler = WindowScaler().fit(windows)
        targets = rng.normal(100, 20, size=10)
        np.testing.assert_allclose(scaler.unscale_target(scaler.scale_target(targets)), targets)

    def test_transform_shape_preserved(self, rng):
        windows = rng.normal(size=(20, 12, 4))
        scaler = WindowScaler().fit(windows)
        assert scaler.transform(windows).shape == windows.shape

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            WindowScaler().transform(np.zeros((1, 2, 3)))


class TestDetectionHelpers:
    def test_detection_windows_shape(self):
        features = np.zeros((30, 4))
        assert detection_windows(features, sequence_length=12).shape == (19, 12, 4)

    def test_flatten_windows(self):
        assert flatten_windows(np.zeros((5, 12, 4))).shape == (5, 48)
