"""Tests for metrics, the experiment harness, and report rendering."""

import numpy as np
import pytest

from repro.detectors import KNNClassifierDetector
from repro.eval import (
    ConfusionMatrix,
    DetectorSpec,
    SelectiveTrainingExperiment,
    attack_success_report,
    benign_ratio_by_patient,
    confusion_matrix,
    f1_score,
    false_negative_rate_by_patient,
    percentage_change,
    precision_score,
    quadrant_breakdown,
    recall_score,
    render_attack_success,
    render_headline_claims,
    render_metric_figure,
    render_quadrants,
    render_ratio_figure,
    render_severity_table,
    trace_detection,
)
from repro.risk import STRATEGY_ALL, STRATEGY_LESS_VULNERABLE, SelectionPlanner


class TestMetrics:
    def test_confusion_matrix_counts(self):
        matrix = confusion_matrix([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert matrix.true_positives == 2
        assert matrix.false_negatives == 1
        assert matrix.false_positives == 1
        assert matrix.true_negatives == 1

    def test_precision_recall_f1(self):
        true = [1, 1, 0, 0, 1]
        predicted = [1, 0, 0, 1, 1]
        assert precision_score(true, predicted) == pytest.approx(2 / 3)
        assert recall_score(true, predicted) == pytest.approx(2 / 3)
        assert f1_score(true, predicted) == pytest.approx(2 / 3)

    def test_recall_is_complement_of_false_negative_rate(self):
        matrix = confusion_matrix([1, 1, 1, 0], [1, 0, 0, 0])
        assert matrix.recall + matrix.false_negative_rate == pytest.approx(1.0)

    def test_zero_division_handled(self):
        matrix = confusion_matrix([0, 0], [0, 0])
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_percentage_change(self):
        assert percentage_change(1.275, 1.0) == pytest.approx(27.5)
        assert percentage_change(0.95, 1.0) == pytest.approx(-5.0)
        assert percentage_change(0.5, 0.0) == float("inf")

    def test_as_dict_keys(self):
        matrix = ConfusionMatrix(1, 2, 3, 4)
        data = matrix.as_dict()
        assert set(data) >= {"precision", "recall", "f1", "false_negative_rate"}


class TestFigureHelpers:
    def test_benign_ratio_ordering(self, tiny_cohort):
        ratios = benign_ratio_by_patient(tiny_cohort)
        assert set(ratios) == set(tiny_cohort.labels)
        # The well-controlled patient must show a clearly higher ratio than the
        # poorly controlled one (the paper's Figure 4 message).
        assert ratios["A_5"] > ratios["A_2"]

    def test_quadrant_counts_total(self, tiny_test_campaign):
        counts = quadrant_breakdown(tiny_test_campaign)
        assert counts.total > 0
        assert counts.benign_normal + counts.benign_abnormal == len(
            [r for r in tiny_test_campaign.records]
        )

    def test_quadrant_per_patient_filter(self, tiny_test_campaign):
        all_counts = quadrant_breakdown(tiny_test_campaign)
        single = quadrant_breakdown(tiny_test_campaign, patient_label="A_5")
        assert single.total <= all_counts.total

    def test_attack_success_report(self, tiny_test_campaign):
        report = attack_success_report(tiny_test_campaign)
        assert set(report.normal_to_hyper) == set(tiny_test_campaign.patient_labels)
        values = [v for v in report.normal_to_hyper.values() if not np.isnan(v)]
        assert values and all(0.0 <= value <= 1.0 for value in values)

    def test_trace_detection_and_false_negatives(self, tiny_train_campaign, tiny_test_campaign):
        windows, labels, _ = tiny_train_campaign.sample_dataset()
        detector = KNNClassifierDetector().fit(windows, labels)
        samples = trace_detection(detector, tiny_test_campaign, "A_5")
        assert samples
        assert any(sample.is_malicious for sample in samples)
        rates = false_negative_rate_by_patient(detector, tiny_test_campaign)
        assert "A_5" in rates


class TestSelectiveTrainingExperiment:
    @pytest.fixture(scope="class")
    def result(self, tiny_train_campaign, tiny_test_campaign, tiny_cohort):
        factories = {
            "kNN": DetectorSpec(factory=lambda: KNNClassifierDetector(n_neighbors=5), unit="sample"),
        }
        experiment = SelectiveTrainingExperiment(
            train_campaign=tiny_train_campaign,
            test_campaign=tiny_test_campaign,
            detector_factories=factories,
        )
        planner = SelectionPlanner(
            all_labels=sorted(tiny_cohort.labels),
            less_vulnerable=["A_5", "B_2"],
            random_runs=2,
            seed=0,
        )
        return experiment.run(planner.plan())

    def test_result_covers_all_strategies(self, result):
        assert set(result.strategies) == {
            "Less Vulnerable",
            "More Vulnerable",
            "Random Samples",
            "All Patients",
        }

    def test_metrics_in_unit_interval(self, result):
        for detector in result.detectors:
            for strategy in result.strategies:
                outcome = result.outcome(detector, strategy)
                assert 0.0 <= outcome.recall <= 1.0
                assert 0.0 <= outcome.precision <= 1.0
                assert 0.0 <= outcome.f1 <= 1.0

    def test_random_strategy_averages_runs(self, result):
        assert result.outcome("kNN", "Random Samples").n_runs == 2

    def test_less_vulnerable_recall_at_least_more_vulnerable(self, result):
        less = result.outcome("kNN", STRATEGY_LESS_VULNERABLE).recall
        more = result.outcome("kNN", "More Vulnerable").recall
        assert less >= more

    def test_metric_table_structure(self, result):
        table = result.metric_table("recall")
        assert "kNN" in table
        assert set(table["kNN"]) == set(result.strategies)

    def test_rendering_helpers(self, result):
        assert "Less Vulnerable" in render_metric_figure(result, "recall")
        assert "kNN" in render_headline_claims(result)

    def test_invalid_detector_unit_rejected(self):
        with pytest.raises(ValueError):
            DetectorSpec(factory=lambda: KNNClassifierDetector(), unit="minute")


class TestRendering:
    def test_severity_table_mentions_worst_transition(self):
        text = render_severity_table()
        assert "64" in text
        assert "hypo" in text

    def test_ratio_figure_renders_all_patients(self, tiny_cohort):
        text = render_ratio_figure(benign_ratio_by_patient(tiny_cohort))
        for label in tiny_cohort.labels:
            assert label in text

    def test_quadrant_rendering(self, tiny_test_campaign):
        text = render_quadrants(quadrant_breakdown(tiny_test_campaign))
        assert "malicious" in text
        assert "benign" in text

    def test_attack_success_rendering(self, tiny_test_campaign):
        report = attack_success_report(tiny_test_campaign)
        text = render_attack_success(report, "normal_to_hyper")
        assert "Average" in text
        with pytest.raises(ValueError):
            render_attack_success(report, "hyper_to_normal")
