"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_finite,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    ensure_2d,
)


class TestCheckArray:
    def test_converts_lists(self):
        result = check_array([1, 2, 3])
        assert isinstance(result, np.ndarray)
        assert result.dtype == np.float64

    def test_ndim_enforced(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_array([[1.0, 2.0]], ndim=1)

    def test_min_samples_enforced(self):
        with pytest.raises(ValueError, match="at least"):
            check_array([1.0], min_samples=2)

    def test_empty_rejected_when_disallowed(self):
        with pytest.raises(ValueError, match="empty"):
            check_array([], allow_empty=False)

    def test_empty_allowed_by_default(self):
        assert check_array([]).size == 0


class TestCheckFinite:
    def test_accepts_finite(self):
        check_finite([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite([np.inf])


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert check_positive(2.0) == 2.0

    def test_check_positive_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_check_positive_non_strict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_check_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_check_in_range_inclusive(self):
        assert check_in_range(5.0, 0.0, 5.0) == 5.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(5.0, 0.0, 5.0, inclusive=False)


class TestEnsure2d:
    def test_promotes_1d(self):
        assert ensure_2d([1.0, 2.0]).shape == (2, 1)

    def test_keeps_2d(self):
        assert ensure_2d([[1.0, 2.0]]).shape == (1, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            ensure_2d(np.zeros((1, 2, 3)))


class TestConsistency:
    def test_consistent_length_ok(self):
        assert check_consistent_length([1, 2], [3, 4]) == 2

    def test_inconsistent_length_raises(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_consistent_length([1, 2], [3])

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            check_consistent_length(None, None)


class TestCheckFitted:
    def test_passes_when_attributes_set(self):
        class Dummy:
            weights_ = 1.0

        check_fitted(Dummy(), ("weights_",))

    def test_raises_when_missing(self):
        class Dummy:
            weights_ = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Dummy(), ("weights_",))
