"""Tests for the batched attack engine: lockstep search, query accounting,
RNG de-correlation, and batched/per-window equivalence."""

import numpy as np
import pytest

from repro.attacks import (
    AttackCampaign,
    EvasionAttack,
    GreedyExplorer,
    RandomExplorer,
    SuffixLevelTransformer,
    constraint_for_scenario,
    default_transformers,
)
from repro.data.cohort import CGM_COLUMN
from repro.glucose import Scenario


def benign_window(level: float = 110.0, history: int = 12) -> np.ndarray:
    window = np.zeros((history, 4))
    window[:, CGM_COLUMN] = level
    window[:, 1] = 0.5
    window[:, 3] = 70.0
    return window


class CountingPredictor:
    """Last-value stub that counts every window row scored by the model."""

    def __init__(self):
        self.rows_scored = 0

    def predict(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        self.rows_scored += len(windows)
        return windows[:, -1, CGM_COLUMN]

    def predict_one(self, window):
        return float(self.predict(np.asarray(window)[np.newaxis])[0])


def assert_results_equal(left, right):
    assert left.eligible == right.eligible
    assert left.success == right.success
    assert left.benign_state == right.benign_state
    assert left.adversarial_state == right.adversarial_state
    assert left.path == right.path
    assert left.queries == right.queries
    np.testing.assert_array_equal(left.benign_window, right.benign_window)
    np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
    assert left.benign_prediction == pytest.approx(right.benign_prediction, abs=1e-10)
    assert left.adversarial_prediction == pytest.approx(right.adversarial_prediction, abs=1e-10)


class TestQueryAccounting:
    def test_reported_queries_match_actual_model_queries(self):
        predictor = CountingPredictor()
        attack = EvasionAttack(predictor)
        result = attack.attack_window(benign_window(110.0), Scenario.POSTPRANDIAL)
        assert result.eligible
        assert result.queries == predictor.rows_scored

    def test_ineligible_window_costs_one_query(self):
        predictor = CountingPredictor()
        attack = EvasionAttack(predictor)
        result = attack.attack_window(benign_window(250.0), Scenario.POSTPRANDIAL)
        assert not result.eligible
        assert result.queries == predictor.rows_scored == 1

    def test_batch_queries_match_actual_model_queries(self):
        predictor = CountingPredictor()
        attack = EvasionAttack(predictor)
        windows = np.stack([benign_window(level) for level in (95.0, 120.0, 240.0, 150.0)])
        results = attack.attack_batch(windows, [Scenario.POSTPRANDIAL] * 4)
        assert sum(result.queries for result in results) == predictor.rows_scored

    def test_explorer_skips_rescoring_when_given_initial_score(self):
        predictor = CountingPredictor()
        explorer = GreedyExplorer(max_depth=1)
        result = explorer.search(
            original=benign_window(110.0),
            transformers=[SuffixLevelTransformer(levels=(260.0,), suffix_lengths=(2,))],
            constraint=constraint_for_scenario(Scenario.POSTPRANDIAL),
            score_function=predictor.predict,
            goal_function=lambda window, score: score > 200.0,
            initial_score=110.0,
        )
        assert result.queries == predictor.rows_scored  # no benign re-score


class TestLockstepEquivalence:
    LEVELS = (90.0, 100.0, 110.0, 150.0, 175.0, 250.0, 400.0)

    def _compare(self, explorer_factory):
        windows = np.stack([benign_window(level) for level in self.LEVELS])
        scenarios = [
            Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING
            for index in range(len(self.LEVELS))
        ]
        batched = EvasionAttack(CountingPredictor(), explorer=explorer_factory()).attack_batch(
            windows, scenarios
        )
        sequential = EvasionAttack(CountingPredictor(), explorer=explorer_factory()).attack_batch(
            windows, scenarios, batched=False
        )
        assert len(batched) == len(sequential) == len(self.LEVELS)
        for left, right in zip(batched, sequential):
            assert_results_equal(left, right)

    def test_greedy_lockstep_reproduces_per_window_results(self):
        self._compare(lambda: GreedyExplorer(max_depth=3))

    def test_random_lockstep_reproduces_per_window_results(self):
        # The lockstep walk rounds must consume the persistent RNG exactly
        # like sequential per-window search calls (one child seed per window).
        self._compare(lambda: RandomExplorer(max_depth=2, n_walks=5, seed=3))

    def test_lockstep_with_real_predictor(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for("A_5")
        record = next(r for r in tiny_cohort if r.label == "A_5")
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        windows = windows[::10][:6]
        scenarios = [Scenario.POSTPRANDIAL] * len(windows)
        batched = EvasionAttack(predictor).attack_batch(windows, scenarios)
        sequential = EvasionAttack(predictor).attack_batch(windows, scenarios, batched=False)
        for left, right in zip(batched, sequential):
            assert left.eligible == right.eligible
            assert left.success == right.success
            assert left.path == right.path
            assert left.queries == right.queries
            np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
            assert left.benign_prediction == pytest.approx(right.benign_prediction, abs=1e-10)

    def test_empty_batch(self):
        attack = EvasionAttack(CountingPredictor())
        assert attack.attack_batch(np.empty((0, 12, 4)), []) == []

    def test_mismatched_lengths_rejected(self):
        attack = EvasionAttack(CountingPredictor())
        with pytest.raises(ValueError):
            attack.attack_batch(np.stack([benign_window()]), [])


class TestAliasingSafety:
    def test_attack_window_copies_caller_array(self):
        attack = EvasionAttack(CountingPredictor())
        window = benign_window(110.0)
        result = attack.attack_window(window, Scenario.POSTPRANDIAL)
        window[:, CGM_COLUMN] = -1.0  # caller mutates their buffer afterwards
        assert np.all(result.benign_window[:, CGM_COLUMN] == 110.0)

    def test_attack_batch_copies_caller_array(self):
        attack = EvasionAttack(CountingPredictor())
        windows = np.stack([benign_window(110.0), benign_window(250.0)])
        results = attack.attack_batch(windows, [Scenario.POSTPRANDIAL] * 2)
        windows[:] = -1.0
        assert np.all(results[0].benign_window[:, CGM_COLUMN] == 110.0)
        assert np.all(results[1].benign_window[:, CGM_COLUMN] == 250.0)


class TestRandomExplorerRNG:
    def _run_search(self, explorer, walk_log=None):
        def score(batch):
            batch = np.asarray(batch, dtype=np.float64)
            if walk_log is not None:
                walk_log.append(batch.copy())
            return batch[:, -1, CGM_COLUMN] * 0.0

        return explorer.search(
            original=benign_window(110.0),
            transformers=default_transformers(),
            constraint=constraint_for_scenario(Scenario.POSTPRANDIAL),
            score_function=score,
            goal_function=lambda window, score: False,  # unreachable: walk everywhere
            initial_score=0.0,
        )

    def test_consecutive_searches_are_decorrelated(self):
        explorer = RandomExplorer(max_depth=3, n_walks=3, seed=0)
        first_walks, second_walks = [], []
        self._run_search(explorer, first_walks)
        self._run_search(explorer, second_walks)
        # With the old fixed per-search seed every window got identical walks;
        # the shared stream must now produce different walk endpoints.
        assert not all(
            np.array_equal(left, right) for left, right in zip(first_walks, second_walks)
        )

    def test_same_seed_reproduces_the_sequence(self):
        results_a = [self._run_search(RandomExplorer(max_depth=2, n_walks=2, seed=42))]
        results_b = [self._run_search(RandomExplorer(max_depth=2, n_walks=2, seed=42))]
        for left, right in zip(results_a, results_b):
            np.testing.assert_array_equal(left.window, right.window)
            assert left.path == right.path

    def test_shared_rng_accepted(self):
        from repro.utils.rng import RandomState

        shared = RandomState(7)
        explorer = RandomExplorer(max_depth=2, n_walks=2, seed=shared)
        result = self._run_search(explorer)
        assert result.queries > 0


class TestRandomExplorerSeedDeterminism:
    """Batched campaigns with a random explorer replay exactly from a seed."""

    LEVELS = (95.0, 120.0, 240.0, 150.0, 105.0)

    def _run(self, batched: bool):
        windows = np.stack([benign_window(level) for level in self.LEVELS])
        scenarios = [Scenario.POSTPRANDIAL] * len(self.LEVELS)
        attack = EvasionAttack(
            CountingPredictor(), explorer=RandomExplorer(max_depth=2, n_walks=4, seed=17)
        )
        return attack.attack_batch(windows, scenarios, batched=batched)

    def test_same_seed_reproduces_batched_campaign(self):
        first = self._run(batched=True)
        second = self._run(batched=True)
        for left, right in zip(first, second):
            assert_results_equal(left, right)

    def test_batched_replays_sequential_for_fixed_seed(self):
        batched = self._run(batched=True)
        sequential = self._run(batched=False)
        for left, right in zip(batched, sequential):
            assert_results_equal(left, right)


class TestCohortBatchedCampaign:
    """Cross-patient batching: one lockstep search per shared model."""

    @pytest.fixture(scope="class")
    def aggregate_zoo(self, tiny_cohort):
        from repro.glucose import GlucoseModelZoo

        zoo = GlucoseModelZoo(
            predictor_kwargs=dict(epochs=1, hidden_size=8),
            train_personalized=False,  # every patient shares the aggregate model
            seed=5,
        )
        zoo.fit(tiny_cohort)
        return zoo

    def _assert_campaigns_equal(self, left, right):
        assert len(left.records) == len(right.records) > 0
        for a, b in zip(left.records, right.records):
            assert a.patient_label == b.patient_label
            assert a.split == b.split
            assert a.window_index == b.window_index
            assert a.target_index == b.target_index
            assert a.result.eligible == b.result.eligible
            assert a.result.success == b.result.success
            assert a.result.path == b.result.path
            assert a.result.queries == b.result.queries
            np.testing.assert_array_equal(
                a.result.adversarial_window, b.result.adversarial_window
            )

    def test_cohort_batched_matches_per_patient(self, aggregate_zoo, tiny_cohort):
        merged = AttackCampaign(aggregate_zoo, stride=12, cohort_batched=True).run_cohort(
            tiny_cohort, "test"
        )
        per_patient = AttackCampaign(
            aggregate_zoo, stride=12, cohort_batched=False
        ).run_cohort(tiny_cohort, "test")
        self._assert_campaigns_equal(merged, per_patient)

    def test_cohort_batched_preserves_attribution_with_personalized_models(
        self, tiny_zoo, tiny_cohort
    ):
        # Personalized zoo: every model group is a single patient, so the
        # merged path must degrade to exactly the per-patient records.
        merged = AttackCampaign(tiny_zoo, stride=12, cohort_batched=True).run_cohort(
            tiny_cohort, "test"
        )
        per_patient = AttackCampaign(tiny_zoo, stride=12, cohort_batched=False).run_cohort(
            tiny_cohort, "test"
        )
        self._assert_campaigns_equal(merged, per_patient)
        assert merged.patient_labels == [record.label for record in tiny_cohort]

    def test_cohort_batched_issues_fewer_model_calls(self, aggregate_zoo, tiny_cohort):
        calls = []
        predictor = aggregate_zoo.aggregate
        original_predict = predictor.predict

        def counting_predict(windows):
            calls.append(len(windows))
            return original_predict(windows)

        predictor.predict = counting_predict
        try:
            AttackCampaign(aggregate_zoo, stride=12, cohort_batched=True).run_cohort(
                tiny_cohort, "test"
            )
            merged_calls = len(calls)
            calls.clear()
            AttackCampaign(aggregate_zoo, stride=12, cohort_batched=False).run_cohort(
                tiny_cohort, "test"
            )
            per_patient_calls = len(calls)
        finally:
            predictor.predict = original_predict
        assert merged_calls < per_patient_calls

    def test_separately_loaded_copies_merge_into_one_group(self, aggregate_zoo, tiny_cohort):
        # A fresh predictor object loaded from the aggregate's checkpoint
        # (weights + scaler) must land in the same lockstep group: grouping is
        # by state_hash, not object identity.
        import copy

        from repro.glucose import GlucoseModelZoo
        from repro.glucose.predictor import GlucosePredictor

        aggregate = aggregate_zoo.aggregate
        clone = GlucosePredictor(hidden_size=8)
        clone.load_state_dict(aggregate.state_dict())
        clone.scaler = copy.deepcopy(aggregate.scaler)
        assert clone is not aggregate
        assert clone.state_hash() == aggregate.state_hash()

        zoo = GlucoseModelZoo(dataset=aggregate_zoo.dataset)
        zoo.models = dict(aggregate_zoo.models)
        first_label = next(iter(tiny_cohort)).label
        zoo.models[first_label] = clone  # this patient now uses the loaded copy

        factory_calls = []

        def counting_factory(predictor):
            factory_calls.append(predictor)
            return EvasionAttack(predictor)

        merged = AttackCampaign(
            zoo, stride=12, cohort_batched=True, attack_factory=counting_factory
        ).run_cohort(tiny_cohort, "test")
        assert len(factory_calls) == 1  # one group despite two predictor objects

        per_patient = AttackCampaign(zoo, stride=12, cohort_batched=False).run_cohort(
            tiny_cohort, "test"
        )
        self._assert_campaigns_equal(merged, per_patient)

    def test_different_weights_stay_in_separate_groups(self, tiny_zoo, tiny_cohort):
        factory_calls = []

        def counting_factory(predictor):
            factory_calls.append(predictor)
            return EvasionAttack(predictor)

        AttackCampaign(
            tiny_zoo, stride=12, cohort_batched=True, attack_factory=counting_factory
        ).run_cohort(tiny_cohort, "test")
        # Personalized zoo: every patient has its own weights, so no merging.
        assert len(factory_calls) == len(tiny_cohort)

    def test_sequential_campaign_ignores_cohort_batching(self, tiny_zoo, tiny_cohort):
        campaign = AttackCampaign(tiny_zoo, stride=12, batched=False, cohort_batched=True)
        assert campaign.cohort_batched  # explicit flag kept, but batched=False wins
        record = next(iter(tiny_cohort))
        result = campaign.run_cohort(tiny_cohort.select([record.label]), "test")
        assert len(result.records) > 0


class TestBatchedCampaign:
    def test_batched_campaign_matches_sequential(self, tiny_zoo, tiny_cohort):
        record = next(r for r in tiny_cohort if r.label == "A_5")
        batched = AttackCampaign(tiny_zoo, stride=12).run_patient(record, "test")
        sequential = AttackCampaign(tiny_zoo, stride=12, batched=False).run_patient(record, "test")
        assert len(batched.records) == len(sequential.records) > 0
        for left, right in zip(batched.records, sequential.records):
            assert left.window_index == right.window_index
            assert left.target_index == right.target_index
            assert left.result.eligible == right.result.eligible
            assert left.result.success == right.result.success
            assert left.result.path == right.result.path
            assert left.result.queries == right.result.queries
            np.testing.assert_array_equal(
                left.result.adversarial_window, right.result.adversarial_window
            )


class MeanTailPredictor:
    """Stub predicting the mean of the last four CGM samples (counts rows)."""

    def __init__(self):
        self.rows_scored = 0

    def predict(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        self.rows_scored += len(windows)
        return windows[:, -4:, CGM_COLUMN].mean(axis=1)

    def predict_one(self, window):
        return float(self.predict(np.asarray(window)[np.newaxis])[0])


class TestSeedPathWarmStart:
    """attack_batch(seed_paths=...) replays a prior tick's surviving path:
    a surviving seed resolves the window in 2 queries; a failed or broken
    seed falls back to the normal search with exact query accounting."""

    def test_replay_transformation_path_matches_manual_application(self):
        from repro.attacks import replay_transformation_path

        window = benign_window(110.0)
        constraint = constraint_for_scenario(Scenario.POSTPRANDIAL)
        path = ["set_last_2_to_220", "set_last_4_to_185"]
        replayed = replay_transformation_path(
            window, path, default_transformers(), constraint
        )
        current = window
        for description in path:
            for transformer in default_transformers():
                matches = [
                    edge
                    for edge in transformer.candidates(current)
                    if edge.description == description
                ]
                if matches:
                    current = constraint.project(matches[0].window, window)
                    break
        np.testing.assert_array_equal(replayed, current)

    def test_replay_unknown_description_returns_none(self):
        from repro.attacks import replay_transformation_path

        replayed = replay_transformation_path(
            benign_window(110.0),
            ["no_such_edge"],
            default_transformers(),
            constraint_for_scenario(Scenario.POSTPRANDIAL),
        )
        assert replayed is None

    def test_surviving_seed_path_costs_two_queries(self):
        predictor = CountingPredictor()
        attack = EvasionAttack(predictor)
        results = attack.attack_batch(
            np.stack([benign_window(110.0)]),
            [Scenario.POSTPRANDIAL],
            seed_paths=[["set_last_2_to_220"]],
        )
        result = results[0]
        assert result.eligible and result.success and result.warm_started
        assert result.path == ["set_last_2_to_220"]
        assert result.queries == 2  # eligibility screen + warm endpoint
        assert predictor.rows_scored == 2
        assert result.adversarial_prediction == pytest.approx(220.0)

    def test_failed_seed_path_adds_exactly_one_query(self):
        window = benign_window(110.0)
        baseline = EvasionAttack(MeanTailPredictor()).attack_batch(
            np.stack([window]), [Scenario.POSTPRANDIAL]
        )[0]
        # set_last_2_to_185 replays admissibly but predicts (110+110+185+185)/4
        # = 147.5 < 180: the warm endpoint fails and the search runs anyway.
        seeded = EvasionAttack(MeanTailPredictor()).attack_batch(
            np.stack([window]),
            [Scenario.POSTPRANDIAL],
            seed_paths=[["set_last_2_to_185"]],
        )[0]
        assert not seeded.warm_started
        assert seeded.success == baseline.success
        assert seeded.path == baseline.path
        assert seeded.queries == baseline.queries + 1
        np.testing.assert_array_equal(
            seeded.adversarial_window, baseline.adversarial_window
        )

    def test_broken_seed_path_is_free(self):
        window = benign_window(110.0)
        baseline = EvasionAttack(CountingPredictor()).attack_batch(
            np.stack([window]), [Scenario.POSTPRANDIAL]
        )[0]
        seeded = EvasionAttack(CountingPredictor()).attack_batch(
            np.stack([window]),
            [Scenario.POSTPRANDIAL],
            seed_paths=[["no_such_edge"]],
        )[0]
        assert not seeded.warm_started
        assert seeded.queries == baseline.queries
        assert seeded.path == baseline.path

    def test_ineligible_window_ignores_seed(self):
        results = EvasionAttack(CountingPredictor()).attack_batch(
            np.stack([benign_window(300.0)]),
            [Scenario.POSTPRANDIAL],
            seed_paths=[["set_last_2_to_220"]],
        )
        assert not results[0].eligible
        assert results[0].queries == 1

    def test_seed_paths_require_batched_mode(self):
        with pytest.raises(ValueError, match="batched"):
            EvasionAttack(CountingPredictor()).attack_batch(
                np.stack([benign_window(110.0)]),
                [Scenario.POSTPRANDIAL],
                batched=False,
                seed_paths=[["set_last_2_to_220"]],
            )

    def test_seed_paths_must_align(self):
        with pytest.raises(ValueError, match="align"):
            EvasionAttack(CountingPredictor()).attack_batch(
                np.stack([benign_window(110.0)]),
                [Scenario.POSTPRANDIAL],
                seed_paths=[],
            )


class PassConstraint:
    """Admissibility stub: everything is allowed, projection is identity."""

    def is_satisfied(self, window, original):
        return True

    def project(self, window, original):
        return np.asarray(window, dtype=np.float64)

    def satisfied_mask(self, windows, original):
        return np.ones(len(windows), dtype=bool)

    def project_batch(self, windows, original):
        return np.asarray(windows, dtype=np.float64)


class TestSeedBeamExplorers:
    """search_batch(seed_entries=...): a pre-scored (window, score, path) seed
    joins the explorer's starting beam without costing a model query."""

    @staticmethod
    def _toy():
        from repro.attacks.transformers import SuffixOffsetTransformer

        transformers = [SuffixOffsetTransformer(offsets=(10.0, 20.0), suffix_lengths=(1,))]
        constraint = PassConstraint()

        def score_function(batch):
            return np.asarray(batch)[:, -1, CGM_COLUMN]

        return transformers, constraint, score_function

    @staticmethod
    def _seed(window, offset, path):
        seeded = np.asarray(window, dtype=np.float64).copy()
        seeded[-1, CGM_COLUMN] += offset
        return (seeded, float(seeded[-1, CGM_COLUMN]), path)

    def _run(self, explorer, threshold, seed_entries=None):
        transformers, constraint, score_function = self._toy()
        window = benign_window(100.0)
        return explorer.search_batch(
            originals=[window],
            transformers=transformers,
            constraints=[constraint],
            score_function=score_function,
            goal_functions=[lambda w, s: s > threshold],
            initial_scores=[100.0],
            seed_entries=seed_entries,
        )[0]

    def test_greedy_resumes_from_seed(self):
        explorer = GreedyExplorer(max_depth=4)
        cold = self._run(explorer, threshold=165.0)
        assert cold.success and cold.queries == 8  # 4 depths x 2 edges
        seed = self._seed(benign_window(100.0), 50.0, ["seeded"])
        seeded = self._run(explorer, threshold=165.0, seed_entries=[seed])
        assert seeded.success
        assert seeded.queries == 2  # one depth from the 150-score seed
        assert seeded.path == ["seeded", "offset_last_1_by_20"]
        assert seeded.score == pytest.approx(170.0)

    def test_beam_includes_seed_in_starting_beam(self):
        from repro.attacks import BeamExplorer

        explorer = BeamExplorer(beam_width=2, max_depth=4)
        cold = self._run(explorer, threshold=165.0)
        seed = self._seed(benign_window(100.0), 50.0, ["seeded"])
        seeded = self._run(explorer, threshold=165.0, seed_entries=[seed])
        assert cold.success and seeded.success
        assert seeded.queries < cold.queries
        # Depth 1 expands BOTH beam items (seed + original): 4 candidates.
        assert seeded.queries == 4
        assert seeded.path == ["seeded", "offset_last_1_by_20"]

    def test_beam_width_one_keeps_only_the_better_entry(self):
        from repro.attacks import BeamExplorer

        explorer = BeamExplorer(beam_width=1, max_depth=1)
        seed = self._seed(benign_window(100.0), 50.0, ["seeded"])
        seeded = self._run(explorer, threshold=1e9, seed_entries=[seed])
        # Only the seed survives the width-1 beam: depth 1 scores 2 edges.
        assert seeded.queries == 2
        assert seeded.path[:1] == ["seeded"]

    def test_random_explorer_tracks_seed_as_best(self):
        explorer = RandomExplorer(max_depth=2, n_walks=3, seed=0)
        seed_window = benign_window(100.0)
        seed = self._seed(seed_window, 50.0, ["seeded"])
        # Walks top out at 100 + 2 * 20 = 140 < 150: the seed stays best.
        result = self._run(explorer, threshold=1e9, seed_entries=[seed])
        assert not result.success
        assert result.score == pytest.approx(150.0)
        assert result.path == ["seeded"]
        np.testing.assert_array_equal(result.window, seed[0])

    def test_worse_seed_is_ignored(self):
        explorer = GreedyExplorer(max_depth=2)
        cold = self._run(explorer, threshold=1e9)
        worse = self._seed(benign_window(100.0), -50.0, ["worse"])
        seeded = self._run(explorer, threshold=1e9, seed_entries=[worse])
        assert seeded.score == cold.score
        assert seeded.path == cold.path
        assert seeded.queries == cold.queries

    def test_reference_loop_rejects_seed_entries(self):
        from repro.attacks.explorers import Explorer

        transformers, constraint, score_function = self._toy()
        with pytest.raises(ValueError, match="lockstep"):
            Explorer().search_batch(
                originals=[benign_window(100.0)],
                transformers=transformers,
                constraints=[constraint],
                score_function=score_function,
                goal_functions=[lambda w, s: False],
                initial_scores=[100.0],
                seed_entries=[self._seed(benign_window(100.0), 50.0, ["seeded"])],
            )

    def test_seed_entries_must_align(self):
        explorer = GreedyExplorer(max_depth=1)
        transformers, constraint, score_function = self._toy()
        with pytest.raises(ValueError, match="align"):
            explorer.search_batch(
                originals=[benign_window(100.0)],
                transformers=transformers,
                constraints=[constraint],
                score_function=score_function,
                goal_functions=[lambda w, s: False],
                initial_scores=[100.0],
                seed_entries=[],
            )


class TestSeedBeamAttackBatch:
    """attack_batch(seed_beam=True): warm misses hand their endpoint to the
    explorer as a starting-beam seed, with exact query accounting."""

    @staticmethod
    def _attack():
        from repro.attacks.transformers import SuffixOffsetTransformer

        return EvasionAttack(
            MeanTailPredictor(),
            transformers=[SuffixOffsetTransformer(offsets=(30.0,), suffix_lengths=(4,))],
        )

    def test_warm_miss_resumes_from_seed_with_fewer_queries(self):
        window = benign_window(110.0)
        scenarios = [Scenario.POSTPRANDIAL]
        # The replayed two-edge path lands at mean 170 < 180: a warm miss.
        seed_paths = [["offset_last_4_by_30", "offset_last_4_by_30"]]
        plain = self._attack().attack_batch(
            np.stack([window]), scenarios,
            constraint=PassConstraint(), seed_paths=seed_paths,
        )[0]
        seeded = self._attack().attack_batch(
            np.stack([window]), scenarios,
            constraint=PassConstraint(), seed_paths=seed_paths, seed_beam=True,
        )[0]
        assert plain.success and seeded.success
        assert not plain.warm_started and not seeded.warm_started
        # Plain fallback: screen(1) + warm endpoint(1) + 3 greedy depths from
        # the benign window (1 edge each) = 5.  Seeded fallback resumes at
        # the 170-score endpoint: screen(1) + warm(1) + 1 depth = 3.
        assert plain.queries == 5
        assert seeded.queries == 3
        assert seeded.path == seed_paths[0] + ["offset_last_4_by_30"]
        assert seeded.adversarial_prediction == pytest.approx(200.0)

    def test_seed_beam_requires_seed_paths(self):
        with pytest.raises(ValueError, match="seed_beam requires"):
            self._attack().attack_batch(
                np.stack([benign_window(110.0)]),
                [Scenario.POSTPRANDIAL],
                seed_beam=True,
            )

    def test_surviving_seed_still_resolves_warm(self):
        """seed_beam changes nothing for warm *hits*: still 2 queries."""
        window = benign_window(110.0)
        result = self._attack().attack_batch(
            np.stack([window]),
            [Scenario.POSTPRANDIAL],
            constraint=PassConstraint(),
            seed_paths=[["offset_last_4_by_30"] * 3],  # lands at 200 > 180
            seed_beam=True,
        )[0]
        assert result.warm_started and result.success
        assert result.queries == 2

    def test_online_attacker_validates_seed_beam(self):
        from repro.serving import OnlineAttacker

        with pytest.raises(ValueError, match="warm_start"):
            OnlineAttacker({}, warm_start=False, seed_beam=True)

    def test_custom_explorer_without_seed_support_degrades_unseeded(self):
        """An old-signature bring-your-own explorer never sees seed_entries:
        a warm miss falls back to its plain search instead of crashing."""
        from repro.attacks.explorers import ExplorationResult, Explorer
        from repro.attacks.transformers import SuffixOffsetTransformer

        class LegacyExplorer(Explorer):
            def search_batch(  # pre-seed_entries signature
                self, originals, transformers, constraints, score_function,
                goal_functions, initial_scores=None,
            ):
                return [
                    ExplorationResult(
                        False, np.array(original, copy=True),
                        float(initial_scores[index]), [], 0,
                    )
                    for index, original in enumerate(originals)
                ]

        attack = EvasionAttack(
            MeanTailPredictor(),
            transformers=[SuffixOffsetTransformer(offsets=(30.0,), suffix_lengths=(4,))],
            explorer=LegacyExplorer(),
        )
        results = attack.attack_batch(
            np.stack([benign_window(110.0)]),
            [Scenario.POSTPRANDIAL],
            constraint=PassConstraint(),
            seed_paths=[["offset_last_4_by_30", "offset_last_4_by_30"]],  # warm miss
            seed_beam=True,
        )
        assert results[0].eligible and not results[0].success
        # screen + warm endpoint + 0 explorer queries, no TypeError raised
        assert results[0].queries == 2
