"""Sharded serving fabric: bitwise parity, isolation, and order invariance.

Pins the contract of :mod:`repro.serving.shard`:

* sharded == single-process **bitwise** across shard counts {1, 2, 4}, for
  plain serving, the full chaos mix (faults + clocks + churn), an online
  attacker, and quarantine/health chaos,
* worker-death isolation — a dead shard degrades only its own sessions
  while co-scheduled shards stay bitwise-identical to the baseline,
* ``AttackCampaign.run_cohort(n_workers=2)`` record-for-record equality
  with the merged lockstep path, and
* the order-dependence audit: tick mapping order, session open order,
  cohort order, and report aggregation order must not change results.

The bitwise gates use the deterministic kNN detector; MAD-GAN's shared
detector-level RNG is re-derived per shard worker (reproducible for a fixed
layout, not layout-invariant), which is exactly the boundary rule
``repro.serving.shard`` documents.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.attacks import AttackCampaign
from repro.detectors import (
    GaussianHMMDetector,
    KNNDistanceDetector,
    LSTMVAEDetector,
    StreamingDetector,
)
from repro.serving import (
    AttackEpisode,
    CheckpointError,
    DeviceClockConfig,
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    OnlineAttacker,
    SensorFaultConfig,
    SessionChurnConfig,
    ShardedScheduler,
    StreamReplayer,
    StreamScheduler,
)


@pytest.fixture(scope="module")
def knn_detector(tiny_zoo, tiny_cohort):
    train_windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
    return KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])


@pytest.fixture(scope="module")
def window_family(tiny_zoo, tiny_cohort):
    """The deterministic window brains (LSTM-VAE + HMM), fitted once.

    Both are streaming-incremental AND batch-composition independent at the
    verdict level, so — unlike MAD-GAN, whose RNG is re-derived per shard
    worker — they join the bitwise shard-parity gates directly.
    """
    train_windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
    benign = train_windows[::4]
    return {
        "lstm_vae": LSTMVAEDetector(
            epochs=1, hidden_size=8, batch_size=16, seed=0
        ).fit(benign),
        "hmm": GaussianHMMDetector(n_states=3, n_iter=3, seed=0).fit(benign),
    }


def tick_fingerprint(outcome):
    """Everything one SessionTick must reproduce bitwise."""
    return {
        "tick": outcome.tick,
        "sample": outcome.sample.tobytes(),
        "prediction": outcome.prediction,
        "verdicts": {
            name: (verdict.warming, verdict.flagged, verdict.score, verdict.degraded)
            for name, verdict in outcome.verdicts.items()
        },
        "attacked": outcome.attacked,
        "fault": outcome.fault,
        "ingress": outcome.ingress,
        "dropped": outcome.dropped,
    }


def report_fingerprint(report):
    """Everything one replay must reproduce bitwise, keyed by session."""
    return {
        session_id: {
            "ticks": [tick_fingerprint(outcome) for outcome in trace.ticks],
            "delivered_at": list(trace.delivered_at),
            "health": [
                (event.tick, str(event.state), event.reason)
                for event in trace.health_timeline
            ],
        }
        for session_id, trace in sorted(report.sessions.items())
    }


def drive(scheduler, zoo, cohort, detector, n_ticks=30):
    """Open one session per patient, tick the fleet, collect fingerprints."""
    records = list(cohort)
    streams = {record.label: record.features("test")[:n_ticks] for record in records}
    for record in records:
        scheduler.open_session(
            record.label,
            zoo.model_for(record.label),
            detectors={
                "knn": StreamingDetector(detector, unit="sample", include_scores=True)
            },
        )
    outs = {record.label: [] for record in records}
    for tick in range(n_ticks):
        samples = {record.label: streams[record.label][tick] for record in records}
        for session_id, outcome in scheduler.tick(samples).items():
            outs[session_id].append(tick_fingerprint(outcome))
    for record in records:
        scheduler.close_session(record.label)
    return outs


class TestShardAssignment:
    def test_lane_grained_placement(self, tiny_zoo, tiny_cohort):
        """Sessions sharing a lane land on one worker, regardless of id."""
        with ShardedScheduler(n_shards=3) as fabric:
            record = next(iter(tiny_cohort))
            lane = tiny_zoo.model_for(record.label).state_hash()
            shards = {fabric.shard_for(lane, f"session-{index}") for index in range(20)}
            assert len(shards) == 1

    def test_multi_lane_fleet_spreads_across_workers(self, tiny_zoo, tiny_cohort):
        with ShardedScheduler(n_shards=2) as fabric:
            for record in tiny_cohort:
                fabric.open_session(record.label, tiny_zoo.model_for(record.label))
            shards = {fabric.session(record.label).shard for record in tiny_cohort}
            assert len(shards) > 1  # 4 personalized lanes over 2 workers
            assert fabric.n_sessions == len(list(tiny_cohort))
            assert fabric.n_lanes == len(list(tiny_cohort))

    def test_duplicate_session_id_rejected(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        with ShardedScheduler(n_shards=2) as fabric:
            fabric.open_session(record.label, tiny_zoo.model_for(record.label))
            with pytest.raises(ValueError, match="already exists"):
                fabric.open_session(record.label, tiny_zoo.model_for(record.label))

    def test_checkpoint_validation_fails_fast(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        with ShardedScheduler(n_shards=2) as fabric:
            with pytest.raises(CheckpointError):
                fabric.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    expected_state_hash="not-the-hash",
                )


class TestShardedParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_plain_serving_bitwise(self, tiny_zoo, tiny_cohort, knn_detector, n_shards):
        baseline = drive(StreamScheduler(), tiny_zoo, tiny_cohort, knn_detector)
        with ShardedScheduler(n_shards=n_shards) as fabric:
            sharded = drive(fabric, tiny_zoo, tiny_cohort, knn_detector)
        assert sharded == baseline

    def test_tick_merge_is_session_id_sorted(self, tiny_zoo, tiny_cohort, knn_detector):
        records = list(tiny_cohort)
        with ShardedScheduler(n_shards=2) as fabric:
            for record in records:
                fabric.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={"knn": StreamingDetector(knn_detector, unit="sample")},
                )
            samples = {
                record.label: record.features("test")[0] for record in reversed(records)
            }
            results = fabric.tick(samples)
        assert list(results) == sorted(results)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_detector_family_chaos_bitwise(
        self, tiny_zoo, tiny_cohort, window_family, n_shards
    ):
        """LSTM-VAE + HMM streaming verdicts survive the shard boundary
        bitwise under the chaos mix (faults + clocks + churn), at every
        shard count — the new-detector acceptance gate of ISSUE 9."""

        def replay(scheduler):
            return StreamReplayer(
                tiny_zoo,
                detectors={
                    name: (detector, "window")
                    for name, detector in window_family.items()
                },
                scheduler=scheduler,
                clocks=DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19),
                churn=SessionChurnConfig(join_stagger=1, disconnect_every=15),
                faults=SensorFaultConfig(bias_rate=0.05, spike_rate=0.08, seed=11),
            ).replay(tiny_cohort, split="test", max_ticks=30)

        baseline = report_fingerprint(replay(StreamScheduler()))
        scored = sum(
            not tick["verdicts"][name][0]  # warming flag
            for session in baseline.values()
            for tick in session["ticks"]
            for name in tick["verdicts"]
        )
        assert scored > 0, "the replay must produce scored (non-warming) verdicts"
        with ShardedScheduler(n_shards=n_shards) as fabric:
            sharded = report_fingerprint(replay(fabric))
        assert sharded == baseline

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_chaos_replay_bitwise(self, tiny_zoo, tiny_cohort, knn_detector, n_shards):
        """Faults + device clocks + churn compose with the fabric bitwise."""

        def replay(scheduler):
            return StreamReplayer(
                tiny_zoo,
                detectors={"knn": (knn_detector, "sample")},
                scheduler=scheduler,
                clocks=DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19),
                churn=SessionChurnConfig(join_stagger=1, disconnect_every=15),
                faults=SensorFaultConfig(bias_rate=0.05, spike_rate=0.08, seed=11),
            ).replay(tiny_cohort, split="test", max_ticks=30)

        baseline = report_fingerprint(replay(StreamScheduler()))
        with ShardedScheduler(n_shards=n_shards) as fabric:
            sharded = report_fingerprint(replay(fabric))
        assert sharded == baseline

    def test_online_attacker_bitwise(self, tiny_zoo, tiny_cohort, knn_detector):
        """Tamper records and attacked ticks survive the shard boundary."""
        label = next(iter(tiny_cohort)).label

        def replay(n_shards):
            attacker = OnlineAttacker({label: [AttackEpisode(start=15, duration=10)]})
            report = StreamReplayer(
                tiny_zoo,
                detectors={"knn": (knn_detector, "sample")},
                attacker=attacker,
                n_shards=n_shards,
            ).replay(tiny_cohort, split="test", max_ticks=35)
            tampers = [
                (record.session_id, record.tick, record.delivered_cgm, record.queries)
                for record in attacker.records
            ]
            return report_fingerprint(report), tampers

        baseline, baseline_tampers = replay(None)
        assert baseline_tampers, "attacker must tamper for the parity to be meaningful"
        for n_shards in (1, 2):
            sharded, tampers = replay(n_shards)
            assert sharded == baseline
            assert tampers == baseline_tampers

    def test_quarantine_health_chaos_bitwise(self, tiny_zoo, tiny_cohort, knn_detector):
        """Health timelines (incl. quarantines) are identical across shards."""
        health = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=3)
        ingress = IngressConfig(policy=IngressPolicy.REJECT)
        faults = SensorFaultConfig(malformed_rate=0.2, seed=23)

        def replay(scheduler):
            return StreamReplayer(
                tiny_zoo,
                detectors={"knn": (knn_detector, "sample")},
                scheduler=scheduler,
                faults=faults,
            ).replay(tiny_cohort, split="test", max_ticks=40)

        baseline_report = replay(StreamScheduler(health=health, ingress=ingress))
        baseline = report_fingerprint(baseline_report)
        quarantines = sum(
            summary["quarantines"]
            for summary in baseline_report.health_summary().values()
        )
        assert quarantines > 0, "the chaos mix must actually quarantine a session"
        for n_shards in (2, 4):
            with ShardedScheduler(
                n_shards=n_shards, health=health, ingress=ingress
            ) as fabric:
                sharded_report = replay(fabric)
            assert report_fingerprint(sharded_report) == baseline
            assert sharded_report.health_summary() == baseline_report.health_summary()


class TestWorkerDeath:
    def test_dead_shard_degrades_only_its_own_sessions(
        self, tiny_zoo, tiny_cohort, knn_detector
    ):
        records = list(tiny_cohort)
        streams = {record.label: record.features("test")[:20] for record in records}

        baseline = drive(StreamScheduler(), tiny_zoo, tiny_cohort, knn_detector, n_ticks=20)

        fabric = ShardedScheduler(n_shards=2)
        try:
            for record in records:
                fabric.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "knn": StreamingDetector(
                            knn_detector, unit="sample", include_scores=True
                        )
                    },
                )
            by_shard = {}
            for record in records:
                by_shard.setdefault(fabric.session(record.label).shard, []).append(
                    record.label
                )
            assert len(by_shard) == 2
            dead_shard = min(by_shard)
            victims = set(by_shard[dead_shard])
            survivors = {record.label for record in records} - victims

            outs = {record.label: [] for record in records}
            for tick in range(20):
                if tick == 10:
                    # Kill one worker process mid-fleet.
                    fabric._shards[dead_shard].process.terminate()
                    fabric._shards[dead_shard].process.join()
                samples = {
                    record.label: streams[record.label][tick] for record in records
                }
                for session_id, outcome in fabric.tick(samples).items():
                    outs[session_id].append(outcome)
        finally:
            fabric.shutdown()

        for label in survivors:
            # Co-scheduled shards: bitwise-identical to the no-death baseline.
            assert [tick_fingerprint(outcome) for outcome in outs[label]] == baseline[label]
        for label in victims:
            before = [tick_fingerprint(outcome) for outcome in outs[label][:10]]
            assert before == baseline[label][:10]
            for outcome in outs[label][10:]:
                assert outcome.dropped
                assert f"shard {dead_shard} worker died" in outcome.error
                assert outcome.prediction is None
            # The mirror keeps counting ticks so a recovered flow could resume.
            assert [outcome.tick for outcome in outs[label]] == list(range(20))


class TestShardedCampaign:
    def test_run_cohort_n_workers_matches_single(
        self, tiny_zoo, tiny_cohort, tiny_test_campaign
    ):
        campaign = AttackCampaign(tiny_zoo, stride=6)
        sharded = campaign.run_cohort(tiny_cohort, split="test", n_workers=2)
        single = tiny_test_campaign
        assert len(sharded.records) == len(single.records) > 0
        for left, right in zip(single.records, sharded.records):
            assert left.patient_label == right.patient_label
            assert left.window_index == right.window_index
            assert left.target_index == right.target_index
            assert left.result.eligible == right.result.eligible
            assert left.result.success == right.result.success
            assert left.result.path == right.result.path
            assert left.result.queries == right.result.queries
            np.testing.assert_array_equal(
                left.result.adversarial_window, right.result.adversarial_window
            )

    def test_n_workers_requires_cohort_batched(self, tiny_zoo, tiny_cohort):
        campaign = AttackCampaign(tiny_zoo, stride=6, cohort_batched=False)
        with pytest.raises(ValueError, match="cohort_batched"):
            campaign.run_cohort(tiny_cohort, n_workers=2)

    def test_n_workers_validated(self, tiny_zoo, tiny_cohort):
        campaign = AttackCampaign(tiny_zoo, stride=6)
        with pytest.raises(ValueError, match="n_workers"):
            campaign.run_cohort(tiny_cohort, n_workers=0)


class TestOrderInvariance:
    """The order-dependence audit: permutations must not change results."""

    def test_tick_mapping_order_invariant(self, tiny_zoo, tiny_cohort, knn_detector):
        records = list(tiny_cohort)
        streams = {record.label: record.features("test")[:25] for record in records}

        def run(tick_order):
            scheduler = StreamScheduler()
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "knn": StreamingDetector(
                            knn_detector, unit="sample", include_scores=True
                        )
                    },
                )
            outs = {record.label: [] for record in records}
            for tick in range(25):
                samples = {
                    record.label: streams[record.label][tick] for record in tick_order
                }
                for session_id, outcome in scheduler.tick(samples).items():
                    outs[session_id].append(tick_fingerprint(outcome))
            return outs

        assert run(records) == run(records[::-1])

    def test_session_open_order_invariant(self, tiny_zoo, tiny_cohort, knn_detector):
        """Slot assignment must not leak into outputs (row-permutation proof)."""

        def run(open_order):
            scheduler = StreamScheduler()
            records = list(tiny_cohort)
            streams = {
                record.label: record.features("test")[:25] for record in records
            }
            for record in open_order:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "knn": StreamingDetector(
                            knn_detector, unit="sample", include_scores=True
                        )
                    },
                )
            outs = {record.label: [] for record in records}
            for tick in range(25):
                samples = {
                    record.label: streams[record.label][tick] for record in records
                }
                for session_id, outcome in scheduler.tick(samples).items():
                    outs[session_id].append(tick_fingerprint(outcome))
            return outs

        records = list(tiny_cohort)
        assert run(records) == run(records[::-1])

    def test_run_cohort_patient_order_invariant(self, tiny_zoo, tiny_cohort):
        """Per-patient campaign records don't depend on cohort order (greedy)."""
        campaign = AttackCampaign(tiny_zoo, stride=20)
        records = list(tiny_cohort)

        def by_patient(result):
            out = {}
            for record in result.records:
                out.setdefault(record.patient_label, []).append(
                    (
                        record.window_index,
                        record.target_index,
                        record.result.eligible,
                        record.result.success,
                        tuple(record.result.path),
                        record.result.queries,
                        record.result.adversarial_window.tobytes(),
                    )
                )
            return out

        forward = campaign.run_cohort(records, split="test")
        reversed_ = campaign.run_cohort(records[::-1], split="test")
        assert by_patient(forward) == by_patient(reversed_)

    def test_report_aggregation_order_invariant(
        self, tiny_zoo, tiny_cohort, knn_detector
    ):
        """Confusion/rollup/health summaries survive session-dict permutation."""
        from repro.serving import ReplayReport

        label = next(iter(tiny_cohort)).label
        attacker = OnlineAttacker({label: [AttackEpisode(start=15, duration=10)]})
        report = StreamReplayer(
            tiny_zoo,
            detectors={"knn": (knn_detector, "sample")},
            attacker=attacker,
        ).replay(tiny_cohort, split="test", max_ticks=35)

        permuted = ReplayReport(
            sessions=dict(reversed(list(report.sessions.items()))),
            episodes=list(reversed(report.episodes)),
            detector_names=report.detector_names,
        )
        original = report.rollup("knn")
        shuffled = permuted.rollup("knn")
        for key in original:
            if np.isnan(original[key]):
                assert np.isnan(shuffled[key])
            else:
                assert original[key] == shuffled[key]
        assert report.confusion("knn") == permuted.confusion("knn")
        assert report.health_summary() == permuted.health_summary()
        assert report.trace_breakdown("knn") == permuted.trace_breakdown("knn")


class TestShardSmokeGate:
    """Wire scripts/check_parity.py's shard smoke into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_shard", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shard_smoke_passes(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_shard_smoke(tiny_zoo, tiny_cohort, n_ticks=40)
        assert report["shard_counts"] == (1, 2, 4)
        assert report["campaign_records"] > 0
