"""Fault-injection and graceful-degradation layer: pins and property tests.

Covers the robustness contract end to end:

* fault plans are seeded, deterministic, and **commute** with device clocks
  and session churn (the faulted value at position ``p`` never depends on
  delivery order),
* the zero fault config is bitwise-inert — a replay with
  ``SensorFaultConfig()`` is identical to one with no injector at all,
* ingress validation policies (reject / clamp / hold-last),
* the :class:`SessionHealth` state machine (degrade → quarantine → backoff
  re-admission → probation → terminal failure),
* per-lane error isolation: a poisoned session is quarantined while
  co-scheduled sessions' outputs stay bitwise-identical,
* checkpoint validation, scheduler error naming, the inversion-divergence
  watchdog, vote renormalization in the degraded ensemble, and the chaos
  harness gates (tier-1 wiring of ``scripts/chaos_replay.py``).
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.data.cohort import CGM_COLUMN
from repro.detectors import KNNDistanceDetector, StreamingDetector
from repro.detectors.base import AnomalyDetector
from repro.detectors.ensemble import VotingEnsembleDetector
from repro.serving import (
    CheckpointError,
    DeviceClockConfig,
    DeviceFaultPlan,
    FaultInjector,
    FaultKind,
    HealthConfig,
    HealthState,
    IngressConfig,
    IngressPolicy,
    SchedulerTickError,
    SensorFaultConfig,
    SessionChurnConfig,
    SessionHealth,
    StreamReplayer,
    StreamScheduler,
    validate_checkpoint,
)
from repro.serving.faults import SENSOR_FLOOR

#: A lively mix used by the property tests — every kind fires on a 40+ tick
#: trace with near certainty.
ACTIVE_FAULTS = SensorFaultConfig(
    bias_rate=0.05,
    stuck_rate=0.05,
    spike_rate=0.08,
    drift_rate=0.03,
    dropout_rate=0.03,
    malformed_rate=0.03,
    seed=11,
)


@pytest.fixture(scope="module")
def serve_zoo(tiny_cohort):
    """Aggregate-only zoo — one serving lane shared by every patient."""
    from repro.glucose import GlucoseModelZoo

    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8),
        train_personalized=False,
        seed=5,
    )
    zoo.fit(tiny_cohort)
    return zoo


@pytest.fixture(scope="module")
def knn_detector(serve_zoo, tiny_cohort):
    windows, _, _ = serve_zoo.dataset.from_cohort(tiny_cohort, split="train")
    return KNNDistanceDetector(n_neighbors=5).fit(windows[::4, -1:, :])


def _fingerprint(report):
    """Bitwise-comparable view of a replay report."""
    out = {}
    for session_id, trace in sorted(report.sessions.items()):
        out[session_id] = (
            np.stack([outcome.sample for outcome in trace.ticks]),
            trace.predictions(),
            tuple(
                tuple(sorted(outcome.verdicts)) for outcome in trace.ticks
            ),
            tuple(
                bool(verdict.flagged)
                for outcome in trace.ticks
                for name, verdict in sorted(outcome.verdicts.items())
                if not verdict.warming
            ),
        )
    return out


def _assert_fingerprints_equal(left, right):
    assert left.keys() == right.keys()
    for session_id in left:
        samples_l, preds_l, names_l, flags_l = left[session_id]
        samples_r, preds_r, names_r, flags_r = right[session_id]
        np.testing.assert_array_equal(samples_l, samples_r)
        np.testing.assert_array_equal(preds_l, preds_r)
        assert names_l == names_r
        assert flags_l == flags_r


# ------------------------------------------------------------------ fault plans
class TestFaultPlans:
    def test_zero_config_plan_is_empty_and_identity(self):
        injector = FaultInjector(SensorFaultConfig())
        assert not injector.enabled
        plan = injector.plan_for("dev", 64)
        assert plan.n_events == 0
        sample = np.array([120.0, 1.0, 2.0])
        out, kinds, _ = plan.apply(3, sample, None)
        assert out is sample  # identity — the bitwise-inertness contract
        assert kinds == ()

    def test_plans_are_deterministic_per_label(self):
        injector = FaultInjector(ACTIVE_FAULTS)
        first = injector.plan_for("dev-a", 80)
        second = injector.plan_for("dev-a", 80)
        assert first.events == second.events
        np.testing.assert_array_equal(first.offsets, second.offsets)
        np.testing.assert_array_equal(first.stuck, second.stuck)
        np.testing.assert_array_equal(first.delays, second.delays)
        np.testing.assert_array_equal(first.malformed_mask, second.malformed_mask)

    def test_plans_differ_across_labels(self):
        injector = FaultInjector(ACTIVE_FAULTS)
        a = injector.plan_for("dev-a", 200)
        b = injector.plan_for("dev-b", 200)
        assert a.events != b.events

    def test_every_kind_fires_on_a_long_trace(self):
        plan = FaultInjector(ACTIVE_FAULTS).plan_for("dev", 400)
        kinds = {event.kind for event in plan.events}
        assert kinds == set(FaultKind)

    def test_faulted_cgm_stays_physiological(self):
        plan = FaultInjector(ACTIVE_FAULTS).plan_for("dev", 200)
        held = None
        for position in range(200):
            sample = np.array([140.0, 0.5, 1.5])
            out, kinds, held = plan.apply(position, sample, held)
            cgm = out[CGM_COLUMN]
            if plan.malformed_mask[position]:
                continue  # the one kind allowed to leave the valid band
            assert SENSOR_FLOOR <= cgm <= 499.0

    def test_stuck_at_holds_last_transmitted_cgm(self):
        from repro.serving.faults import FaultEvent

        plan = DeviceFaultPlan(label="dev", n_ticks=4)
        plan.stuck[1:3] = True
        plan.events.append(FaultEvent(FaultKind.STUCK, 1, 2))
        sample = np.array([200.0, 0.0, 0.0])
        out, kinds, held = plan.apply(1, sample, 111.0)
        assert out[CGM_COLUMN] == 111.0
        assert FaultKind.STUCK in kinds
        assert held == 111.0  # the transmitted (held) value carries forward

    def test_malformed_overrides_and_preserves_held(self):
        plan = DeviceFaultPlan(label="dev", n_ticks=2)
        plan.malformed_mask[0] = True
        plan.malformed_values[0] = np.nan
        from repro.serving.faults import FaultEvent

        plan.events.append(FaultEvent(FaultKind.MALFORMED, 0, 1))
        out, kinds, held = plan.apply(0, np.array([150.0, 0.0, 0.0]), 99.0)
        assert np.isnan(out[CGM_COLUMN])
        assert kinds == (FaultKind.MALFORMED,)
        assert held == 99.0  # a non-finite transmission never becomes the hold value

    def test_dropout_delay_accounting(self):
        config = SensorFaultConfig(dropout_rate=0.2, dropout_duration=(2, 2), seed=4)
        plan = FaultInjector(config).plan_for("dev", 100)
        assert plan.total_delay() == int(plan.delays.sum()) > 0
        for event in plan.events:
            assert event.kind is FaultKind.DROPOUT
            assert plan.delay_at(event.start) >= 2
        assert plan.delay_at(10_000) == 0  # past-the-end queries are safe


# ------------------------------------------------------------- replay identity
class TestReplayFaultComposition:
    def test_zero_config_replay_is_bitwise_identical(self, serve_zoo, tiny_cohort, knn_detector):
        kwargs = dict(detectors={"knn": (knn_detector, "sample")})
        plain = StreamReplayer(serve_zoo, **kwargs).replay(
            tiny_cohort, split="test", max_ticks=30
        )
        zeroed = StreamReplayer(serve_zoo, faults=SensorFaultConfig(), **kwargs).replay(
            tiny_cohort, split="test", max_ticks=30
        )
        _assert_fingerprints_equal(_fingerprint(plain), _fingerprint(zeroed))
        for trace in zeroed.sessions.values():
            assert trace.faulted_ticks == []

    def test_faulted_replay_is_deterministic(self, serve_zoo, tiny_cohort):
        reports = [
            StreamReplayer(serve_zoo, faults=ACTIVE_FAULTS).replay(
                tiny_cohort, split="test", max_ticks=40
            )
            for _ in range(2)
        ]
        _assert_fingerprints_equal(_fingerprint(reports[0]), _fingerprint(reports[1]))
        faulted = sum(
            len(trace.faulted_ticks) for trace in reports[0].sessions.values()
        )
        assert faulted > 0

    def test_fault_injection_commutes_with_clocks_and_churn(self, serve_zoo, tiny_cohort):
        """The faulted value at position p never depends on delivery order."""
        lockstep = StreamReplayer(serve_zoo, faults=ACTIVE_FAULTS).replay(
            tiny_cohort, split="test", max_ticks=40
        )
        perturbed = StreamReplayer(
            serve_zoo,
            faults=ACTIVE_FAULTS,
            clocks=DeviceClockConfig(drift=0.2, jitter=0.3, dropout=0.1, seed=3),
            churn=SessionChurnConfig(join_stagger=1, disconnect_every=12, reconnect_after=2),
        ).replay(tiny_cohort, split="test", max_ticks=40)
        for record in tiny_cohort:
            reference = lockstep.sessions[record.label].delivered_cgm()
            segments = perturbed.segments_for(record.label)
            assert len(segments) > 1  # churn actually split the trace
            rejoined = np.concatenate(
                [trace.delivered_cgm() for trace in segments]
            )
            np.testing.assert_array_equal(reference, rejoined)

    def test_fault_ticks_are_never_counted_as_attacks(self, serve_zoo, tiny_cohort):
        report = StreamReplayer(serve_zoo, faults=ACTIVE_FAULTS).replay(
            tiny_cohort, split="test", max_ticks=40
        )
        for trace in report.sessions.values():
            assert trace.attacked_ticks == []


# ------------------------------------------------------------------ ingress
class TestIngressValidation:
    def test_valid_sample_passes_by_identity(self):
        config = IngressConfig()
        sample = np.array([120.0, 1.0, 0.0])
        delivered, tag = config.validate(sample, None)
        assert delivered is sample and tag is None

    def test_reject_policy_drops_bad_samples(self):
        config = IngressConfig(policy=IngressPolicy.REJECT)
        for bad in ([np.nan, 0.0, 0.0], [1200.0, 0.0, 0.0], [-5.0, 0.0, 0.0]):
            delivered, tag = config.validate(np.array(bad), np.array([100.0, 0.0, 0.0]))
            assert delivered is None and tag == "rejected"

    def test_clamp_repairs_finite_out_of_range(self):
        config = IngressConfig(policy=IngressPolicy.CLAMP)
        delivered, tag = config.validate(np.array([1200.0, 2.0, 3.0]), None)
        assert tag == "clamped"
        assert delivered[CGM_COLUMN] == config.glucose_range[1]
        assert delivered[1] == 2.0 and delivered[2] == 3.0

    def test_clamp_falls_back_to_hold_for_non_finite(self):
        config = IngressConfig(policy=IngressPolicy.CLAMP)
        last = np.array([108.0, 1.0, 0.0])
        delivered, tag = config.validate(np.array([np.nan, 0.0, 0.0]), last)
        assert tag == "held"
        np.testing.assert_array_equal(delivered, last)
        assert delivered is not last  # a defensive copy, not the caller's array

    def test_hold_last_without_history_rejects(self):
        config = IngressConfig(policy=IngressPolicy.HOLD_LAST)
        delivered, tag = config.validate(np.array([np.nan, 0.0, 0.0]), None)
        assert delivered is None and tag == "rejected"


# ------------------------------------------------------------- health machine
class TestSessionHealthMachine:
    def test_degrade_then_quarantine_then_recover(self):
        config = HealthConfig(
            degrade_after=1, quarantine_after=3, recover_after=2, backoff_ticks=2
        )
        health = SessionHealth(config)
        assert health.record_error(0, "boom") is HealthState.DEGRADED
        assert health.record_error(1, "boom") is HealthState.DEGRADED
        assert health.record_error(2, "boom") is HealthState.QUARANTINED
        assert health.blocked
        # Backoff counts attempted deliveries down; the re-admitting delivery
        # is served on probation.
        assert not health.admit(3)
        assert health.admit(4)
        assert health.state is HealthState.RECOVERED
        health.record_clean(4)
        assert health.record_clean(5) is HealthState.HEALTHY

    def test_probation_strike_requarantines_with_longer_backoff(self):
        config = HealthConfig(quarantine_after=1, backoff_ticks=2, backoff_factor=2.0)
        health = SessionHealth(config)
        health.record_error(0, "first")
        first_backoff = health.backoff_remaining
        while not health.admit(1):
            pass
        assert health.state is HealthState.RECOVERED
        health.record_error(2, "probation strike")
        assert health.state is HealthState.QUARANTINED
        assert health.backoff_remaining > first_backoff
        assert any(
            event.reason.startswith("probation failed") for event in health.timeline
        )

    def test_readmission_budget_exhaustion_fails_terminally(self):
        config = HealthConfig(quarantine_after=1, backoff_ticks=1, max_readmissions=1)
        health = SessionHealth(config)
        health.record_error(0, "boom")  # quarantine #1
        assert health.admit(1)  # re-admission #1 (the budget)
        health.record_error(2, "boom")  # strike -> no re-admissions left
        assert health.state is HealthState.FAILED
        assert not health.admit(3)
        assert health.record_error(4, "boom") is HealthState.FAILED

    def test_quarantine_now_escalates_immediately(self):
        health = SessionHealth(HealthConfig(quarantine_after=3))
        assert health.quarantine_now(0, "lane exploded") is HealthState.QUARANTINED
        assert health.total_errors == 1

    def test_clean_ticks_reset_the_error_streak(self):
        config = HealthConfig(degrade_after=2, quarantine_after=3)
        health = SessionHealth(config)
        health.record_error(0, "boom")
        health.record_clean(1)
        health.record_error(2, "boom")
        assert health.state is HealthState.HEALTHY  # never two in a row

    def test_config_validation(self):
        with pytest.raises(ValueError, match="degrade_after"):
            HealthConfig(degrade_after=3, quarantine_after=2)
        with pytest.raises(ValueError, match="backoff_factor"):
            HealthConfig(backoff_factor=0.5)


# ------------------------------------------------------------ checkpoint gates
class TestCheckpointValidation:
    def test_clean_predictor_passes_and_returns_hash(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for(next(iter(tiny_cohort)).label)
        assert validate_checkpoint(predictor) == predictor.state_hash()

    def test_hash_mismatch_is_rejected(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for(next(iter(tiny_cohort)).label)
        with pytest.raises(CheckpointError, match="state_hash mismatch"):
            validate_checkpoint(predictor, expected_hash="not-the-hash")

    def test_non_finite_weights_are_rejected(self, tiny_zoo, tiny_cohort):
        import copy

        predictor = copy.deepcopy(tiny_zoo.model_for(next(iter(tiny_cohort)).label))
        name, parameter = next(iter(predictor.model.named_parameters().items()))
        np.asarray(parameter.data)[...] = np.nan
        with pytest.raises(CheckpointError, match="non-finite"):
            validate_checkpoint(predictor)

    def test_scheduler_refuses_pinned_mismatch(self, tiny_zoo, tiny_cohort):
        label = next(iter(tiny_cohort)).label
        scheduler = StreamScheduler()
        with pytest.raises(CheckpointError):
            scheduler.open_session(
                label, tiny_zoo.model_for(label), expected_state_hash="bogus"
            )
        assert scheduler.n_sessions == 0


# ------------------------------------------------------------- error reporting
class TestSchedulerErrorNaming:
    def test_tick_error_names_sessions_and_ticks(self, tiny_zoo, tiny_cohort, monkeypatch):
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        scheduler = StreamScheduler()
        session = scheduler.open_session(record.label, predictor)
        features = record.features("test")
        scheduler.tick({session.session_id: features[0]})

        def explode(*args, **kwargs):
            raise FloatingPointError("lane blew up")

        monkeypatch.setattr(predictor, "step_one", explode)
        monkeypatch.setattr(predictor, "step_stream", explode)
        with pytest.raises(SchedulerTickError) as excinfo:
            scheduler.tick({session.session_id: features[1]})
        error = excinfo.value
        assert error.stage == "lane step"
        assert error.session_ids == [session.session_id]
        assert error.ticks == [1]
        assert f"{session.session_id!r}@tick 1" in str(error)
        assert "FloatingPointError: lane blew up" in str(error)
        scheduler.close_session(session.session_id)

    def test_detector_error_names_the_detector(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))

        class _Exploding(AnomalyDetector):
            name = "exploding"

            def fit(self, windows, labels=None):
                return self

            def scores(self, windows):
                raise RuntimeError("detector blew up")

            def predict(self, windows):
                raise RuntimeError("detector blew up")

        scheduler = StreamScheduler()
        session = scheduler.open_session(
            record.label,
            tiny_zoo.model_for(record.label),
            detectors={"boom": StreamingDetector(_Exploding(), unit="sample")},
        )
        with pytest.raises(SchedulerTickError) as excinfo:
            scheduler.tick({session.session_id: record.features("test")[0]})
        assert excinfo.value.stage == "detector query"
        assert session.session_id in str(excinfo.value)
        scheduler.close_session(session.session_id)


# ---------------------------------------------------------- isolation parity
class TestQuarantineIsolation:
    HEALTH = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4)

    def _run(self, predictor, traces, n_ticks, health, ingress):
        """Tick a dict of {sid: trace or None}; None delivers NaN garbage."""
        scheduler = StreamScheduler(health=health, ingress=ingress)
        n_features = predictor.n_features
        sessions = {
            sid: scheduler.open_session(sid, predictor, session_id=sid)
            for sid in traces
        }
        outcomes = {sid: [] for sid in traces}
        for tick in range(n_ticks):
            delivery = {}
            for sid, trace in traces.items():
                delivery[sid] = (
                    np.full(n_features, np.nan) if trace is None else trace[tick]
                )
            for sid, outcome in scheduler.tick(delivery).items():
                outcomes[sid].append(outcome)
        states = {sid: sessions[sid].health for sid in traces}
        for sid in traces:
            scheduler.close_session(sid)
        return outcomes, states

    def test_poisoned_session_is_quarantined_and_neighbors_unaffected(
        self, tiny_zoo, tiny_cohort
    ):
        records = list(tiny_cohort)
        predictor = tiny_zoo.model_for(records[0].label)
        clean_trace = records[0].features("test")
        ingress = IngressConfig(policy=IngressPolicy.REJECT)

        together, states = self._run(
            predictor,
            {"clean": clean_trace, "poisoned": None},
            20,
            self.HEALTH,
            ingress,
        )
        alone, _ = self._run(predictor, {"clean": clean_trace}, 20, self.HEALTH, ingress)

        # The poisoned stream was quarantined (and under sustained garbage,
        # every probation strikes out).
        assert states["poisoned"].state in (HealthState.QUARANTINED, HealthState.FAILED)
        assert states["poisoned"].quarantines >= 1
        assert all(outcome.dropped for outcome in together["poisoned"])
        # The clean stream's outputs are bitwise what it produces alone.
        assert len(together["clean"]) == len(alone["clean"]) == 20
        for with_noise, reference in zip(together["clean"], alone["clean"]):
            assert with_noise.prediction == reference.prediction
            np.testing.assert_array_equal(with_noise.sample, reference.sample)
            assert not with_noise.dropped and with_noise.error is None
        assert states["clean"].state is HealthState.HEALTHY

    def test_nan_poisoned_state_is_detected_and_recovers(self, tiny_zoo, tiny_cohort):
        """Without ingress a NaN poisons the recurrent state; health catches it."""
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        trace = record.features("test")
        health = HealthConfig(
            degrade_after=1, quarantine_after=2, recover_after=2, backoff_ticks=2
        )
        scheduler = StreamScheduler(health=health, ingress=None)
        session = scheduler.open_session(record.label, predictor)
        history = predictor.history
        outcomes = []
        for tick in range(history + 30):
            sample = trace[tick].copy()
            if tick == history + 2:
                sample[CGM_COLUMN] = np.nan  # one poisoned reading
            outcomes.append(scheduler.tick({session.session_id: sample})[session.session_id])
        assert any(outcome.error == "non-finite prediction" for outcome in outcomes)
        assert session.health.quarantines >= 1
        # Quarantine reset the stream state; after re-admission and re-warming
        # the session serves finite predictions again.
        assert outcomes[-1].prediction is not None
        assert np.isfinite(outcomes[-1].prediction)
        assert session.health.state in (HealthState.HEALTHY, HealthState.RECOVERED)
        scheduler.close_session(session.session_id)

    def test_detector_failure_degrades_verdict_not_the_tick(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))

        class _FlakyDetector(AnomalyDetector):
            name = "flaky"
            calls = 0

            def fit(self, windows, labels=None):
                return self

            def scores(self, windows):
                return np.zeros(len(windows))

            def predict(self, windows):
                type(self).calls += 1
                if type(self).calls == 2:
                    raise RuntimeError("transient detector failure")
                return np.zeros(len(windows), dtype=int)

        scheduler = StreamScheduler(health=HealthConfig(quarantine_after=5))
        session = scheduler.open_session(
            record.label,
            tiny_zoo.model_for(record.label),
            detectors={"flaky": StreamingDetector(_FlakyDetector(), unit="sample")},
        )
        trace = record.features("test")
        first = scheduler.tick({session.session_id: trace[0]})[session.session_id]
        assert first.verdicts["flaky"].flagged is not None
        second = scheduler.tick({session.session_id: trace[1]})[session.session_id]
        # The failed query degrades the verdict but the model tick survived.
        assert second.verdicts["flaky"].flagged is None
        assert second.verdicts["flaky"].degraded
        assert not second.dropped
        assert "detector 'flaky'" in second.error
        third = scheduler.tick({session.session_id: trace[2]})[session.session_id]
        assert third.verdicts["flaky"].flagged is not None
        scheduler.close_session(session.session_id)


# ------------------------------------------------------------------ watchdog
class _StubState:
    def __init__(self):
        self.consecutive_fallbacks = 0

    def reset(self):
        self.consecutive_fallbacks = 0


class _StubIncrementalDetector(AnomalyDetector):
    name = "stub-incremental"
    use_fast_path = True

    def fit(self, windows, labels=None):
        return self

    def scores(self, windows):
        return np.zeros(len(windows))

    def predict(self, windows):
        return np.zeros(len(windows), dtype=int)

    def make_inversion_state(self):
        return _StubState()

    def scores_incremental(self, windows, states):
        return np.zeros(len(windows))

    def predict_incremental(self, windows, states, include_scores=False):
        flags = np.zeros(len(windows), dtype=int)
        return (flags, np.zeros(len(windows))) if include_scores else flags


class TestDivergenceWatchdog:
    def test_watchdog_threshold(self):
        adapter = StreamingDetector(
            _StubIncrementalDetector(), unit="window", history=3, divergence_watchdog=2
        )
        assert adapter.incremental
        assert not adapter.watchdog_tripped()
        adapter.inversion_state.consecutive_fallbacks = 1
        assert not adapter.watchdog_tripped()
        adapter.inversion_state.consecutive_fallbacks = 2
        assert adapter.watchdog_tripped()
        adapter.reset()
        assert not adapter.watchdog_tripped()

    def test_watchdog_disabled_or_stateless_is_never_tripped(self):
        stateless = StreamingDetector(
            _StubIncrementalDetector(), unit="window", history=3, incremental=False,
            divergence_watchdog=1,
        )
        assert not stateless.watchdog_tripped()
        no_watchdog = StreamingDetector(
            _StubIncrementalDetector(), unit="window", history=3
        )
        no_watchdog.inversion_state.consecutive_fallbacks = 99
        assert not no_watchdog.watchdog_tripped()

    def test_watchdog_validation(self):
        with pytest.raises(ValueError, match="divergence_watchdog"):
            StreamingDetector(
                _StubIncrementalDetector(), unit="window", divergence_watchdog=0
            )

    def test_degraded_verdict_surfaces_through_update(self):
        adapter = StreamingDetector(
            _StubIncrementalDetector(), unit="window", history=2, divergence_watchdog=1
        )
        sample = np.array([100.0, 0.0, 0.0])
        assert adapter.update(sample).warming
        adapter.inversion_state.consecutive_fallbacks = 1
        verdict = adapter.update(sample)
        assert not verdict.warming
        assert verdict.degraded

    def test_madgan_tracks_consecutive_fallbacks(self):
        from repro.detectors.madgan import InversionState

        state = InversionState()
        assert state.consecutive_fallbacks == 0
        state.consecutive_fallbacks = 3
        # reset() must clear the watchdog counter with the rest of the carry.
        state.reset()
        assert state.consecutive_fallbacks == 0


# ------------------------------------------------------------------- ensemble
class _FixedVoteDetector(AnomalyDetector):
    def __init__(self, name, vote):
        self.name = name
        self.vote = int(vote)

    def fit(self, windows, labels=None):
        return self

    def scores(self, windows):
        return np.full(len(windows), float(self.vote))

    def predict(self, windows):
        return np.full(len(windows), self.vote, dtype=int)


class TestEnsembleDegradation:
    def _ensemble(self, votes=(1, 1, 0), min_votes=2):
        members = [
            _FixedVoteDetector(f"member-{index}", vote)
            for index, vote in enumerate(votes)
        ]
        return VotingEnsembleDetector(members, min_votes=min_votes)

    def test_effective_min_votes_preserves_fraction(self):
        ensemble = self._ensemble()
        assert ensemble.effective_min_votes(3) == 2  # 2-of-3 intact
        assert ensemble.effective_min_votes(2) == 2  # ceil(2/3 * 2)
        assert ensemble.effective_min_votes(1) == 1  # never impossible
        with pytest.raises(ValueError):
            ensemble.effective_min_votes(4)

    def test_exclude_by_index_name_and_object(self):
        ensemble = self._ensemble()
        by_index = ensemble.active_detectors(exclude=[0])
        by_name = ensemble.active_detectors(exclude=["member-0"])
        by_object = ensemble.active_detectors(exclude=[ensemble.detectors[0]])
        assert by_index == by_name == by_object == ensemble.detectors[1:]
        with pytest.raises(ValueError, match="every ensemble member"):
            ensemble.active_detectors(exclude=[0, 1, 2])

    def test_vote_renormalization_around_dropped_member(self):
        windows = np.zeros((4, 2, 3))
        # Votes (1, 1, 0) with 2-of-3: flagged.
        assert self._ensemble().predict(windows).tolist() == [1] * 4
        # Drop a YES voter: one survivor vote of the required 2-of-2 -> clear.
        assert self._ensemble().predict(windows, exclude=["member-0"]).tolist() == [0] * 4
        # Drop the NO voter: 2-of-2 yes votes -> still flagged.
        assert self._ensemble().predict(windows, exclude=["member-2"]).tolist() == [1] * 4
        # Two members down: 1-of-1 renormalized threshold, survivor decides.
        assert self._ensemble().predict(windows, exclude=[1, 2]).tolist() == [1] * 4

    def test_unexcluded_path_is_unchanged(self):
        windows = np.zeros((3, 2, 3))
        ensemble = self._ensemble(votes=(1, 0, 0))
        np.testing.assert_array_equal(ensemble.predict(windows), np.zeros(3, dtype=int))
        np.testing.assert_array_equal(
            ensemble.scores(windows), np.full(3, 1.0 / 3.0)
        )


# ------------------------------------------------------------ tier-1 chaos wire
class TestChaosSmoke:
    """Wire scripts/chaos_replay.py's gates into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_chaos", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_chaos_gates_hold(self, check_parity, serve_zoo, tiny_cohort):
        gates = check_parity.run_chaos_smoke(serve_zoo, tiny_cohort, n_ticks=40)
        assert gates["no_unhandled_exceptions"]["passed"]
        assert gates["zero_config_bitwise_identical"]["passed"]
        fp = gates["fp_inflation_bounded"]
        assert fp["passed"] and fp["inflation"] <= fp["bound"]
        detection = gates["detection_preserved_under_faults"]
        assert detection["passed"]
        assert (
            detection["faulted_detection_rate"]
            >= detection["fault_free_detection_rate"] - detection["tolerance"]
        )
