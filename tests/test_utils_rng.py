"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomState, as_random_state, hash_string, spawn_rngs


class TestRandomState:
    def test_same_seed_gives_same_stream(self):
        first = RandomState(42).normal(size=10)
        second = RandomState(42).normal(size=10)
        np.testing.assert_allclose(first, second)

    def test_different_seeds_give_different_streams(self):
        first = RandomState(1).normal(size=10)
        second = RandomState(2).normal(size=10)
        assert not np.allclose(first, second)

    def test_seed_property(self):
        assert RandomState(7).seed == 7

    def test_wrapping_existing_state_shares_generator(self):
        base = RandomState(3)
        wrapped = RandomState(base)
        assert wrapped.generator is base.generator

    def test_wrapping_numpy_generator(self):
        generator = np.random.default_rng(5)
        state = RandomState(generator)
        assert state.generator is generator
        assert state.seed is None

    def test_uniform_bounds(self):
        values = RandomState(0).uniform(2.0, 3.0, size=100)
        assert np.all(values >= 2.0)
        assert np.all(values <= 3.0)

    def test_integers_range(self):
        values = RandomState(0).integers(0, 5, size=200)
        assert set(np.unique(values)) <= {0, 1, 2, 3, 4}

    def test_choice_without_replacement_unique(self):
        values = RandomState(0).choice(np.arange(10), size=10, replace=False)
        assert len(set(values.tolist())) == 10

    def test_permutation_preserves_elements(self):
        values = RandomState(0).permutation(np.arange(6))
        assert sorted(values.tolist()) == list(range(6))

    def test_spawn_children_are_independent(self):
        children = RandomState(9).spawn(2)
        first = children[0].normal(size=5)
        second = children[1].normal(size=5)
        assert not np.allclose(first, second)

    def test_derive_is_deterministic_per_tag(self):
        first = RandomState(11).derive("model").normal(size=4)
        second = RandomState(11).derive("model").normal(size=4)
        np.testing.assert_allclose(first, second)

    def test_derive_differs_across_tags(self):
        root = RandomState(11)
        first = root.derive("model").normal(size=4)
        second = root.derive("attack").normal(size=4)
        assert not np.allclose(first, second)

    def test_derive_without_seed_falls_back_to_spawn(self):
        root = RandomState(np.random.default_rng(0))
        child = root.derive("anything")
        assert isinstance(child, RandomState)


class TestPickleBoundary:
    """The RNG aliasing bug at process boundaries, and its fix.

    ``RandomState(existing)`` shares one generator in-process by design:
    two configs built from one state interleave draws from a single stream.
    Pickling silently breaks that contract — each separately pickled copy
    rehydrates a private generator frozen at the shared stream's state, so
    the copies *re-draw the same values* instead of interleaving.  Any
    state crossing into a shard worker must therefore stop sharing
    explicitly via :meth:`RandomState.fork` or :meth:`RandomState.derive`
    with a stable per-worker tag (``repro.serving.shard`` applies the rule
    at detector registration).
    """

    def test_shared_state_interleaves_in_process(self):
        base = RandomState(5)
        alias = RandomState(base)
        first = float(base.random())
        second = float(alias.random())
        assert first != second  # one stream, interleaved draws

    def test_separate_pickles_diverge_from_shared_stream(self):
        import pickle

        base = RandomState(5)
        alias = RandomState(base)
        # Ship the two configs to workers *separately* — the aliasing bug.
        base_copy = pickle.loads(pickle.dumps(base))
        alias_copy = pickle.loads(pickle.dumps(alias))
        assert base_copy.generator is not alias_copy.generator
        first = float(base_copy.random())
        second = float(alias_copy.random())
        # The copies silently re-draw the SAME value instead of interleaving:
        assert first == second
        # ... which diverges from the in-process interleaved replay.
        in_process = [float(base.random()), float(alias.random())]
        assert in_process[1] != second

    def test_joint_pickle_preserves_sharing(self):
        import pickle

        base = RandomState(5)
        alias = RandomState(base)
        base_copy, alias_copy = pickle.loads(pickle.dumps((base, alias)))
        assert base_copy.generator is alias_copy.generator  # pickle memo
        assert float(base_copy.random()) != float(alias_copy.random())

    def test_fork_stops_sharing(self):
        base = RandomState(5)
        child = base.fork()
        assert child.generator is not base.generator
        assert not np.allclose(base.normal(size=4), child.normal(size=4))

    def test_fork_is_reproducible(self):
        first = RandomState(5).fork().normal(size=6)
        second = RandomState(5).fork().normal(size=6)
        np.testing.assert_array_equal(first, second)

    def test_successive_forks_differ(self):
        base = RandomState(5)
        assert not np.allclose(
            base.fork().normal(size=6), base.fork().normal(size=6)
        )

    def test_fork_does_not_advance_the_parent(self):
        reference = RandomState(5).normal(size=6)
        base = RandomState(5)
        base.fork()
        np.testing.assert_array_equal(base.normal(size=6), reference)

    def test_derive_at_boundary_restores_sharded_equals_sequential(self):
        """The fix: derive per-worker streams, then shipping them is exact.

        A sequential replay derives one child stream per shard tag and draws
        in order; the sharded replay pickles each derived child to its
        worker and draws there.  With derive-at-boundary the two replays are
        bitwise identical — the property the campaign/serving parity gates
        rely on.
        """
        import pickle

        root = RandomState(42)
        sequential = [
            root.derive(f"shard:{index}").normal(size=8) for index in range(3)
        ]
        shipped = [
            pickle.loads(pickle.dumps(root.derive(f"shard:{index}"))).normal(size=8)
            for index in range(3)
        ]
        for left, right in zip(sequential, shipped):
            np.testing.assert_array_equal(left, right)
        # and the per-worker streams are genuinely distinct:
        assert not np.allclose(sequential[0], sequential[1])


class TestHelpers:
    def test_hash_string_is_stable(self):
        assert hash_string("abc") == hash_string("abc")

    def test_hash_string_differs(self):
        assert hash_string("abc") != hash_string("abd")

    def test_as_random_state_passthrough(self):
        state = RandomState(1)
        assert as_random_state(state) is state

    def test_as_random_state_from_int(self):
        assert isinstance(as_random_state(4), RandomState)

    def test_spawn_rngs_returns_named_streams(self):
        streams = spawn_rngs(3, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert not np.allclose(streams["a"].normal(size=3), streams["b"].normal(size=3))

    def test_spawn_rngs_reproducible(self):
        first = spawn_rngs(3, ["a"])["a"].normal(size=3)
        second = spawn_rngs(3, ["a"])["a"].normal(size=3)
        np.testing.assert_allclose(first, second)
