"""Serialization contracts for everything the sharded fabric ships.

``repro.serving.shard`` and ``AttackCampaign.run_cohort(n_workers=...)`` move
models, detectors, stream state, and configs across process boundaries as
pickled payloads.  The bitwise parity gates (``run_shard_smoke``,
``tests/test_serving_shard.py``) only hold if every one of those objects
round-trips pickle *faithfully* — same ``state_hash`` where hashed, same
array bytes where not, same forward/score outputs, same RNG stream
continuation.  These tests pin that contract object by object so a pickling
regression is caught here, with a named culprit, rather than as an opaque
shard-parity failure.
"""

import pickle

import numpy as np
import pytest

from repro.data.dataset import WindowScaler
from repro.detectors.hmm import GaussianHMMDetector, HMMStreamState
from repro.detectors.knn import KNNDistanceDetector
from repro.detectors.lstm_vae import LSTMVAEDetector, VAEStreamState
from repro.detectors.madgan import (
    InversionState,
    MADGANDetector,
    SequenceDiscriminator,
    SequenceGenerator,
)
from repro.glucose import GlucosePredictor
from repro.nn import BiLSTM, Dense, LSTM, Sequential
from repro.serving import (
    DeviceClockConfig,
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    SensorFaultConfig,
    SessionChurnConfig,
)
from repro.utils.rng import RandomState

from tests.conftest import make_toy_windows


def round_trip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestModuleRoundTrips:
    """Every ``Module`` must rehydrate with an identical ``state_hash``."""

    MODULE_FACTORIES = {
        "dense": lambda: Dense(4, 3, seed=0),
        "lstm": lambda: LSTM(4, 6, seed=1),
        "bilstm": lambda: BiLSTM(4, 6, seed=2),
        "sequential": lambda: Sequential(
            BiLSTM(4, 6, seed=3), Dense(12, 1, seed=4)
        ),
        "madgan_generator": lambda: SequenceGenerator(3, 6, 4, seed=5),
        "madgan_discriminator": lambda: SequenceDiscriminator(4, 6, seed=6),
    }

    @pytest.mark.parametrize("name", sorted(MODULE_FACTORIES))
    def test_state_hash_survives_round_trip(self, name):
        module = self.MODULE_FACTORIES[name]()
        copy = round_trip(module)
        assert copy.state_hash() == module.state_hash()

    @pytest.mark.parametrize("name", sorted(MODULE_FACTORIES))
    def test_parameters_survive_bitwise(self, name):
        module = self.MODULE_FACTORIES[name]()
        copy = round_trip(module)
        originals = list(module.parameters())
        copies = list(copy.parameters())
        assert len(copies) == len(originals)
        for left, right in zip(originals, copies):
            np.testing.assert_array_equal(left.data, right.data)

    def test_forward_is_bitwise_identical(self):
        module = Sequential(BiLSTM(4, 6, seed=3), Dense(12, 1, seed=4))
        copy = round_trip(module)
        windows = np.random.default_rng(0).normal(size=(5, 12, 4))
        from repro.nn import as_tensor

        left = module(as_tensor(windows)).data
        right = copy(as_tensor(windows)).data
        np.testing.assert_array_equal(left, right)


class TestPredictorRoundTrip:
    @pytest.fixture(scope="class")
    def fitted(self):
        windows, _ = make_toy_windows(n_benign=24, n_malicious=0, seed=1)
        targets = windows[:, -1, 0] + 3.0
        predictor = GlucosePredictor(
            history=12, horizon=6, hidden_size=4, epochs=1, seed=0
        )
        predictor.fit(windows, targets)
        return predictor, windows

    def test_state_hash_survives(self, fitted):
        predictor, _ = fitted
        assert round_trip(predictor).state_hash() == predictor.state_hash()

    def test_predictions_bitwise_identical(self, fitted):
        predictor, windows = fitted
        copy = round_trip(predictor)
        np.testing.assert_array_equal(
            copy.predict(windows), predictor.predict(windows)
        )

    def test_scaler_signature_survives(self, fitted):
        predictor, _ = fitted
        copy = round_trip(predictor)
        assert copy.scaler.signature() == predictor.scaler.signature()


class TestWindowScalerRoundTrip:
    def test_signature_and_transform_survive(self):
        windows, _ = make_toy_windows(n_benign=16, n_malicious=0, seed=2)
        scaler = WindowScaler().fit(windows)
        copy = round_trip(scaler)
        assert copy.signature() == scaler.signature()
        np.testing.assert_array_equal(
            copy.transform(windows), scaler.transform(windows)
        )


class TestStreamStateRoundTrips:
    """Stream state has no hash — pin array bytes and step-parity instead."""

    def test_lstm_stream_state_arrays_survive(self):
        lstm = LSTM(4, 6, seed=0)
        state = lstm.stream_state(batch_size=3)
        samples = np.random.default_rng(1).normal(size=(5, 3, 4))
        for sample in samples:
            lstm.step(sample, state)
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.hidden, state.hidden)
        np.testing.assert_array_equal(copy.cell, state.cell)
        assert copy.ticks == state.ticks

    def test_lstm_stream_continues_identically(self):
        lstm = LSTM(4, 6, seed=0)
        state = lstm.stream_state(batch_size=2)
        samples = np.random.default_rng(2).normal(size=(8, 2, 4))
        for sample in samples[:4]:
            lstm.step(sample, state)
        copy = round_trip(state)
        for sample in samples[4:]:
            left = lstm.step(sample, state)
            right = lstm.step(sample, copy)
            np.testing.assert_array_equal(left, right)

    def test_bilstm_stream_state_survives_and_continues(self):
        bilstm = BiLSTM(4, 6, seed=0)
        state = bilstm.stream_state(n_streams=2, capacity=12)
        samples = np.random.default_rng(3).normal(size=(16, 2, 4))
        for sample in samples[:13]:
            bilstm.step(sample, state)
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.forward_proj, state.forward_proj)
        np.testing.assert_array_equal(copy.backward_proj, state.backward_proj)
        np.testing.assert_array_equal(copy.cursor, state.cursor)
        np.testing.assert_array_equal(copy.count, state.count)
        for sample in samples[13:]:
            left = bilstm.step(sample, state)
            right = bilstm.step(sample, copy)
            np.testing.assert_array_equal(left, right)

    def test_inversion_state_survives(self):
        state = InversionState(
            latent=np.random.default_rng(4).normal(size=(12, 3)),
            error=0.125,
            ticks=7,
            fallbacks=2,
        )
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.latent, state.latent)
        assert copy.error == state.error
        assert copy.ticks == state.ticks
        assert copy.fallbacks == state.fallbacks

    def test_vae_stream_state_survives(self):
        state = VAEStreamState(12, 32)
        state.projections[:] = np.random.default_rng(5).normal(size=(12, 32))
        state.cursor, state.count, state.ticks = 4, 12, 9
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.projections, state.projections)
        assert (copy.cursor, copy.count, copy.ticks) == (4, 12, 9)

    def test_hmm_stream_state_survives(self):
        state = HMMStreamState(11, 3)
        state.alphas[:] = np.random.default_rng(6).dirichlet(np.ones(3), size=11)
        state.logliks[:] = np.random.default_rng(7).normal(size=11)
        state.filled, state.ticks = 8, 15
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.alphas, state.alphas)
        np.testing.assert_array_equal(copy.logliks, state.logliks)
        assert (copy.filled, copy.ticks) == (8, 15)


class TestConfigRoundTrips:
    CONFIGS = {
        "faults": lambda: SensorFaultConfig(
            bias_rate=0.05, spike_rate=0.08, malformed_rate=0.05, seed=11
        ),
        "clocks": lambda: DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19),
        "churn": lambda: SessionChurnConfig(
            join_stagger=2, disconnect_every=25, reconnect_after=2
        ),
        "health": lambda: HealthConfig(
            degrade_after=1, quarantine_after=2, backoff_ticks=4
        ),
        "ingress": lambda: IngressConfig(policy=IngressPolicy.REJECT),
    }

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_config_round_trips_equal(self, name):
        config = self.CONFIGS[name]()
        assert round_trip(config) == config


class TestDetectorRoundTrips:
    #: Deterministic detector brains: the pickle copy must score bitwise and
    #: share the original's content address (the sharded fabric's contract).
    HASHED_FAMILY = {
        "lstm_vae": lambda benign: LSTMVAEDetector(
            epochs=1, hidden_size=8, batch_size=16, seed=0
        ).fit(benign),
        "hmm": lambda benign: GaussianHMMDetector(n_states=3, n_iter=3, seed=0).fit(
            benign
        ),
    }

    @pytest.mark.parametrize("name", sorted(HASHED_FAMILY))
    def test_family_round_trip_preserves_hash_and_scores(self, name):
        windows, labels = make_toy_windows(seed=8)
        detector = self.HASHED_FAMILY[name](windows[labels == 0])
        copy = round_trip(detector)
        assert copy.state_hash() == detector.state_hash()
        np.testing.assert_array_equal(copy.scores(windows), detector.scores(windows))
        np.testing.assert_array_equal(copy.predict(windows), detector.predict(windows))

    def test_knn_scores_bitwise_identical(self):
        windows, labels = make_toy_windows(seed=5)
        benign = windows[labels == 0]
        detector = KNNDistanceDetector(n_neighbors=5).fit(benign)
        copy = round_trip(detector)
        np.testing.assert_array_equal(copy.scores(windows), detector.scores(windows))
        np.testing.assert_array_equal(
            copy.predict(windows), detector.predict(windows)
        )

    def test_madgan_copy_replays_the_original_rng_stream(self):
        """A pickled MAD-GAN reproduces the original's *next* draws bitwise.

        ``scores`` consumes the private ``_rng`` for cold inversion latents,
        so score the original only AFTER pickling: both generators then start
        from the same frozen state and must draw — and score — identically.
        """
        windows, labels = make_toy_windows(n_benign=24, n_malicious=6, seed=6)
        benign = windows[labels == 0]
        detector = MADGANDetector(
            epochs=1, hidden_size=6, latent_dim=3, inversion_steps=5, seed=0
        )
        detector.fit(benign)
        copy = round_trip(detector)
        np.testing.assert_array_equal(
            copy.scores(windows[:4]), detector.scores(windows[:4])
        )


class TestRandomStateRoundTrip:
    def test_stream_continues_bitwise(self):
        state = RandomState(17)
        state.normal(size=32)  # advance mid-stream
        copy = round_trip(state)
        np.testing.assert_array_equal(copy.normal(size=16), state.normal(size=16))

    def test_seed_survives_so_derive_still_works(self):
        state = RandomState(17)
        copy = round_trip(state)
        np.testing.assert_array_equal(
            copy.derive("model").normal(size=8),
            state.derive("model").normal(size=8),
        )
