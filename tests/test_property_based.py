"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks import (
    GlucoseRangeConstraint,
    MaxModifiedSamplesConstraint,
    default_transformers,
)
from repro.detectors.knn import minkowski_distances
from repro.eval.metrics import confusion_matrix
from repro.glucose.states import (
    GlucoseState,
    Scenario,
    classify_glucose,
    hyperglycemia_threshold,
    transition_between,
)
from repro.nn import Tensor
from repro.risk import RiskQuantifier, SeverityMatrix, pairwise_euclidean, HierarchicalClustering
from repro.utils.timeseries import MinMaxScaler, StandardScaler, resample_series, sliding_windows

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

small_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8), st.integers(1, 5)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestScalerProperties:
    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_standard_scaler_roundtrip(self, matrix):
        scaler = StandardScaler().fit(matrix)
        recovered = scaler.inverse_transform(scaler.transform(matrix))
        np.testing.assert_allclose(recovered, matrix, atol=1e-6)

    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_minmax_scaler_output_in_unit_interval(self, matrix):
        scaled = MinMaxScaler().fit_transform(matrix)
        assert scaled.min() >= -1e-9
        assert scaled.max() <= 1.0 + 1e-9


class TestWindowingProperties:
    @given(st.integers(5, 60), st.integers(1, 10), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_sliding_window_count(self, length, window, step):
        series = np.arange(length, dtype=float)
        result = sliding_windows(series, window=window, step=step)
        if length < window:
            assert len(result) == 0
        else:
            assert len(result) == (length - window) // step + 1

    @given(st.lists(finite_floats, min_size=2, max_size=50), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_resample_preserves_bounds(self, values, target_length):
        resampled = resample_series(np.array(values), target_length)
        assert len(resampled) == target_length
        assert resampled.min() >= min(values) - 1e-9
        assert resampled.max() <= max(values) + 1e-9


feature_windows = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.just(12), st.just(4)),
    elements=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)


class TestTransformerBatchProperties:
    """candidates_batch must be an exact stacked twin of per-window candidates."""

    @given(feature_windows)
    @settings(max_examples=25, deadline=None)
    def test_candidates_batch_matches_per_window(self, windows):
        for transformer in default_transformers():
            stacked, descriptions = transformer.candidates_batch(windows)
            assert stacked.shape[0] == len(windows)
            for index, window in enumerate(windows):
                edges = transformer.candidates(window)
                assert [edge.description for edge in edges] == descriptions
                np.testing.assert_array_equal(
                    stacked[index], np.stack([edge.window for edge in edges])
                )

    @given(st.integers(2, 24))
    @settings(max_examples=15, deadline=None)
    def test_candidates_batch_handles_short_histories(self, history):
        # Suffix lengths are clamped to the window history in both paths.
        windows = np.full((2, history, 4), 120.0)
        for transformer in default_transformers():
            stacked, descriptions = transformer.candidates_batch(windows)
            edges = transformer.candidates(windows[0])
            assert [edge.description for edge in edges] == descriptions
            np.testing.assert_array_equal(
                stacked[0], np.stack([edge.window for edge in edges])
            )


class TestConstraintBatchProperties:
    """Vectorized constraint checks must agree with the scalar reference."""

    @given(feature_windows, st.sampled_from([125.0, 180.0]))
    @settings(max_examples=25, deadline=None)
    def test_glucose_range_vectorized_matches_scalar(self, candidates, low):
        constraint = GlucoseRangeConstraint(low=low)
        original = candidates[0]
        projected = constraint.project_batch(candidates, original)
        mask = constraint.satisfied_mask(candidates, original)
        projected_mask = constraint.satisfied_mask(projected, original)
        for index, candidate in enumerate(candidates):
            np.testing.assert_array_equal(
                projected[index], constraint.project(candidate, original)
            )
            assert bool(mask[index]) == constraint.is_satisfied(candidate, original)
            assert bool(projected_mask[index]) == constraint.is_satisfied(
                projected[index], original
            )

    @given(feature_windows, st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_max_modified_mask_matches_scalar(self, candidates, max_modified):
        constraint = MaxModifiedSamplesConstraint(max_modified=max_modified)
        original = candidates[-1]
        mask = constraint.satisfied_mask(candidates, original)
        for index, candidate in enumerate(candidates):
            assert bool(mask[index]) == constraint.is_satisfied(candidate, original)

    @given(feature_windows, st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_max_modified_project_batch_matches_scalar(self, candidates, max_modified):
        constraint = MaxModifiedSamplesConstraint(max_modified=max_modified)
        original = candidates[-1]
        projected = constraint.project_batch(candidates, original)
        assert projected.shape == candidates.shape
        for index, candidate in enumerate(candidates):
            np.testing.assert_array_equal(
                projected[index], constraint.project(candidate, original)
            )
        # Projection always lands in the admissible set.
        assert constraint.satisfied_mask(projected, original).all()

    @given(feature_windows, st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_max_modified_project_batch_reverts_oldest_first(self, candidates, max_modified):
        constraint = MaxModifiedSamplesConstraint(max_modified=max_modified)
        original = candidates[-1]
        projected = constraint.project_batch(candidates, original)
        # Surviving modifications must be the *latest* ones: every modified
        # sample in the projection is at least as recent as any reverted one.
        for index, candidate in enumerate(candidates):
            before = np.where(
                np.abs(candidate[:, 0] - original[:, 0]) > constraint.tolerance
            )[0]
            after = np.where(
                np.abs(projected[index][:, 0] - original[:, 0]) > constraint.tolerance
            )[0]
            assert len(after) <= max_modified
            assert set(after) == set(before[len(before) - len(after) :])


class TestTensorProperties:
    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_addition_matches_numpy(self, matrix):
        result = (Tensor(matrix) + Tensor(matrix * 2.0)).numpy()
        np.testing.assert_allclose(result, matrix * 3.0, atol=1e-9)

    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, matrix):
        tensor = Tensor(matrix, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(matrix))

    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_tanh_output_bounded(self, matrix):
        values = Tensor(matrix).tanh().numpy()
        assert np.all(values <= 1.0)
        assert np.all(values >= -1.0)


class TestDistanceProperties:
    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero_and_symmetry(self, matrix):
        distances = pairwise_euclidean(matrix)
        # The squared-expansion formula loses a little precision for large,
        # nearly identical rows; a 1e-4 absolute tolerance is ample here.
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-4)
        np.testing.assert_allclose(distances, distances.T, atol=1e-9)

    @given(small_matrices)
    @settings(max_examples=30, deadline=None)
    def test_minkowski_non_negative(self, matrix):
        distances = minkowski_distances(matrix, matrix, p=2.0)
        assert np.all(distances >= 0.0)


class TestGlucoseStateProperties:
    @given(st.floats(min_value=20.0, max_value=499.0), st.sampled_from(list(Scenario)))
    @settings(max_examples=60, deadline=None)
    def test_classification_consistent_with_thresholds(self, value, scenario):
        state = classify_glucose(value, scenario)
        if value < 70.0:
            assert state == GlucoseState.HYPO
        elif value > hyperglycemia_threshold(scenario):
            assert state == GlucoseState.HYPER
        else:
            assert state == GlucoseState.NORMAL

    @given(
        st.floats(min_value=20.0, max_value=499.0),
        st.floats(min_value=20.0, max_value=499.0),
        st.sampled_from(list(Scenario)),
    )
    @settings(max_examples=60, deadline=None)
    def test_risk_non_negative_and_zero_iff_identical(self, benign, adversarial, scenario):
        risk = RiskQuantifier().risk_of(benign, adversarial, scenario)
        assert risk >= 0.0
        if benign == adversarial:
            assert risk == 0.0

    @given(
        st.floats(min_value=20.0, max_value=499.0),
        st.floats(min_value=20.0, max_value=499.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_severity_lookup_total(self, benign, adversarial):
        transition = transition_between(benign, adversarial)
        coefficient = SeverityMatrix().coefficient(transition)
        assert coefficient in {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}


class TestClusteringProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 10), st.integers(1, 4)),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_cut_produces_requested_cluster_count(self, matrix, n_clusters):
        # Ensure rows are not all identical (degenerate but legal); clustering
        # must still partition them into the requested number of groups.
        n_clusters = min(n_clusters, matrix.shape[0])
        model = HierarchicalClustering(linkage="average").fit(matrix)
        labels = model.cut(n_clusters)
        assert len(labels) == matrix.shape[0]
        assert len(set(labels.tolist())) == n_clusters


class TestConfusionMatrixProperties:
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=60),
        st.lists(st.integers(0, 1), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_sum_to_total(self, true_labels, predicted_labels):
        length = min(len(true_labels), len(predicted_labels))
        true_labels, predicted_labels = true_labels[:length], predicted_labels[:length]
        matrix = confusion_matrix(true_labels, predicted_labels)
        assert matrix.total == length
        assert 0.0 <= matrix.precision <= 1.0
        assert 0.0 <= matrix.recall <= 1.0
        assert 0.0 <= matrix.f1 <= 1.0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_has_perfect_scores(self, labels):
        matrix = confusion_matrix(labels, labels)
        if any(labels):
            assert matrix.recall == 1.0
            assert matrix.precision == 1.0
        assert matrix.false_positive_rate == 0.0
