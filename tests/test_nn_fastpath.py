"""Equivalence tests for the graph-free inference fast path.

The regression guarantee: for every layer and for the full glucose
forecaster, the ``no_grad``/eval fast path must match the autodiff forward
to within 1e-10 on random batches.
"""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    BiLSTM,
    Dense,
    Dropout,
    LSTM,
    Sequential,
    Tensor,
    is_grad_enabled,
    no_grad,
)

TOLERANCE = 1e-10


def max_diff(a: np.ndarray, b: np.ndarray) -> float:
    assert a.shape == b.shape
    return float(np.abs(np.asarray(a) - np.asarray(b)).max())


class TestNoGrad:
    def test_disables_graph_construction(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        with no_grad():
            y = (x * 2.0 + 1.0).sum()
        assert not y.requires_grad
        assert y._parents == ()
        assert y._backward is None

    def test_restores_state_and_nests(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_values_match_graph_path(self):
        x = Tensor(np.linspace(-2, 2, 12).reshape(3, 4), requires_grad=True)
        graph = (x.tanh() * x.sigmoid()).sum()
        with no_grad():
            fast = (x.tanh() * x.sigmoid()).sum()
        assert max_diff(graph.numpy(), fast.numpy()) == 0.0

    def test_usable_as_decorator(self):
        @no_grad()
        def infer(tensor):
            return tensor * 3.0

        result = infer(Tensor(np.ones(4), requires_grad=True))
        assert not result.requires_grad


class TestTensorNumpyCopy:
    def test_numpy_default_aliases_buffer(self):
        tensor = Tensor(np.zeros(3))
        view = tensor.numpy()
        view[0] = 42.0
        assert tensor.data[0] == 42.0

    def test_numpy_copy_is_independent(self):
        tensor = Tensor(np.zeros(3))
        copied = tensor.numpy(copy=True)
        copied[0] = 42.0
        assert tensor.data[0] == 0.0

    def test_detach_copy_is_independent(self):
        tensor = Tensor(np.zeros(3), requires_grad=True)
        copied = tensor.detach_copy()
        copied[:] = 7.0
        assert np.all(tensor.data == 0.0)


class TestLayerFastPaths:
    @pytest.mark.parametrize("activation", [None, "linear", "tanh", "sigmoid", "relu", "leaky_relu"])
    def test_dense(self, rng, activation):
        layer = Dense(6, 4, activation=activation, seed=3)
        x = rng.normal(size=(17, 6))
        assert max_diff(layer(Tensor(x)).numpy(), layer.fast_forward(x)) <= TOLERANCE

    @pytest.mark.parametrize("return_sequences", [False, True])
    @pytest.mark.parametrize("reverse", [False, True])
    def test_lstm(self, rng, return_sequences, reverse):
        layer = LSTM(4, 8, return_sequences=return_sequences, reverse=reverse, seed=7)
        x = rng.normal(size=(9, 12, 4))
        assert max_diff(layer(Tensor(x)).numpy(), layer.fast_forward(x)) <= TOLERANCE

    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_bilstm(self, rng, return_sequences):
        layer = BiLSTM(4, 8, return_sequences=return_sequences, seed=11)
        x = rng.normal(size=(9, 12, 4))
        assert max_diff(layer(Tensor(x)).numpy(), layer.fast_forward(x)) <= TOLERANCE

    def test_activation_layer(self, rng):
        layer = Activation("tanh")
        x = rng.normal(size=(5, 3))
        assert max_diff(layer(Tensor(x)).numpy(), layer.fast_forward(x)) == 0.0

    def test_dropout_fast_path_is_identity_even_in_training(self, rng):
        layer = Dropout(rate=0.5, seed=0)
        layer.train()
        x = rng.normal(size=(20, 6))
        np.testing.assert_array_equal(layer.fast_forward(x), x)

    def test_sequential_full_stack(self, rng):
        model = Sequential(
            BiLSTM(4, 8, seed=1),
            Dense(16, 8, activation="tanh", seed=2),
            Dropout(rate=0.3, seed=3),
            Dense(8, 1, seed=4),
        )
        model.eval()
        x = rng.normal(size=(21, 12, 4))
        assert max_diff(model(Tensor(x)).numpy(), model.fast_forward(x)) <= TOLERANCE

    def test_module_predict_restores_training_flags(self, rng):
        model = Sequential(Dense(4, 4, seed=0), Dropout(rate=0.4, seed=1))
        model.train()
        model.predict(rng.normal(size=(3, 4)))
        assert model.training
        assert all(layer.training for layer in model.layers)

    def test_fallback_fast_forward_matches_forward(self, rng):
        # A module without a hand-written fast path falls back to no_grad().
        from repro.nn import Module, as_tensor

        class Doubler(Module):
            def forward(self, inputs):
                return as_tensor(inputs) * 2.0

        x = rng.normal(size=(4, 2))
        np.testing.assert_array_equal(Doubler().fast_forward(x), x * 2.0)

    def test_property_random_shapes(self):
        # Property-style sweep: random widths/batches, several seeds.
        for seed in range(5):
            local = np.random.default_rng(seed)
            batch = int(local.integers(1, 24))
            hidden = int(local.integers(2, 20))
            layer = BiLSTM(4, hidden, seed=seed)
            head = Dense(2 * hidden, 1, seed=seed + 100)
            x = local.normal(size=(batch, 12, 4))
            graph = head(layer(Tensor(x))).numpy()
            fast = head.fast_forward(layer.fast_forward(x))
            assert max_diff(graph, fast) <= TOLERANCE


class TestPredictorFastPath:
    def test_predict_matches_graph_path(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for("A_5")
        record = next(r for r in tiny_cohort if r.label == "A_5")
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        fast = predictor.predict(windows)
        graph = predictor.predict_graph(windows)
        assert max_diff(fast, graph) <= TOLERANCE

    def test_use_fast_path_flag_switches_engine(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for("A_5")
        record = next(r for r in tiny_cohort if r.label == "A_5")
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        try:
            predictor.use_fast_path = False
            slow = predictor.predict(windows[:4])
        finally:
            predictor.use_fast_path = True
        np.testing.assert_array_equal(slow, predictor.predict_graph(windows[:4]))

    def test_predict_one_matches_batched_predict(self, tiny_zoo, tiny_cohort):
        predictor = tiny_zoo.model_for("A_5")
        record = next(r for r in tiny_cohort if r.label == "A_5")
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        batched = predictor.predict(windows[:6])
        singles = np.array([predictor.predict_one(window) for window in windows[:6]])
        assert max_diff(batched, singles) <= TOLERANCE
