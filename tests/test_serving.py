"""Stream/offline parity harness for the serving subsystem.

Every streaming fast path is pinned to its offline reference:

* ``LSTM.step`` / ``BiLSTM.step`` vs ``fast_forward`` at the layer level,
* ``GlucosePredictor.predict_stream`` / ``step_stream`` vs ``predict`` and
  ``predict_graph`` (≤ 1e-10) across strides, warm-up offsets, and scheduler
  batch sizes,
* streaming detector verdicts vs the offline ``predict`` on the same windows,
* the whole stack under an online attack via ``scripts/check_parity.py``'s
  serving smoke (tier-1 tripwire).
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.data.cohort import CGM_COLUMN
from repro.detectors import KNNDistanceDetector, StreamingDetector
from repro.nn import BiLSTM, LSTM
from repro.serving import (
    AttackEpisode,
    OnlineAttacker,
    StreamReplayer,
    StreamScheduler,
)

TOLERANCE = 1e-10


@pytest.fixture(scope="module")
def aggregate_zoo(tiny_cohort):
    """Aggregate-only zoo: every patient shares one model (one serving lane)."""
    from repro.glucose import GlucoseModelZoo

    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8),
        train_personalized=False,
        seed=5,
    )
    zoo.fit(tiny_cohort)
    return zoo


@pytest.fixture(scope="module")
def sample_detector(tiny_zoo, tiny_cohort):
    """A fitted, deterministic per-sample detector shared by the tests."""
    windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
    return KNNDistanceDetector(n_neighbors=5).fit(windows[::4, -1:, :])


# ---------------------------------------------------------------------- layers
class TestLayerStreaming:
    def test_lstm_step_matches_fast_forward_prefix(self, rng):
        layer = LSTM(4, 6, seed=1)
        sequence = rng.normal(size=(3, 15, 4))
        state = layer.stream_state(3)
        for tick in range(15):
            hidden = layer.step(sequence[:, tick, :], state)
            reference = layer.fast_forward(sequence[:, : tick + 1, :])
            np.testing.assert_allclose(hidden, reference, atol=TOLERANCE)
        assert state.ticks == 15

    def test_lstm_stream_state_reset(self, rng):
        layer = LSTM(4, 6, seed=1)
        sequence = rng.normal(size=(2, 5, 4))
        state = layer.stream_state(2)
        for tick in range(5):
            layer.step(sequence[:, tick, :], state)
        state.reset()
        hidden = layer.step(sequence[:, 0, :], state)
        np.testing.assert_allclose(
            hidden, layer.fast_forward(sequence[:, :1, :]), atol=TOLERANCE
        )

    def test_reverse_lstm_refuses_streaming(self):
        layer = LSTM(4, 6, reverse=True, seed=1)
        with pytest.raises(ValueError, match="reverse"):
            layer.stream_state(1)

    def test_bilstm_ring_matches_fast_forward_window(self, rng):
        layer = BiLSTM(4, 6, seed=2)
        sequence = rng.normal(size=(2, 18, 4))
        state = layer.stream_state(2, capacity=7)
        for tick in range(18):
            output = layer.step(sequence[:, tick, :], state)
            if tick < 6:
                assert np.isnan(output).all()
            else:
                reference = layer.fast_forward(sequence[:, tick - 6 : tick + 1, :])
                np.testing.assert_allclose(output, reference, atol=TOLERANCE)

    def test_bilstm_partial_rows_leave_other_streams_untouched(self, rng):
        layer = BiLSTM(3, 5, seed=3)
        state = layer.stream_state(2, capacity=4)
        histories = {0: [], 1: []}
        schedule = [(0, 1), (0,), (0, 1), (0, 1), (1,), (0, 1), (0, 1), (0, 1)]
        for tick, rows in enumerate(schedule):
            samples = rng.normal(size=(len(rows), 3))
            output = layer.step(samples, state, rows=np.array(rows))
            for position, row in enumerate(rows):
                histories[row].append(samples[position])
                if len(histories[row]) >= 4:
                    reference = layer.fast_forward(
                        np.stack(histories[row][-4:])[np.newaxis]
                    )
                    np.testing.assert_allclose(
                        output[position], reference[0], atol=TOLERANCE
                    )

    def test_bilstm_state_grow_preserves_existing_rings(self, rng):
        layer = BiLSTM(3, 5, seed=4)
        state = layer.stream_state(1, capacity=3)
        history = [rng.normal(size=3) for _ in range(3)]
        for sample in history:
            layer.step(sample[np.newaxis], state, rows=np.array([0]))
        state.grow(5)
        assert state.n_streams == 5
        new_sample = rng.normal(size=3)
        output = layer.step(new_sample[np.newaxis], state, rows=np.array([0]))
        reference = layer.fast_forward(np.stack(history[-2:] + [new_sample])[np.newaxis])
        np.testing.assert_allclose(output[0], reference[0], atol=TOLERANCE)

    def test_sequence_bilstm_refuses_streaming(self):
        layer = BiLSTM(3, 5, return_sequences=True, seed=5)
        with pytest.raises(ValueError, match="return_sequences"):
            layer.stream_state(1, capacity=4)


# ------------------------------------------------------------------- predictor
class TestPredictorStreaming:
    def test_predict_stream_matches_offline_paths(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        features = record.features("test")[:80]
        windows, _, _ = tiny_zoo.dataset.windows_from_features(features)

        streamed = predictor.predict_stream(features)
        history = predictor.history
        assert np.isnan(streamed[: history - 1]).all()
        aligned = streamed[history - 1 : history - 1 + len(windows)]
        np.testing.assert_allclose(aligned, predictor.predict(windows), atol=TOLERANCE)
        np.testing.assert_allclose(
            aligned, predictor.predict_graph(windows), atol=TOLERANCE
        )

    @pytest.mark.parametrize("stride", [1, 4, 9])
    def test_predict_stream_parity_across_strides(self, stride, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        features = record.features("test")[:70]
        windows, _, _ = tiny_zoo.dataset.windows_from_features(features)
        strided = windows[::stride]
        streamed = predictor.predict_stream(features)
        history = predictor.history
        aligned = streamed[history - 1 : history - 1 + len(windows)][::stride]
        np.testing.assert_allclose(aligned, predictor.predict(strided), atol=TOLERANCE)

    @pytest.mark.parametrize("offset", [0, 3, 11])
    def test_predict_stream_parity_across_warmup_offsets(
        self, offset, tiny_zoo, tiny_cohort
    ):
        # Starting the stream mid-trace must not change which window each
        # prediction corresponds to.
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        features = record.features("test")[offset : offset + 50]
        windows, _, _ = tiny_zoo.dataset.windows_from_features(features)
        streamed = predictor.predict_stream(features)
        history = predictor.history
        aligned = streamed[history - 1 : history - 1 + len(windows)]
        np.testing.assert_allclose(aligned, predictor.predict(windows), atol=TOLERANCE)

    def test_step_stream_serves_concurrent_streams(self, tiny_zoo, tiny_cohort):
        records = list(tiny_cohort)
        predictor = tiny_zoo.model_for(records[0].label)
        traces = [record.features("test")[:50] for record in records]
        state = predictor.stream_state(len(traces))
        collected = np.full((50, len(traces)), np.nan)
        for tick in range(50):
            samples = np.stack([trace[tick] for trace in traces])
            collected[tick] = predictor.step_stream(samples, state)
        history = predictor.history
        for column, trace in enumerate(traces):
            windows, _, _ = tiny_zoo.dataset.windows_from_features(trace)
            np.testing.assert_allclose(
                collected[history - 1 : history - 1 + len(windows), column],
                predictor.predict(windows),
                atol=TOLERANCE,
            )

    def test_step_stream_rejects_bad_shapes(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        predictor = tiny_zoo.model_for(record.label)
        state = predictor.stream_state(1)
        with pytest.raises(ValueError, match="shape"):
            predictor.step_stream(np.zeros((1, 2)), state)

    def test_state_hash_distinguishes_weights_and_scaler(self, tiny_zoo, tiny_cohort):
        labels = [record.label for record in tiny_cohort]
        first = tiny_zoo.model_for(labels[0])
        second = tiny_zoo.model_for(labels[1])
        assert first.state_hash() == first.state_hash()
        assert first.state_hash() != second.state_hash()  # different weights


# ------------------------------------------------------------------- scheduler
class TestStreamScheduler:
    def test_sessions_sharing_weights_share_a_lane(self, aggregate_zoo, tiny_cohort):
        scheduler = StreamScheduler()
        for record in tiny_cohort:
            scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))
        assert scheduler.n_sessions == len(tiny_cohort)
        assert scheduler.n_lanes == 1  # every patient uses the aggregate model

    def test_personalized_models_get_separate_lanes(self, tiny_zoo, tiny_cohort):
        scheduler = StreamScheduler()
        for record in tiny_cohort:
            scheduler.open_session(record.label, tiny_zoo.model_for(record.label))
        assert scheduler.n_lanes == len(tiny_cohort)

    def test_one_model_step_per_lane_per_tick(self, aggregate_zoo, tiny_cohort):
        scheduler = StreamScheduler()
        records = list(tiny_cohort)
        for record in records:
            scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))
        predictor = aggregate_zoo.aggregate
        calls = []
        original = predictor.step_stream
        predictor.step_stream = lambda *args, **kwargs: (
            calls.append(1),
            original(*args, **kwargs),
        )[1]
        try:
            scheduler.tick(
                {record.label: record.features("test")[0] for record in records}
            )
        finally:
            predictor.step_stream = original
        assert calls == [1]  # one stacked call for the whole cohort

    @pytest.mark.parametrize("n_sessions", [1, 3, 7])
    def test_scheduler_parity_across_batch_sizes(
        self, n_sessions, aggregate_zoo, tiny_cohort
    ):
        records = list(tiny_cohort)
        traces = [
            records[index % len(records)].features("test")[:40]
            for index in range(n_sessions)
        ]
        scheduler = StreamScheduler()
        sessions = [
            scheduler.open_session(
                records[index % len(records)].label,
                aggregate_zoo.model_for(records[index % len(records)].label),
                session_id=f"s{index}",
            )
            for index in range(n_sessions)
        ]
        collected = [[] for _ in range(n_sessions)]
        for tick in range(40):
            outcomes = scheduler.tick(
                {f"s{index}": traces[index][tick] for index in range(n_sessions)}
            )
            for index in range(n_sessions):
                collected[index].append(outcomes[f"s{index}"].prediction)
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        for index, trace in enumerate(traces):
            windows, _, _ = aggregate_zoo.dataset.windows_from_features(trace)
            streamed = np.array(
                collected[index][history - 1 : history - 1 + len(windows)], dtype=float
            )
            np.testing.assert_allclose(streamed, predictor.predict(windows), atol=TOLERANCE)
        assert all(session.last_prediction is not None for session in sessions)

    def test_missed_ticks_do_not_corrupt_other_streams(self, aggregate_zoo, tiny_cohort):
        records = list(tiny_cohort)[:2]
        traces = {record.label: record.features("test")[:40] for record in records}
        scheduler = StreamScheduler()
        for record in records:
            scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))
        # The second stream misses every third transmission slot.
        consumed = {record.label: [] for record in records}
        positions = {record.label: 0 for record in records}
        predictions = {record.label: [] for record in records}
        for tick in range(40):
            samples = {}
            for index, record in enumerate(records):
                if index == 1 and tick % 3 == 2:
                    continue
                label = record.label
                samples[label] = traces[label][positions[label]]
                consumed[label].append(traces[label][positions[label]])
                positions[label] += 1
            outcomes = scheduler.tick(samples)
            for label, outcome in outcomes.items():
                predictions[label].append(outcome.prediction)
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        for record in records:
            label = record.label
            windows, _, _ = aggregate_zoo.dataset.windows_from_features(
                np.stack(consumed[label])
            )
            streamed = np.array(
                predictions[label][history - 1 : history - 1 + len(windows)], dtype=float
            )
            np.testing.assert_allclose(streamed, predictor.predict(windows), atol=TOLERANCE)

    def test_closed_session_slot_is_recycled(self, aggregate_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        predictor = aggregate_zoo.model_for(record.label)
        features = record.features("test")[:30]
        scheduler = StreamScheduler()
        first = scheduler.open_session(record.label, predictor, session_id="first")
        for tick in range(15):
            scheduler.tick({"first": features[tick]})
        slot = first.slot
        scheduler.close_session("first")
        assert scheduler.n_sessions == 0
        second = scheduler.open_session(record.label, predictor, session_id="second")
        assert second.slot == slot  # recycled, and must start cold
        predictions = [
            scheduler.tick({"second": features[tick]})["second"].prediction
            for tick in range(30)
        ]
        history = predictor.history
        windows, _, _ = aggregate_zoo.dataset.windows_from_features(features)
        streamed = np.array(predictions[history - 1 : history - 1 + len(windows)], dtype=float)
        np.testing.assert_allclose(streamed, predictor.predict(windows), atol=TOLERANCE)

    def test_duplicate_session_id_rejected(self, aggregate_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        scheduler = StreamScheduler()
        scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))
        with pytest.raises(ValueError, match="already exists"):
            scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))


# ----------------------------------------------------------- streaming verdicts
class TestStreamingDetector:
    def test_sample_unit_matches_offline_predict(self, sample_detector, tiny_cohort):
        record = next(iter(tiny_cohort))
        features = record.features("test")[:40]
        adapter = StreamingDetector(sample_detector, unit="sample")
        streamed = [adapter.update(sample).flagged for sample in features]
        offline = sample_detector.predict(features[:, np.newaxis, :])
        assert streamed == [bool(flag) for flag in offline]

    def test_window_unit_matches_offline_predict(self, tiny_zoo, tiny_cohort):
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        detector = KNNDistanceDetector(n_neighbors=5).fit(windows[::4])
        record = next(iter(tiny_cohort))
        features = record.features("test")[:40]
        adapter = StreamingDetector(detector, unit="window", history=12)
        verdicts = [adapter.update(sample) for sample in features]
        assert all(verdict.warming for verdict in verdicts[:11])
        trace_windows, _, _ = tiny_zoo.dataset.windows_from_features(features)
        # window i ends at sample i + 11 -> verdict at tick i + 11
        offline = detector.predict(trace_windows)
        streamed = [verdicts[index + 11].flagged for index in range(len(trace_windows))]
        assert streamed == [bool(flag) for flag in offline]

    def test_include_scores(self, sample_detector, tiny_cohort):
        record = next(iter(tiny_cohort))
        sample = record.features("test")[0]
        adapter = StreamingDetector(sample_detector, unit="sample", include_scores=True)
        verdict = adapter.update(sample)
        offline_score = float(sample_detector.scores(sample[np.newaxis, np.newaxis, :])[0])
        assert verdict.score == pytest.approx(offline_score)

    def test_reset_restarts_warmup(self, tiny_zoo, tiny_cohort):
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        detector = KNNDistanceDetector(n_neighbors=5).fit(windows[::8])
        record = next(iter(tiny_cohort))
        features = record.features("test")[:15]
        adapter = StreamingDetector(detector, unit="window", history=12)
        for sample in features:
            adapter.update(sample)
        adapter.reset()
        assert adapter.update(features[0]).warming


# --------------------------------------------------------- attacked-stream parity
class TestAttackedStreamParity:
    @pytest.fixture(scope="class")
    def attacked_replay(self, aggregate_zoo, tiny_cohort, sample_detector):
        labels = [record.label for record in tiny_cohort]
        attacker = OnlineAttacker(
            {
                labels[0]: [AttackEpisode(start=20, duration=10)],
                labels[1]: [AttackEpisode(start=15, duration=8), AttackEpisode(start=40, duration=6)],
            }
        )
        replayer = StreamReplayer(
            aggregate_zoo,
            detectors={"knn": (sample_detector, "sample")},
            attacker=attacker,
        )
        report = replayer.replay(tiny_cohort, split="test", max_ticks=60)
        return attacker, report

    def test_attacker_tampers_only_cgm_during_episodes(
        self, attacked_replay, tiny_cohort
    ):
        attacker, report = attacked_replay
        assert attacker.records, "no tampering happened"
        for record in tiny_cohort:
            trace = report.sessions[record.label]
            benign = record.features("test")[:60]
            episodes = attacker.episodes.get(record.label, [])
            for outcome in trace.ticks:
                delivered = outcome.sample
                non_cgm = np.delete(delivered, CGM_COLUMN)
                np.testing.assert_array_equal(
                    non_cgm, np.delete(benign[outcome.tick], CGM_COLUMN)
                )
                if outcome.attacked:
                    assert any(episode.covers(outcome.tick) for episode in episodes)

    def test_streamed_predictions_match_offline_on_delivered_stream(
        self, attacked_replay, aggregate_zoo, tiny_cohort
    ):
        _, report = attacked_replay
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        for record in tiny_cohort:
            trace = report.sessions[record.label]
            delivered = np.stack([outcome.sample for outcome in trace.ticks])
            windows, _, _ = aggregate_zoo.dataset.windows_from_features(delivered)
            streamed = trace.predictions()[history - 1 : history - 1 + len(windows)]
            np.testing.assert_allclose(streamed, predictor.predict(windows), atol=TOLERANCE)

    def test_streaming_verdicts_match_offline_on_delivered_stream(
        self, attacked_replay, sample_detector, tiny_cohort
    ):
        _, report = attacked_replay
        for record in tiny_cohort:
            trace = report.sessions[record.label]
            delivered = np.stack([outcome.sample for outcome in trace.ticks])
            offline = sample_detector.predict(delivered[:, np.newaxis, :])
            streamed = [outcome.verdicts["knn"].flagged for outcome in trace.ticks]
            assert streamed == [bool(flag) for flag in offline]

    def test_tamper_records_are_consistent_with_traces(self, attacked_replay):
        attacker, report = attacked_replay
        tampered_by_session = {
            session_id: set(trace.attacked_ticks)
            for session_id, trace in report.sessions.items()
        }
        recorded = {}
        for record in attacker.records:
            recorded.setdefault(record.session_id, set()).add(record.tick)
            assert record.delivered_cgm != pytest.approx(record.benign_cgm)
        assert recorded == {
            session_id: ticks
            for session_id, ticks in tampered_by_session.items()
            if ticks
        }

    def test_episode_outcomes_cover_every_episode(self, attacked_replay):
        attacker, report = attacked_replay
        expected = sum(len(episodes) for episodes in attacker.episodes.values())
        outcomes = report.episode_outcomes("knn")
        assert len(outcomes) == expected
        for outcome in outcomes:
            if outcome.detected:
                assert outcome.episode.covers(outcome.first_flag_tick)
                assert outcome.latency_ticks >= 0
            else:
                assert outcome.first_flag_tick is None

    def test_multi_sample_search_records_realized_success(
        self, aggregate_zoo, tiny_cohort
    ):
        # With max_tampered_per_tick > 1 the search may exploit rewriting
        # already-delivered samples, but only the final sample is delivered;
        # TamperRecord.success must describe the realized (delivered) window.
        from repro.glucose.states import hyperglycemia_threshold

        label = next(iter(tiny_cohort)).label
        attacker = OnlineAttacker(
            {label: [AttackEpisode(start=20, duration=8)]}, max_tampered_per_tick=2
        )
        replayer = StreamReplayer(aggregate_zoo, attacker=attacker)
        report = replayer.replay(
            tiny_cohort.select([label]), split="test", max_ticks=40
        )
        assert attacker.records
        delivered = np.stack(
            [outcome.sample for outcome in report.sessions[label].ticks]
        )
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        for record in attacker.records:
            if not record.eligible:
                continue
            window = delivered[record.tick - history + 1 : record.tick + 1]
            realized = float(predictor.predict(window[np.newaxis])[0])
            assert record.success == (
                realized > hyperglycemia_threshold(record.scenario)
            )

    def test_replay_closes_sessions_on_failure(self, aggregate_zoo, tiny_cohort):
        # A mid-replay failure must not leak sessions into a BYO scheduler.
        class ExplodingAttacker(OnlineAttacker):
            def intercept(self, items):
                if any(session.ticks >= 5 for session, _, _ in items):
                    raise RuntimeError("boom")
                return super().intercept(items)

        scheduler = StreamScheduler()
        replayer = StreamReplayer(
            aggregate_zoo, attacker=ExplodingAttacker({}), scheduler=scheduler
        )
        with pytest.raises(RuntimeError, match="boom"):
            replayer.replay(tiny_cohort, split="test", max_ticks=20)
        assert scheduler.n_sessions == 0
        # The scheduler is reusable afterwards.
        replayer_ok = StreamReplayer(aggregate_zoo, scheduler=scheduler)
        report = replayer_ok.replay(tiny_cohort, split="test", max_ticks=20)
        assert scheduler.n_sessions == 0
        assert all(trace.n_ticks == 20 for trace in report.sessions.values())

    def test_confusion_and_breakdown_account_every_tick(self, attacked_replay):
        _, report = attacked_replay
        matrix = report.confusion("knn")
        total_ticks = sum(trace.n_ticks for trace in report.sessions.values())
        assert matrix.total == total_ticks  # sample unit: no warm-up ticks
        breakdown = report.trace_breakdown("knn")
        tampered = sum(len(trace.attacked_ticks) for trace in report.sessions.values())
        assert (
            sum(counts["true_positives"] + counts["false_negatives"] for counts in breakdown.values())
            == tampered
        )


# ------------------------------------------------------------------ tier-1 wire
class TestServingSmoke:
    """Wire scripts/check_parity.py's serving smoke into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_serving", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_serving_smoke_passes(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_serving_smoke(tiny_zoo, tiny_cohort, n_ticks=50)
        assert report["max_stream_gap"] <= check_parity.PREDICTION_TOLERANCE
        assert report["tampered_ticks"] > 0
        assert report["n_sessions"] == len(tiny_cohort)


# ----------------------------------------------------- single-session fast path
class TestSingleSessionFastPath:
    """A one-session tick bypasses the batching scaffolding but must stay
    bitwise-identical to the batched path (same matmul shapes, same ring
    ordering), predictions and verdicts alike."""

    def test_step_one_bitwise_matches_step_stream(self, aggregate_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        predictor = aggregate_zoo.aggregate
        features = record.features("test")[:40]
        fast_state = predictor.stream_state(1)
        batched_state = predictor.stream_state(1)
        for sample in features:
            fast = predictor.step_one(sample, fast_state, 0)
            batched = predictor.step_stream(sample[np.newaxis], batched_state)[0]
            if fast is None:
                assert np.isnan(batched)
            else:
                assert fast == batched  # bitwise, not approx

    def test_fast_path_tick_identical_to_batched_tick(
        self, aggregate_zoo, tiny_cohort, sample_detector
    ):
        from repro.detectors import StreamingDetector

        record = next(iter(tiny_cohort))
        features = record.features("test")[:40]
        outcomes = {}
        for fast_path in (True, False):
            scheduler = StreamScheduler(use_single_fast_path=fast_path)
            adapter = StreamingDetector(
                sample_detector, unit="sample", include_scores=True
            )
            scheduler.open_session(
                record.label,
                aggregate_zoo.model_for(record.label),
                detectors={"knn": adapter},
            )
            outcomes[fast_path] = [
                scheduler.tick({record.label: sample})[record.label]
                for sample in features
            ]
        for fast, slow in zip(outcomes[True], outcomes[False]):
            assert fast.tick == slow.tick
            assert fast.prediction == slow.prediction  # bitwise (or both None)
            fast_verdict, slow_verdict = fast.verdicts["knn"], slow.verdicts["knn"]
            assert fast_verdict.flagged == slow_verdict.flagged
            assert fast_verdict.score == slow_verdict.score

    def test_fast_path_engages_for_partial_ticks_of_a_busy_scheduler(
        self, aggregate_zoo, tiny_cohort
    ):
        # Two sessions open; a tick naming only one of them takes the fast
        # path and must leave the other stream's state untouched.
        records = list(tiny_cohort)[:2]
        traces = {record.label: record.features("test")[:30] for record in records}
        scheduler = StreamScheduler()
        for record in records:
            scheduler.open_session(record.label, aggregate_zoo.model_for(record.label))
        predictions = {record.label: [] for record in records}
        consumed = {record.label: [] for record in records}
        positions = {record.label: 0 for record in records}
        for tick in range(30):
            names = (
                [records[0].label]
                if tick % 3 == 2
                else [record.label for record in records]
            )
            samples = {}
            for label in names:
                samples[label] = traces[label][positions[label]]
                consumed[label].append(traces[label][positions[label]])
                positions[label] += 1
            outcomes = scheduler.tick(samples)
            for label, outcome in outcomes.items():
                predictions[label].append(outcome.prediction)
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        for record in records:
            label = record.label
            windows, _, _ = aggregate_zoo.dataset.windows_from_features(
                np.stack(consumed[label])
            )
            streamed = np.array(
                predictions[label][history - 1 : history - 1 + len(windows)],
                dtype=float,
            )
            np.testing.assert_allclose(
                streamed, predictor.predict(windows), atol=TOLERANCE
            )


# ------------------------------------------------- incremental detector threading
class TestIncrementalStreamingAdapter:
    @pytest.fixture(scope="class")
    def madgan(self, tiny_zoo, tiny_cohort):
        from repro.detectors import MADGANDetector

        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        detector = MADGANDetector(
            epochs=1,
            hidden_size=8,
            inversion_steps=6,
            warm_inversion_steps=2,
            max_samples=200,
            seed=0,
        )
        detector.fit(windows[::4])
        return detector

    def test_incremental_auto_enabled_for_window_units(self, madgan, sample_detector):
        assert StreamingDetector(madgan, unit="window").incremental
        assert not StreamingDetector(madgan, unit="window", incremental=False).incremental
        assert not StreamingDetector(sample_detector, unit="sample").incremental

    def test_incremental_requires_capable_detector(self, sample_detector):
        with pytest.raises(ValueError, match="incremental"):
            StreamingDetector(sample_detector, unit="sample", incremental=True)

    def test_reference_path_detector_is_not_auto_incremental(self):
        from repro.detectors import MADGANDetector

        reference = MADGANDetector(use_fast_path=False)
        assert not StreamingDetector(reference, unit="window").incremental
        with pytest.raises(ValueError, match="fast-path"):
            StreamingDetector(reference, unit="window", incremental=True)

    def test_update_advances_state_once_per_tick(self, madgan, tiny_cohort):
        record = next(iter(tiny_cohort))
        features = record.features("test")[:16]
        adapter = StreamingDetector(madgan, unit="window", history=12)
        for index, sample in enumerate(features):
            verdict = adapter.update(sample)
            if index < 11:
                assert verdict.warming
            else:
                assert verdict.flagged is not None
        assert adapter.inversion_state.ticks == 16 - 11
        adapter.reset()
        assert adapter.inversion_state.ticks == 0
        assert adapter.inversion_state.latent is None

    @pytest.fixture(scope="class")
    def window_brains(self, tiny_zoo, tiny_cohort):
        from repro.detectors import GaussianHMMDetector, LSTMVAEDetector

        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        benign = windows[::4]
        return {
            "lstm_vae": LSTMVAEDetector(
                epochs=1, hidden_size=8, batch_size=16, seed=0
            ).fit(benign),
            "hmm": GaussianHMMDetector(n_states=3, n_iter=3, seed=0).fit(benign),
        }

    @pytest.mark.parametrize("name", ["lstm_vae", "hmm"])
    def test_family_auto_enables_incremental(self, window_brains, name):
        detector = window_brains[name]
        assert StreamingDetector(detector, unit="window").incremental
        assert not StreamingDetector(
            detector, unit="window", incremental=False
        ).incremental

    @pytest.mark.parametrize("name", ["lstm_vae", "hmm"])
    def test_family_threads_stream_state_per_tick(
        self, window_brains, tiny_cohort, name
    ):
        detector = window_brains[name]
        record = next(iter(tiny_cohort))
        features = record.features("test")[:16]
        adapter = StreamingDetector(detector, unit="window", history=12)
        for index, sample in enumerate(features):
            verdict = adapter.update(sample)
            if index < 11:
                assert verdict.warming
            else:
                assert verdict.flagged is not None
        assert adapter.inversion_state.ticks == 16 - 11
        adapter.reset()
        assert adapter.inversion_state.ticks == 0

    def test_scheduler_threads_states_through_batched_ticks(
        self, madgan, aggregate_zoo, tiny_cohort
    ):
        records = list(tiny_cohort)[:2]
        scheduler = StreamScheduler()
        adapters = {}
        for record in records:
            adapters[record.label] = StreamingDetector(madgan, unit="window", history=12)
            scheduler.open_session(
                record.label,
                aggregate_zoo.model_for(record.label),
                detectors={"madgan": adapters[record.label]},
            )
        traces = {record.label: record.features("test")[:15] for record in records}
        for tick in range(15):
            outcomes = scheduler.tick(
                {label: trace[tick] for label, trace in traces.items()}
            )
            for label, outcome in outcomes.items():
                verdict = outcome.verdicts["madgan"]
                assert verdict.warming == (tick < 11)
        for adapter in adapters.values():
            assert adapter.inversion_state.ticks == 15 - 11
            assert adapter.inversion_state.latent is not None


# -------------------------------------------------------------- device clocks
class TestDeviceClocks:
    def test_zero_clock_config_matches_lockstep_replay(
        self, aggregate_zoo, tiny_cohort, sample_detector
    ):
        from repro.serving import DeviceClockConfig

        reports = []
        for clocks in (None, DeviceClockConfig()):
            replayer = StreamReplayer(
                aggregate_zoo,
                detectors={"knn": (sample_detector, "sample")},
                clocks=clocks,
            )
            reports.append(replayer.replay(tiny_cohort, split="test", max_ticks=30))
        for record in tiny_cohort:
            lockstep = reports[0].sessions[record.label]
            clocked = reports[1].sessions[record.label]
            assert clocked.delivered_at == list(range(30))
            assert clocked.missed_slots == 0
            np.testing.assert_array_equal(
                lockstep.predictions(), clocked.predictions()
            )

    def test_drifting_clocks_miss_ticks_and_recover(
        self, aggregate_zoo, tiny_cohort, sample_detector
    ):
        from repro.serving import DeviceClockConfig

        replayer = StreamReplayer(
            aggregate_zoo,
            detectors={"knn": (sample_detector, "sample")},
            clocks=DeviceClockConfig(drift=0.3, jitter=0.2, dropout=0.1, seed=4),
        )
        report = replayer.replay(tiny_cohort, split="test", max_ticks=40)
        predictor = aggregate_zoo.aggregate
        history = predictor.history
        missed_anywhere = 0
        for record in tiny_cohort:
            trace = report.sessions[record.label]
            # Every sample is eventually delivered, in order.
            assert trace.n_ticks == 40
            assert trace.delivered_at == sorted(trace.delivered_at)
            missed_anywhere += trace.missed_slots
            # Missed global slots never corrupt the stream: predictions still
            # match the offline fast path on the delivered samples.
            delivered = np.stack([outcome.sample for outcome in trace.ticks])
            windows, _, _ = aggregate_zoo.dataset.windows_from_features(delivered)
            streamed = trace.predictions()[history - 1 : history - 1 + len(windows)]
            np.testing.assert_allclose(
                streamed, predictor.predict(windows), atol=TOLERANCE
            )
            offline = sample_detector.predict(delivered[:, np.newaxis, :])
            flags = [bool(outcome.verdicts["knn"].flagged) for outcome in trace.ticks]
            assert flags == [bool(flag) for flag in offline]
        assert missed_anywhere > 0  # the drift actually exercised missed ticks

    def test_heavy_dropout_still_drains_every_trace(
        self, aggregate_zoo, tiny_cohort
    ):
        # Dropout retries are geometric; the replay must keep running until
        # every device drains rather than truncating at a mean-based horizon.
        from repro.serving import DeviceClockConfig

        replayer = StreamReplayer(
            aggregate_zoo,
            clocks=DeviceClockConfig(dropout=0.6, seed=11),
        )
        report = replayer.replay(tiny_cohort, split="test", max_ticks=25)
        for record in tiny_cohort:
            trace = report.sessions[record.label]
            assert trace.n_ticks == 25
            assert trace.missed_slots > 0

    def test_invalid_clock_configs_rejected(self):
        from repro.serving import DeviceClockConfig

        with pytest.raises(ValueError):
            DeviceClockConfig(drift=1.5)
        with pytest.raises(ValueError):
            DeviceClockConfig(jitter=-0.1)
        with pytest.raises(ValueError):
            DeviceClockConfig(dropout=1.0)


# -------------------------------------------------------- attacker warm start
class TestAttackerWarmStart:
    def _replay(self, zoo, cohort, warm_start):
        label = next(iter(cohort)).label
        attacker = OnlineAttacker(
            {label: [AttackEpisode(start=20, duration=15)]},
            sustain=False,
            warm_start=warm_start,
        )
        replayer = StreamReplayer(zoo, attacker=attacker)
        replayer.replay(cohort.select([label]), split="test", max_ticks=45)
        return attacker

    def test_warm_start_reduces_query_count(self, aggregate_zoo, tiny_cohort):
        warm = self._replay(aggregate_zoo, tiny_cohort, warm_start=True)
        cold = self._replay(aggregate_zoo, tiny_cohort, warm_start=False)
        assert warm.records and cold.records
        warm_ticks = [record for record in warm.records if record.warm_started]
        assert warm_ticks, "the warm start never resolved a tick"
        assert all(record.queries == 2 for record in warm_ticks)
        assert sum(record.queries for record in warm.records) < sum(
            record.queries for record in cold.records
        )
        assert not any(record.warm_started for record in cold.records)

    def test_warm_start_preserves_tampering_effect(self, aggregate_zoo, tiny_cohort):
        warm = self._replay(aggregate_zoo, tiny_cohort, warm_start=True)
        # Warm-started ticks really tamper: the delivered CGM differs from
        # the benign one and the episode keeps reaching the goal.
        for record in warm.records:
            if record.warm_started:
                assert record.success
                assert record.delivered_cgm != record.benign_cgm


class TestSessionChurn:
    """Devices joining/leaving mid-replay (SessionChurnConfig): staggered
    joins, disconnect/reconnect segments, close-on-drain — with the drain
    guarantee (every device delivers its full trace) and scheduler slot
    recycling exercised at scale."""

    class RecordingScheduler(StreamScheduler):
        """Logs every (session id, lane slot) allocation for the assertions."""

        def __init__(self):
            super().__init__()
            self.allocations = []

        def open_session(self, *args, **kwargs):
            session = super().open_session(*args, **kwargs)
            self.allocations.append((session.session_id, session.slot))
            return session

    def test_invalid_churn_config_rejected(self):
        from repro.serving import SessionChurnConfig

        with pytest.raises(ValueError):
            SessionChurnConfig(join_stagger=-1)
        with pytest.raises(ValueError):
            SessionChurnConfig(disconnect_every=0)
        with pytest.raises(ValueError):
            SessionChurnConfig(reconnect_after=-1)

    def test_drain_guarantee_under_churn(self, aggregate_zoo, tiny_cohort):
        from repro.serving import SessionChurnConfig

        scheduler = self.RecordingScheduler()
        replayer = StreamReplayer(
            aggregate_zoo,
            scheduler=scheduler,
            churn=SessionChurnConfig(
                join_stagger=3, disconnect_every=11, reconnect_after=2
            ),
        )
        max_ticks = 40
        report = replayer.replay(tiny_cohort, split="test", max_ticks=max_ticks)
        for record in tiny_cohort:
            segments = report.segments_for(record.label)
            # Mid-trace disconnects split the device into several sessions...
            assert len(segments) == 4  # ceil(40 / 11)
            assert segments[0].session_id == record.label
            assert segments[1].session_id == f"{record.label}#1"
            # ...whose ticks concatenate to the full trace (drain guarantee).
            assert report.delivered_ticks(record.label) == max_ticks
            for segment in segments[:-1]:
                assert segment.n_ticks == 11
        # Every session was torn down; no slots leaked.
        assert scheduler.n_sessions == 0
        assert scheduler.n_lanes == 0

    def test_slots_are_recycled_across_segments(self, aggregate_zoo, tiny_cohort):
        from repro.serving import SessionChurnConfig

        scheduler = self.RecordingScheduler()
        replayer = StreamReplayer(
            aggregate_zoo,
            scheduler=scheduler,
            churn=SessionChurnConfig(
                join_stagger=2, disconnect_every=7, reconnect_after=1
            ),
        )
        replayer.replay(tiny_cohort, split="test", max_ticks=30)
        # All sessions share the aggregate model (one lane); with churn the
        # number of session segments far exceeds the number of distinct slots
        # ever allocated — freed slots were reused by later segments.
        slots = [slot for _, slot in scheduler.allocations]
        assert len(scheduler.allocations) > len(set(slots))
        reused = len(scheduler.allocations) - len(set(slots))
        assert reused >= len(list(tiny_cohort))  # at least one reuse per device

    def test_reconnected_segment_warms_up_again(self, aggregate_zoo, tiny_cohort):
        from repro.serving import SessionChurnConfig

        history = aggregate_zoo.aggregate.history
        replayer = StreamReplayer(
            aggregate_zoo,
            churn=SessionChurnConfig(disconnect_every=history + 4, reconnect_after=1),
        )
        report = replayer.replay(tiny_cohort, split="test", max_ticks=2 * history + 8)
        for record in tiny_cohort:
            segments = report.segments_for(record.label)
            assert len(segments) >= 2
            for segment in segments:
                predictions = segment.predictions()
                warmup = min(history - 1, len(predictions))
                # A fresh segment's ring restarts: its first history-1
                # predictions are NaN again.
                assert np.isnan(predictions[:warmup]).all()

    def test_churn_composes_with_device_clocks(self, aggregate_zoo, tiny_cohort):
        from repro.serving import DeviceClockConfig, SessionChurnConfig

        replayer = StreamReplayer(
            aggregate_zoo,
            clocks=DeviceClockConfig(drift=0.1, jitter=0.1, dropout=0.1, seed=3),
            churn=SessionChurnConfig(
                join_stagger=4, disconnect_every=9, reconnect_after=2
            ),
        )
        max_ticks = 30
        report = replayer.replay(tiny_cohort, split="test", max_ticks=max_ticks)
        for record in tiny_cohort:
            assert report.delivered_ticks(record.label) == max_ticks
            for segment in report.segments_for(record.label):
                # Global delivery times stay strictly increasing per device
                # segment even under jitter + dropout retries.
                deltas = np.diff(segment.delivered_at)
                assert (deltas >= 1).all()

    def test_churned_replay_scores_episodes_per_segment(self, aggregate_zoo, tiny_cohort):
        from repro.serving import SessionChurnConfig

        label = next(iter(tiny_cohort)).label
        history = aggregate_zoo.aggregate.history
        # Attack the SECOND segment of the churned device (its session id
        # carries the #1 suffix); the replay must still attribute episodes.
        attacker = OnlineAttacker(
            {f"{label}#1": [AttackEpisode(start=history, duration=6)]},
            sustain=False,
        )
        replayer = StreamReplayer(
            aggregate_zoo,
            attacker=attacker,
            churn=SessionChurnConfig(disconnect_every=20, reconnect_after=1),
        )
        report = replayer.replay(
            tiny_cohort.select([label]), split="test", max_ticks=45
        )
        second = report.sessions[f"{label}#1"]
        assert second.attacked_ticks, "the second segment was never tampered"
        assert not report.sessions[label].attacked_ticks

    def test_churnless_config_matches_plain_replay(self, aggregate_zoo, tiny_cohort):
        from repro.serving import SessionChurnConfig

        plain = StreamReplayer(aggregate_zoo).replay(
            tiny_cohort, split="test", max_ticks=25
        )
        churned = StreamReplayer(
            aggregate_zoo, churn=SessionChurnConfig()
        ).replay(tiny_cohort, split="test", max_ticks=25)
        for record in tiny_cohort:
            left = plain.sessions[record.label]
            right = churned.sessions[record.label]
            assert left.delivered_at == right.delivered_at
            np.testing.assert_array_equal(left.predictions(), right.predictions())
