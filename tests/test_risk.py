"""Tests for the risk profiling framework (severity, quantification, profiles,
clustering, selection, and the orchestrator)."""

import numpy as np
import pytest

from repro.glucose import GlucoseState, Scenario, StateTransition
from repro.risk import (
    ALL_STRATEGIES,
    HierarchicalClustering,
    PAPER_SEVERITY_TABLE,
    RiskProfile,
    RiskProfileBuilder,
    RiskProfilingFramework,
    RiskQuantifier,
    STRATEGY_ALL,
    STRATEGY_LESS_VULNERABLE,
    STRATEGY_MORE_VULNERABLE,
    STRATEGY_RANDOM,
    SelectionPlanner,
    SeverityMatrix,
    cluster_profiles,
    pairwise_euclidean,
    profile_matrix,
)
from repro.attacks import AttackCampaign


class TestSeverityMatrix:
    def test_paper_table_values(self):
        matrix = SeverityMatrix.paper_exponential()
        assert matrix.coefficient_for(GlucoseState.HYPO, GlucoseState.HYPER) == 64.0
        assert matrix.coefficient_for(GlucoseState.NORMAL, GlucoseState.HYPER) == 32.0
        assert matrix.coefficient_for(GlucoseState.HYPO, GlucoseState.NORMAL) == 16.0
        assert matrix.coefficient_for(GlucoseState.HYPER, GlucoseState.HYPO) == 8.0
        assert matrix.coefficient_for(GlucoseState.HYPER, GlucoseState.NORMAL) == 4.0
        assert matrix.coefficient_for(GlucoseState.NORMAL, GlucoseState.HYPO) == 2.0

    def test_same_state_severity(self):
        matrix = SeverityMatrix()
        assert matrix.coefficient_for(GlucoseState.NORMAL, GlucoseState.NORMAL) == 1.0

    def test_worst_transition_is_hypo_to_hyper(self):
        rows = SeverityMatrix().as_rows()
        assert rows[0] == ("hypo", "hyper", 64.0)

    def test_linear_and_uniform_variants(self):
        linear = SeverityMatrix.linear()
        uniform = SeverityMatrix.uniform()
        assert linear.coefficient_for(GlucoseState.HYPO, GlucoseState.HYPER) == 6.0
        assert uniform.coefficient_for(GlucoseState.HYPO, GlucoseState.HYPER) == 1.0

    def test_negative_severity_rejected(self):
        with pytest.raises(ValueError):
            SeverityMatrix(table={(GlucoseState.HYPO, GlucoseState.HYPER): -1.0})

    def test_paper_table_has_six_transitions(self):
        assert len(PAPER_SEVERITY_TABLE) == 6


class TestRiskQuantifier:
    def test_magnitude_is_squared_deviation(self):
        assert RiskQuantifier().magnitude(100.0, 130.0) == pytest.approx(900.0)

    def test_risk_formula_matches_equation_one(self):
        quantifier = RiskQuantifier()
        # normal -> hyper transition: S = 32, Z = (110 - 210)^2 = 10000.
        assert quantifier.risk_of(110.0, 210.0, Scenario.POSTPRANDIAL) == pytest.approx(320_000.0)

    def test_worst_case_transition_weighs_most(self):
        quantifier = RiskQuantifier()
        hypo_to_hyper = quantifier.risk_of(60.0, 210.0, Scenario.POSTPRANDIAL)
        normal_to_hyper = quantifier.risk_of(110.0, 260.0, Scenario.POSTPRANDIAL)
        # identical magnitude (150^2) but different severities: 64 vs 32.
        assert hypo_to_hyper == pytest.approx(2.0 * normal_to_hyper)

    def test_no_transition_uses_low_severity(self):
        quantifier = RiskQuantifier()
        assert quantifier.risk_of(100.0, 120.0, Scenario.POSTPRANDIAL) == pytest.approx(400.0)

    def test_campaign_records_sorted_by_time(self, tiny_train_campaign):
        quantifier = RiskQuantifier()
        records = tiny_train_campaign.for_patient("A_5")
        samples = quantifier.from_records(records)
        indices = [sample.target_index for sample in samples]
        assert indices == sorted(indices)

    def test_ineligible_records_have_zero_risk(self, tiny_train_campaign):
        quantifier = RiskQuantifier()
        for record in tiny_train_campaign.for_patient("A_2"):
            sample = quantifier.from_attack_result(record.result, record.target_index)
            if not record.result.eligible:
                assert sample.risk == 0.0


class TestRiskProfiles:
    def test_builder_creates_profile_per_patient(self, tiny_train_campaign):
        profiles = RiskProfileBuilder().from_campaign(tiny_train_campaign)
        assert set(profiles) == set(tiny_train_campaign.patient_labels)
        for profile in profiles.values():
            assert len(profile) > 0
            assert np.all(profile.risks >= 0.0)

    def test_less_vulnerable_patient_risk_differs_from_more_vulnerable(self, tiny_train_campaign):
        profiles = RiskProfileBuilder().from_campaign(tiny_train_campaign)
        assert profiles["A_5"].mean_risk != pytest.approx(profiles["A_2"].mean_risk)

    def test_profile_resampling_and_features(self):
        profile = RiskProfile("X", np.arange(10), np.linspace(0, 100, 10))
        assert len(profile.resampled(32)) == 32
        assert profile.feature_vector().shape == (6,)
        assert profile.peak_risk == 100.0

    def test_profile_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RiskProfile("X", np.arange(3), np.arange(4))

    def test_profile_matrix_shapes(self, tiny_train_campaign):
        profiles = RiskProfileBuilder().from_campaign(tiny_train_campaign)
        labels, matrix = profile_matrix(profiles, length=16)
        assert matrix.shape == (len(profiles), 16)
        assert labels == sorted(profiles)

    def test_profile_matrix_summary_representation(self, tiny_train_campaign):
        profiles = RiskProfileBuilder().from_campaign(tiny_train_campaign)
        _, matrix = profile_matrix(profiles, representation="summary")
        assert matrix.shape == (len(profiles), 6)

    def test_profile_matrix_invalid_representation(self, tiny_train_campaign):
        profiles = RiskProfileBuilder().from_campaign(tiny_train_campaign)
        with pytest.raises(ValueError):
            profile_matrix(profiles, representation="wavelet")


class TestHierarchicalClustering:
    def _two_blob_matrix(self):
        rng = np.random.default_rng(0)
        low = rng.normal(0.0, 0.3, size=(4, 3))
        high = rng.normal(8.0, 0.3, size=(3, 3))
        return np.vstack([low, high])

    def test_pairwise_euclidean_symmetric_zero_diagonal(self):
        matrix = self._two_blob_matrix()
        distances = pairwise_euclidean(matrix)
        np.testing.assert_allclose(distances, distances.T)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-12)

    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_two_clusters_recovered(self, linkage):
        matrix = self._two_blob_matrix()
        model = HierarchicalClustering(linkage=linkage).fit(matrix)
        labels = model.cut(2)
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        assert labels[0] != labels[-1]

    def test_largest_gap_cut_finds_two_blobs(self):
        model = HierarchicalClustering().fit(self._two_blob_matrix())
        labels = model.cut_by_largest_gap()
        assert len(set(labels.tolist())) == 2

    def test_linkage_matrix_shape(self):
        matrix = self._two_blob_matrix()
        model = HierarchicalClustering().fit(matrix)
        assert model.linkage_matrix().shape == (6, 4)

    def test_merge_distances_monotone_for_average_linkage(self):
        model = HierarchicalClustering(linkage="average").fit(self._two_blob_matrix())
        distances = [merge.distance for merge in model.merges_]
        assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))

    def test_cut_bounds_validated(self):
        model = HierarchicalClustering().fit(self._two_blob_matrix())
        with pytest.raises(ValueError):
            model.cut(0)

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalClustering(linkage="median")

    def test_requires_fit_before_cut(self):
        with pytest.raises(RuntimeError):
            HierarchicalClustering().cut(2)

    def test_dendrogram_render_contains_labels(self):
        matrix = self._two_blob_matrix()
        labels = [f"p{i}" for i in range(len(matrix))]
        outcome = cluster_profiles(labels, matrix, n_clusters=2)
        text = outcome.model.render_dendrogram(labels)
        for label in labels:
            assert label in text

    def test_cluster_profiles_outcome_members(self):
        matrix = self._two_blob_matrix()
        labels = [f"p{i}" for i in range(len(matrix))]
        outcome = cluster_profiles(labels, matrix, n_clusters=2)
        assert outcome.n_clusters == 2
        member_union = set(outcome.members(0)) | set(outcome.members(1))
        assert member_union == set(labels)


class TestSelectionPlanner:
    def _planner(self, **kwargs):
        labels = [f"A_{i}" for i in range(6)] + [f"B_{i}" for i in range(6)]
        return SelectionPlanner(labels, ["A_5", "B_1", "B_2"], random_runs=5, seed=0, **kwargs)

    def test_plan_contains_all_strategies(self):
        plan = self._planner().plan()
        assert set(plan) == set(ALL_STRATEGIES)

    def test_less_vulnerable_selection(self):
        selection = self._planner().plan()[STRATEGY_LESS_VULNERABLE]
        assert selection.runs == [["A_5", "B_1", "B_2"]]

    def test_more_vulnerable_is_complement(self):
        planner = self._planner()
        more = set(planner.plan()[STRATEGY_MORE_VULNERABLE].runs[0])
        assert more == set(planner.all_labels) - {"A_5", "B_1", "B_2"}

    def test_all_patients_selection(self):
        selection = self._planner().plan()[STRATEGY_ALL]
        assert len(selection.runs[0]) == 12

    def test_random_selection_runs_and_sizes(self):
        selection = self._planner().plan()[STRATEGY_RANDOM]
        assert selection.n_runs == 5
        for run in selection.runs:
            assert len(run) == 3
            assert len(set(run)) == 3

    def test_random_selection_reproducible(self):
        first = self._planner().random_selection().runs
        second = self._planner().random_selection().runs
        assert first == second

    def test_training_set_reduction_matches_paper(self):
        assert self._planner().training_set_reduction() == pytest.approx(0.75)

    def test_unknown_less_vulnerable_label_rejected(self):
        with pytest.raises(ValueError):
            SelectionPlanner(["A_0"], ["Z_9"])

    def test_all_less_vulnerable_rejected(self):
        with pytest.raises(ValueError):
            SelectionPlanner(["A_0", "A_1"], ["A_0", "A_1"])


class TestFrameworkEndToEnd:
    @pytest.fixture(scope="class")
    def assessment(self, tiny_zoo, tiny_cohort):
        framework = RiskProfilingFramework(
            tiny_zoo, campaign=AttackCampaign(tiny_zoo, stride=8), n_clusters=2
        )
        return framework.assess(tiny_cohort, split="train")

    def test_assessment_partitions_cohort(self, assessment, tiny_cohort):
        less = set(assessment.less_vulnerable)
        more = set(assessment.more_vulnerable)
        assert less | more == set(tiny_cohort.labels)
        assert not less & more
        assert less and more

    def test_less_vulnerable_cluster_has_lower_success_rate(self, assessment):
        rates = assessment.cluster_success_rates
        valid = {index: rate for index, rate in rates.items() if not np.isnan(rate)}
        if len(valid) == 2:
            less_cluster = assessment.cluster_of(assessment.less_vulnerable[0])
            other = next(index for index in valid if index != less_cluster)
            assert valid[less_cluster] <= valid[other]

    def test_profiles_exist_for_every_patient(self, assessment, tiny_cohort):
        assert set(assessment.profiles) == set(tiny_cohort.labels)

    def test_well_controlled_patient_in_less_vulnerable_group(self, assessment):
        assert ("A_5" in assessment.less_vulnerable) or ("B_2" in assessment.less_vulnerable)

    def test_selection_planner_from_assessment(self, assessment, tiny_zoo):
        framework = RiskProfilingFramework(tiny_zoo)
        planner = framework.selection_planner(assessment, random_runs=2, seed=1)
        plan = planner.plan()
        assert set(plan) == set(ALL_STRATEGIES)
