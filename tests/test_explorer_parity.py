"""Attack-parity harness: every lockstep ``search_batch`` is pinned to the
sequential per-window ``search`` reference — same windows, same scores, same
query counts — across explorers, seeds, strides, expansion modes, and
eligibility mixes."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.attacks import (
    BeamExplorer,
    EvasionAttack,
    GreedyExplorer,
    RandomExplorer,
    constraint_for_scenario,
    default_transformers,
)
from repro.data.cohort import CGM_COLUMN
from repro.glucose import Scenario

SEEDS = (0, 7, 42)

EXPLORERS = {
    "greedy": lambda seed: GreedyExplorer(max_depth=3),
    "beam": lambda seed: BeamExplorer(beam_width=2, max_depth=2),
    "random": lambda seed: RandomExplorer(max_depth=2, n_walks=4, seed=seed),
}


def benign_window(level: float, history: int = 12) -> np.ndarray:
    window = np.zeros((history, 4))
    window[:, CGM_COLUMN] = level
    window[:, 1] = 0.5
    window[:, 3] = 70.0
    return window


def score_function(batch: np.ndarray) -> np.ndarray:
    """Deterministic stub: rewards a high CGM suffix with a mild tie-breaker."""
    batch = np.asarray(batch, dtype=np.float64)
    return batch[:, -1, CGM_COLUMN] - 0.01 * batch[:, -4, CGM_COLUMN]


def assert_explorations_equal(left, right):
    assert left.success == right.success
    assert left.queries == right.queries
    assert left.path == right.path
    assert left.score == right.score
    np.testing.assert_array_equal(left.window, right.window)


def assert_attack_results_equal(left, right):
    assert left.eligible == right.eligible
    assert left.success == right.success
    assert left.benign_state == right.benign_state
    assert left.adversarial_state == right.adversarial_state
    assert left.path == right.path
    assert left.queries == right.queries
    np.testing.assert_array_equal(left.benign_window, right.benign_window)
    np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
    assert left.benign_prediction == pytest.approx(right.benign_prediction, abs=1e-10)
    assert left.adversarial_prediction == pytest.approx(
        right.adversarial_prediction, abs=1e-10
    )


def seeded_levels(seed: int, count: int = 7) -> list:
    """A seed-dependent spread of starting CGM levels (low, mid, near-goal)."""
    rng = np.random.default_rng(seed)
    return list(rng.uniform(60.0, 230.0, size=count))


class TestExplorerLevelParity:
    """search_batch vs per-window search, directly at the explorer interface."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    @pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "per-edge"])
    def test_search_batch_matches_search(self, name, seed, vectorized):
        levels = seeded_levels(seed)
        windows = [benign_window(level) for level in levels]
        transformers = default_transformers()
        constraints = [
            constraint_for_scenario(Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING)
            for index in range(len(levels))
        ]
        goals = [
            (lambda window, score, threshold=200.0 + 15.0 * index: score > threshold)
            for index in range(len(levels))
        ]
        initial = [float(score_function(window[np.newaxis])[0]) for window in windows]

        sequential_explorer = EXPLORERS[name](seed)
        sequential = [
            sequential_explorer.search(
                windows[index],
                transformers,
                constraints[index],
                score_function,
                goals[index],
                initial_score=initial[index],
            )
            for index in range(len(windows))
        ]
        batched_explorer = EXPLORERS[name](seed)
        batched_explorer.use_batched_candidates = vectorized
        batched = batched_explorer.search_batch(
            windows, transformers, constraints, score_function, goals, initial_scores=initial
        )
        assert len(batched) == len(sequential)
        for left, right in zip(batched, sequential):
            assert_explorations_equal(left, right)

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_search_batch_without_initial_scores(self, name):
        windows = [benign_window(level) for level in (100.0, 150.0)]
        transformers = default_transformers()
        constraints = [constraint_for_scenario(Scenario.POSTPRANDIAL)] * 2
        goals = [lambda window, score: score > 240.0] * 2
        sequential_explorer = EXPLORERS[name](5)
        sequential = [
            sequential_explorer.search(
                window, transformers, constraints[0], score_function, goals[0]
            )
            for window in windows
        ]
        batched_explorer = EXPLORERS[name](5)
        batched = batched_explorer.search_batch(
            windows, transformers, constraints, score_function, goals
        )
        for left, right in zip(batched, sequential):
            assert_explorations_equal(left, right)

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_single_window_batch(self, name):
        window = benign_window(120.0)
        transformers = default_transformers()
        constraint = constraint_for_scenario(Scenario.POSTPRANDIAL)
        goal = lambda w, s: s > 230.0  # noqa: E731
        initial = float(score_function(window[np.newaxis])[0])
        sequential = EXPLORERS[name](1).search(
            window, transformers, constraint, score_function, goal, initial_score=initial
        )
        batched = EXPLORERS[name](1).search_batch(
            [window], transformers, [constraint], score_function, [goal],
            initial_scores=[initial],
        )
        assert len(batched) == 1
        assert_explorations_equal(batched[0], sequential)

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_empty_batch(self, name):
        assert (
            EXPLORERS[name](0).search_batch(
                [], default_transformers(), [], score_function, []
            )
            == []
        )

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_transformer_with_empty_edge_set(self, name):
        # A contract-compliant transformer may emit no edges for a window
        # shape; the vectorized expansion must match the per-edge reference
        # (which simply contributes nothing) instead of crashing.
        from repro.attacks import SuffixLevelTransformer, Transformer

        class EmptyTransformer(Transformer):
            def candidates(self, window):
                return []

        windows = [benign_window(level) for level in (100.0, 140.0)]
        transformers = [EmptyTransformer(), SuffixLevelTransformer(levels=(260.0,))]
        constraints = [constraint_for_scenario(Scenario.POSTPRANDIAL)] * 2
        goals = [lambda window, score: score > 230.0] * 2
        initial = [float(score_function(window[np.newaxis])[0]) for window in windows]
        sequential_explorer = EXPLORERS[name](4)
        sequential = [
            sequential_explorer.search(
                window, transformers, constraints[0], score_function, goals[0],
                initial_score=start,
            )
            for window, start in zip(windows, initial)
        ]
        batched = EXPLORERS[name](4).search_batch(
            windows, transformers, constraints, score_function, goals,
            initial_scores=initial,
        )
        for left, right in zip(batched, sequential):
            assert_explorations_equal(left, right)

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_batch_where_every_window_starts_at_goal(self, name):
        # All goals already satisfied: no model queries beyond the handed-over
        # initial scores, and one immediate success per window.
        windows = [benign_window(level) for level in (300.0, 400.0, 350.0)]
        initial = [float(score_function(window[np.newaxis])[0]) for window in windows]
        results = EXPLORERS[name](2).search_batch(
            windows,
            default_transformers(),
            [constraint_for_scenario(Scenario.POSTPRANDIAL)] * 3,
            score_function,
            [lambda window, score: score > 200.0] * 3,
            initial_scores=initial,
        )
        for result, window in zip(results, windows):
            assert result.success
            assert result.queries == 0
            assert result.path == []
            np.testing.assert_array_equal(result.window, window)


class TestAttackLevelParity:
    """attack_batch parity, including the eligibility screen, on stub scores."""

    class _LastValuePredictor:
        def predict(self, windows):
            return np.asarray(windows, dtype=np.float64)[:, -1, CGM_COLUMN]

        def predict_one(self, window):
            return float(self.predict(np.asarray(window)[np.newaxis])[0])

    def _compare(self, explorer_factory, levels):
        windows = np.stack([benign_window(level) for level in levels])
        scenarios = [
            Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING
            for index in range(len(levels))
        ]
        batched = EvasionAttack(
            self._LastValuePredictor(), explorer=explorer_factory()
        ).attack_batch(windows, scenarios, batched=True)
        sequential = EvasionAttack(
            self._LastValuePredictor(), explorer=explorer_factory()
        ).attack_batch(windows, scenarios, batched=False)
        assert len(batched) == len(sequential) == len(levels)
        for left, right in zip(batched, sequential):
            assert_attack_results_equal(left, right)
        return batched

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_mixed_eligibility_batch(self, name, seed):
        # Even indices run the fasting scenario (hyper above 125), odd indices
        # postprandial (hyper above 180): 250/400/150 start hyperglycemic
        # (ineligible), the rest are attackable.
        levels = (95.0, 250.0, 110.0, 400.0, 150.0, 175.0)
        results = self._compare(lambda: EXPLORERS[name](seed), levels)
        assert [result.eligible for result in results] == [
            True, False, True, False, False, True,
        ]

    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_all_ineligible_batch(self, name):
        levels = (260.0, 400.0, 310.0)
        results = self._compare(lambda: EXPLORERS[name](0), levels)
        assert all(not result.eligible for result in results)
        assert all(result.queries == 1 for result in results)


class TestRealPredictorParity:
    """Parity through the trained forecaster, across strides."""

    @pytest.mark.parametrize("stride", [5, 9])
    @pytest.mark.parametrize("name", sorted(EXPLORERS))
    def test_strided_windows_match(self, name, stride, tiny_zoo, tiny_cohort):
        record = next(r for r in tiny_cohort if r.label == "A_0")
        predictor = tiny_zoo.model_for(record.label)
        windows, _, _ = tiny_zoo.dataset.from_record(record, "test")
        windows = windows[::stride][:6]
        scenarios = [Scenario.POSTPRANDIAL] * len(windows)
        batched = EvasionAttack(predictor, explorer=EXPLORERS[name](3)).attack_batch(
            windows, scenarios, batched=True
        )
        sequential = EvasionAttack(predictor, explorer=EXPLORERS[name](3)).attack_batch(
            windows, scenarios, batched=False
        )
        for left, right in zip(batched, sequential):
            assert_attack_results_equal(left, right)


class TestCheckParityScript:
    """Wire scripts/check_parity.py into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_run_checks_passes_on_trained_zoo(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_checks(tiny_zoo, tiny_cohort, seeds=(0, 1, 2), stride=12)
        assert report["max_prediction_gap"] <= check_parity.PREDICTION_TOLERANCE
        for name in ("greedy", "beam", "random"):
            assert set(report[name]) == {0, 1, 2}
