"""Tests for the autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, ones, stack, zeros


def numerical_gradient(function, value: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    gradient = np.zeros_like(value)
    flat = value.reshape(-1)
    gradient_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(value)
        flat[index] = original - epsilon
        lower = function(value)
        flat[index] = original
        gradient_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


def check_gradient(op, shape=(3, 4), seed=0, atol=1e-5):
    """Compare autograd and numerical gradients for a unary tensor op."""
    rng = np.random.default_rng(seed)
    value = rng.uniform(0.2, 1.5, size=shape)

    tensor = Tensor(value.copy(), requires_grad=True)
    output = op(tensor).sum()
    output.backward()
    numerical = numerical_gradient(lambda array: op(Tensor(array)).sum().item(), value.copy())
    np.testing.assert_allclose(tensor.grad, numerical, atol=atol)


class TestBasicOps:
    def test_addition_values(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(result.numpy(), [4.0, 6.0])

    def test_scalar_addition(self):
        np.testing.assert_array_equal((Tensor([1.0]) + 2.0).numpy(), [3.0])
        np.testing.assert_array_equal((2.0 + Tensor([1.0])).numpy(), [3.0])

    def test_subtraction_and_negation(self):
        np.testing.assert_array_equal((Tensor([3.0]) - 1.0).numpy(), [2.0])
        np.testing.assert_array_equal((1.0 - Tensor([3.0])).numpy(), [-2.0])

    def test_multiplication_gradients(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [5.0, 7.0])
        np.testing.assert_array_equal(b.grad, [2.0, 3.0])

    def test_division_gradient(self):
        check_gradient(lambda t: t / 2.0)
        check_gradient(lambda t: 2.0 / t)

    def test_power_gradient(self):
        check_gradient(lambda t: t**3)

    def test_matmul_values_and_gradient(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        result = a @ b
        np.testing.assert_array_equal(result.numpy(), [[11.0]])
        result.sum().backward()
        np.testing.assert_array_equal(a.grad, [[3.0, 4.0]])
        np.testing.assert_array_equal(b.grad, [[1.0], [2.0]])

    def test_broadcast_add_gradient_reduction(self):
        a = Tensor(np.zeros((4, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (a + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, [4.0, 4.0, 4.0])

    def test_backward_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0], requires_grad=True).backward()

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * 3.0) + (a * 4.0)).sum().backward()
        np.testing.assert_array_equal(a.grad, [7.0])

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        detached = (a * 2.0).detach()
        assert not detached.requires_grad


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp(),
            lambda t: t.log(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.relu(),
            lambda t: t.leaky_relu(0.1),
            lambda t: t.sqrt(),
            lambda t: t.abs(),
        ],
        ids=["exp", "log", "tanh", "sigmoid", "relu", "leaky_relu", "sqrt", "abs"],
    )
    def test_gradients_match_numerical(self, op):
        check_gradient(op)

    def test_clip_gradient_masks_out_of_range(self):
        tensor = Tensor([0.5, 2.0, -1.0], requires_grad=True)
        tensor.clip(0.0, 1.0).sum().backward()
        np.testing.assert_array_equal(tensor.grad, [1.0, 0.0, 0.0])

    def test_sigmoid_saturation_is_stable(self):
        values = Tensor([1000.0, -1000.0]).sigmoid().numpy()
        assert np.all(np.isfinite(values))


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self):
        check_gradient(lambda t: t.sum(axis=0))

    def test_mean_value(self):
        assert Tensor([[1.0, 3.0]]).mean().item() == 2.0

    def test_mean_gradient(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        tensor.mean().backward()
        np.testing.assert_allclose(tensor.grad, 0.25)

    def test_reshape_gradient_shape(self):
        tensor = Tensor(np.arange(6.0), requires_grad=True)
        tensor.reshape(2, 3).sum().backward()
        assert tensor.grad.shape == (6,)

    def test_transpose_values(self):
        tensor = Tensor(np.arange(6.0).reshape(2, 3))
        assert tensor.T.shape == (3, 2)

    def test_getitem_gradient_routing(self):
        tensor = Tensor(np.arange(5.0), requires_grad=True)
        tensor[1:3].sum().backward()
        np.testing.assert_array_equal(tensor.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_concatenate_values_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        joined = concatenate([a, b], axis=1)
        assert joined.shape == (2, 5)
        joined.sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)
        np.testing.assert_allclose(b.grad, 1.0)

    def test_stack_values_and_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        (stacked * Tensor([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(b.grad, [4.0, 5.0, 6.0])


class TestHelpers:
    def test_zeros_and_ones(self):
        assert zeros((2, 2)).numpy().sum() == 0.0
        assert ones((2, 2)).numpy().sum() == 4.0

    def test_as_tensor_passthrough(self):
        tensor = Tensor([1.0])
        assert as_tensor(tensor) is tensor

    def test_as_tensor_wraps_arrays(self):
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_chained_expression_gradient(self):
        def expression(t):
            return ((t * 2.0 + 1.0).tanh() * t.sigmoid()).sum()

        check_gradient(lambda t: expression(t), shape=(2, 3))
