"""Tests for LSTM / BiLSTM layers, including a gradient check and training."""

import numpy as np
import pytest

from repro.nn import Adam, BiLSTM, Dense, LSTM, LSTMCell, Sequential, Tensor, mse_loss


class TestLSTMCell:
    def test_output_shapes(self):
        cell = LSTMCell(3, 5, seed=0)
        hidden, cell_state = cell.initial_state(2)
        new_hidden, new_cell = cell(Tensor(np.zeros((2, 3))), (hidden, cell_state))
        assert new_hidden.shape == (2, 5)
        assert new_cell.shape == (2, 5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 5)

    def test_forget_bias_initialised_positive(self):
        cell = LSTMCell(2, 4, seed=0, forget_bias=1.0)
        assert np.all(cell.bias.data[4:8] == 1.0)

    def test_state_changes_with_input(self):
        cell = LSTMCell(2, 3, seed=0)
        state = cell.initial_state(1)
        out_zero, _ = cell(Tensor(np.zeros((1, 2))), state)
        out_one, _ = cell(Tensor(np.ones((1, 2))), state)
        assert not np.allclose(out_zero.numpy(), out_one.numpy())


class TestLSTM:
    def test_last_hidden_shape(self):
        layer = LSTM(3, 6, seed=0)
        output = layer(Tensor(np.zeros((4, 7, 3))))
        assert output.shape == (4, 6)

    def test_sequence_output_shape(self):
        layer = LSTM(3, 6, return_sequences=True, seed=0)
        output = layer(Tensor(np.zeros((4, 7, 3))))
        assert output.shape == (4, 7, 6)

    def test_rejects_non_3d_input(self):
        layer = LSTM(3, 6, seed=0)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((4, 3))))

    def test_reverse_processes_in_opposite_order(self):
        layer = LSTM(1, 4, seed=0)
        reversed_layer = LSTM(1, 4, reverse=True, seed=0)
        reversed_layer.cell.load_state_dict(layer.cell.state_dict())
        sequence = np.arange(6.0).reshape(1, 6, 1)
        forward_last = layer(Tensor(sequence)).numpy()
        backward_last = reversed_layer(Tensor(sequence[:, ::-1, :].copy())).numpy()
        np.testing.assert_allclose(forward_last, backward_last, atol=1e-12)

    def test_gradient_flows_to_input(self):
        layer = LSTM(2, 3, seed=0)
        inputs = Tensor(np.random.default_rng(0).normal(size=(2, 5, 2)), requires_grad=True)
        layer(inputs).sum().backward()
        assert inputs.grad is not None
        assert np.any(inputs.grad != 0.0)

    def test_gradient_matches_numerical_for_small_lstm(self):
        rng = np.random.default_rng(1)
        layer = LSTM(1, 2, seed=3)
        inputs = rng.normal(size=(1, 3, 1))
        parameter = layer.cell.weight_input

        def loss_for(weight_values):
            parameter.data = weight_values
            return layer(Tensor(inputs)).sum().item()

        base = parameter.data.copy()
        layer.zero_grad()
        output = layer(Tensor(inputs)).sum()
        output.backward()
        analytic = parameter.grad.copy()

        numerical = np.zeros_like(base)
        epsilon = 1e-6
        for index in np.ndindex(base.shape):
            perturbed = base.copy()
            perturbed[index] += epsilon
            upper = loss_for(perturbed)
            perturbed[index] -= 2 * epsilon
            lower = loss_for(perturbed)
            numerical[index] = (upper - lower) / (2 * epsilon)
        parameter.data = base
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)


class TestBiLSTM:
    def test_output_concatenates_directions(self):
        layer = BiLSTM(3, 5, seed=0)
        output = layer(Tensor(np.zeros((2, 6, 3))))
        assert output.shape == (2, 10)
        assert layer.output_size == 10

    def test_sequence_mode(self):
        layer = BiLSTM(3, 5, return_sequences=True, seed=0)
        output = layer(Tensor(np.zeros((2, 6, 3))))
        assert output.shape == (2, 6, 10)

    def test_directions_have_distinct_weights(self):
        layer = BiLSTM(2, 3, seed=0)
        forward = layer.forward_layer.cell.weight_input.data
        backward = layer.backward_layer.cell.weight_input.data
        assert not np.allclose(forward, backward)

    def test_bilstm_regression_learns(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(48, 5, 2))
        targets = inputs.mean(axis=(1, 2), keepdims=False).reshape(-1, 1)
        model = Sequential(BiLSTM(2, 6, seed=1), Dense(12, 1, seed=2))
        optimizer = Adam(model.parameters(), learning_rate=0.02)
        first_loss = None
        for _ in range(40):
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.2
