"""Telemetry spine: registry semantics, merge determinism, and inertness.

Pins the contracts of :mod:`repro.obs`:

* counter/gauge/histogram bookkeeping with labeled series and fixed bucket
  edges; the wall-clock channel stays out of every snapshot,
* registry merging is commutative and associative — absorbing worker
  snapshots in any order yields bitwise-identical series,
* an attached :class:`~repro.obs.Observer` never perturbs scheduler results
  (the inertness contract), and the sharded fabric's merged metrics equal
  the single-process scheduler's bitwise at 1/2/4 shards,
* health transitions carry the device-clock slot (``delivered_at``) and
  backoff depth the scheduler threads through ``tick(..., now=)``.
"""

import json
import random

import pytest

from repro.detectors import KNNDistanceDetector, StreamingDetector
from repro.obs import (
    DEFAULT_BUCKET_EDGES,
    MetricsRegistry,
    Observer,
    Timer,
    render_key,
    series_key,
)
from repro.serving import (
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    ShardedScheduler,
    StreamScheduler,
)
from repro.serving.health import HealthState, SessionHealth


@pytest.fixture(scope="module")
def knn_detector(tiny_zoo, tiny_cohort):
    train_windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
    return KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])


def drive(scheduler, zoo, cohort, detector, n_ticks=30, now_offset=None):
    """Open one session per patient, tick the fleet, collect outcomes."""
    records = list(cohort)
    streams = {record.label: record.features("test")[:n_ticks] for record in records}
    for record in records:
        scheduler.open_session(
            record.label,
            zoo.model_for(record.label),
            detectors={
                "knn": StreamingDetector(detector, unit="sample", include_scores=True)
            },
        )
    outs = {record.label: [] for record in records}
    for tick in range(n_ticks):
        samples = {record.label: streams[record.label][tick] for record in records}
        now = None if now_offset is None else now_offset + tick
        for session_id, outcome in scheduler.tick(samples, now=now).items():
            outs[session_id].append(
                (
                    outcome.tick,
                    outcome.sample.tobytes(),
                    outcome.prediction,
                    {
                        name: (v.warming, v.flagged, v.score, v.degraded)
                        for name, v in outcome.verdicts.items()
                    },
                )
            )
    for record in records:
        scheduler.close_session(record.label)
    return outs


class TestMetricsRegistry:
    def test_labeled_counters(self):
        registry = MetricsRegistry()
        registry.inc("ticks_total", lane="a")
        registry.inc("ticks_total", 2, lane="a")
        registry.inc("ticks_total", lane="b")
        assert registry.counter_value("ticks_total", lane="a") == 3.0
        assert registry.counter_value("ticks_total", lane="b") == 1.0
        assert registry.counter_total("ticks_total") == 4.0
        key = series_key("ticks_total", {"lane": "a"})
        assert render_key(key) == "ticks_total{lane=a}"

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        for value in (1, 2, 3, 1024, 5000):
            registry.observe("batch", value)
        snapshot = registry.snapshot()
        hist = snapshot["histograms"][series_key("batch", {})]
        assert hist["edges"] == DEFAULT_BUCKET_EDGES
        assert hist["count"] == 5
        assert hist["sum"] == 1 + 2 + 3 + 1024 + 5000
        # values above the last edge land in the overflow bucket
        assert sum(hist["counts"]) == 5
        assert hist["counts"][-1] == 1

    def test_snapshot_excludes_wall_clock(self):
        registry = MetricsRegistry()
        registry.inc("a_total")
        registry.observe_seconds("tick_seconds", 0.25)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        names = {key[0] for section in snapshot.values() for key in section}
        assert "tick_seconds" not in names
        assert registry.timings()[series_key("tick_seconds", {})]["count"] == 1

    def test_merge_is_permutation_invariant(self):
        def make(seed):
            registry = MetricsRegistry()
            rng = random.Random(seed)
            for _ in range(40):
                registry.inc("ticks_total", rng.randint(1, 5), lane=rng.choice("abc"))
                registry.observe("batch", rng.randint(1, 300), lane=rng.choice("ab"))
                registry.set_gauge("depth", rng.randint(0, 9), shard=str(seed))
            return registry

        snapshots = [make(seed).snapshot() for seed in range(5)]
        reference = MetricsRegistry.merge(snapshots)
        for seed in range(10):
            shuffled = list(snapshots)
            random.Random(seed).shuffle(shuffled)
            assert MetricsRegistry.merge(shuffled) == reference

    def test_absorb_accumulates_into_existing_series(self):
        left = MetricsRegistry()
        left.inc("ticks_total", 2, lane="a")
        left.observe("batch", 3)
        right = MetricsRegistry()
        right.inc("ticks_total", 5, lane="a")
        right.observe("batch", 7)
        left.absorb(right.snapshot())
        assert left.counter_value("ticks_total", lane="a") == 7.0
        hist = left.snapshot()["histograms"][series_key("batch", {})]
        assert hist["count"] == 2 and hist["sum"] == 10

    def test_absorb_rejects_mismatched_edges(self):
        left = MetricsRegistry()
        left.declare_histogram("batch", edges=(1.0, 2.0))
        left.observe("batch", 1)
        right = MetricsRegistry()
        right.observe("batch", 1)
        with pytest.raises(ValueError):
            left.absorb(right.snapshot())


class TestTimer:
    def test_laps_and_best(self):
        timer = Timer()
        for _ in range(3):
            with timer.lap():
                pass
        assert timer.count == 3
        assert timer.best <= timer.mean <= timer.total
        assert timer.last == timer.laps[-1]
        timer.reset()
        assert timer.count == 0

    def test_best_of_returns_last_result(self):
        calls = []
        best, result = Timer.best_of(4, lambda x: calls.append(x) or len(calls), 1)
        assert result == 4 and len(calls) == 4
        assert best >= 0.0
        with pytest.raises(ValueError):
            Timer.best_of(0, lambda: None)


class TestObserver:
    def test_span_emission_and_drain(self):
        observer = Observer()
        observer.registry.inc("ticks_total")
        with observer.span("lane_step", tick=3, lane="a", batch=4):
            pass
        observer.emit_span("merge", tick=3, results=2)
        observer.event("worker_death", shard=1)
        payload = observer.drain()
        assert [span.stage for span in payload["spans"]] == ["lane_step", "merge"]
        assert payload["events"][0].kind == "worker_death"
        assert not observer.spans and not observer.events  # trace drained
        assert observer.registry.counter_total("ticks_total") == 1.0  # cumulative

    def test_ingest_trace_stamps_shard(self):
        worker = Observer()
        worker.emit_span("lane_step", tick=1, lane="a")
        worker.event("lane_failure", lane="a")
        payload = worker.drain()
        parent = Observer()
        parent.ingest_trace(payload["spans"], payload["events"], shard=2)
        assert parent.spans[0].shard == 2
        assert parent.events[0].shard == 2

    def test_span_overflow_counts_drops(self):
        observer = Observer(max_spans=2)
        for tick in range(4):
            observer.emit_span("merge", tick=tick)
        assert len(observer.spans) == 2
        assert observer.registry.counter_total("obs.spans_dropped_total") == 2.0

    def test_export_jsonl_roundtrip(self, tmp_path):
        observer = Observer()
        observer.registry.inc("ticks_total", lane="a")
        observer.registry.set_gauge("depth", 3)
        observer.registry.observe("batch", 17)
        observer.registry.observe_seconds("tick_seconds", 0.5)
        observer.emit_span("merge", tick=0, results=1)
        observer.event("health_transition", session="s", state="degraded")
        path = tmp_path / "trace.jsonl"
        lines = observer.export_jsonl(str(path), meta={"run": "test"})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines
        by_type = {record["type"] for record in records}
        assert by_type == {"meta", "counter", "gauge", "histogram", "timing", "span", "event"}
        counter = next(r for r in records if r["type"] == "counter")
        assert counter["series"] == "ticks_total{lane=a}" and counter["value"] == 1.0


class TestSchedulerInertness:
    def test_observer_does_not_perturb_results(self, tiny_zoo, tiny_cohort, knn_detector):
        plain = drive(StreamScheduler(), tiny_zoo, tiny_cohort, knn_detector)
        observer = Observer()
        observed = drive(
            StreamScheduler(obs=observer), tiny_zoo, tiny_cohort, knn_detector
        )
        assert observed == plain
        assert observer.registry.counter_total("serving.ticks_served_total") > 0
        stages = {span.stage for span in observer.spans}
        assert {"ingress", "lane_gather", "lane_step", "detector_batch", "health", "merge"} <= stages


class TestShardMetricParity:
    def test_sharded_series_match_single_process(self, tiny_zoo, tiny_cohort, knn_detector):
        single = Observer()
        plain = drive(
            StreamScheduler(obs=single), tiny_zoo, tiny_cohort, knn_detector
        )
        reference = single.registry.snapshot()

        for n_shards in (1, 2, 4):
            observer = Observer()
            with ShardedScheduler(n_shards=n_shards, obs=observer) as fabric:
                sharded = drive(fabric, tiny_zoo, tiny_cohort, knn_detector)
                mid_run = fabric.obs_snapshot()
            assert sharded == plain
            assert observer.registry.snapshot() == reference
            # the mid-run merged view is the same data, just pre-shutdown
            assert mid_run == reference

    def test_obs_snapshot_is_idempotent(self, tiny_zoo, tiny_cohort, knn_detector):
        observer = Observer()
        with ShardedScheduler(n_shards=2, obs=observer) as fabric:
            drive(fabric, tiny_zoo, tiny_cohort, knn_detector, n_ticks=10)
            first = fabric.obs_snapshot()
            second = fabric.obs_snapshot()
        assert first == second
        assert fabric.obs_snapshot() == first  # post-shutdown absorb, once


class TestHealthDeliveredAt:
    def test_events_carry_delivered_at_and_backoff(self):
        config = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=3)
        health = SessionHealth(config, session_id="s")
        health.record_error(4, "bad sample", delivered_at=104)
        health.record_error(5, "bad sample", delivered_at=105)
        degraded, quarantined = health.timeline[-2:]
        assert degraded.state == HealthState.DEGRADED
        assert (degraded.delivered_at, degraded.backoff) == (104, 0)
        assert quarantined.state == HealthState.QUARANTINED
        assert (quarantined.delivered_at, quarantined.backoff) == (105, 3)

    def test_scheduler_threads_now_into_health(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        scheduler = StreamScheduler(
            health=HealthConfig(degrade_after=1, quarantine_after=1),
            ingress=IngressConfig(policy=IngressPolicy.REJECT),
        )
        scheduler.open_session(record.label, tiny_zoo.model_for(record.label))
        sample = record.features("test")[0].copy()
        sample[0] = float("nan")  # malformed: rejected at ingress
        scheduler.tick({record.label: sample}, now=77)
        timeline = scheduler.session(record.label).health.timeline
        assert timeline[-1].state == HealthState.QUARANTINED
        assert timeline[-1].delivered_at == 77
        assert timeline[-1].backoff >= 1
