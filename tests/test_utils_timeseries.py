"""Tests for repro.utils.timeseries."""

import numpy as np
import pytest

from repro.utils.timeseries import (
    MinMaxScaler,
    SampleRing,
    StandardScaler,
    autocorrelation,
    exponential_moving_average,
    resample_series,
    sliding_windows,
    supervised_windows,
    train_test_split_sequential,
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        data = rng.normal(5.0, 3.0, size=(200, 2))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-6)

    def test_roundtrip(self, rng):
        data = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-9)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_handles_constant_feature(self):
        data = np.ones((10, 1))
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))


class TestMinMaxScaler:
    def test_output_range(self, rng):
        data = rng.normal(size=(100, 2)) * 10
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 - 1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_custom_range(self, rng):
        data = rng.normal(size=(100, 1))
        scaled = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(data)
        assert scaled.min() >= -1.0 - 1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_roundtrip(self, rng):
        data = rng.normal(size=(30, 2))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-9)


class TestSlidingWindows:
    def test_univariate_shape(self):
        result = sliding_windows(np.arange(10), window=4)
        assert result.shape == (7, 4)

    def test_multivariate_shape(self):
        result = sliding_windows(np.zeros((10, 3)), window=4, step=2)
        assert result.shape == (4, 4, 3)

    def test_contents(self):
        result = sliding_windows(np.arange(5), window=2)
        np.testing.assert_array_equal(result[0], [0, 1])
        np.testing.assert_array_equal(result[-1], [3, 4])

    def test_short_series_returns_empty(self):
        assert sliding_windows(np.arange(3), window=5).shape[0] == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(5), window=0)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(5), window=2, step=0)


class TestSupervisedWindows:
    def test_target_is_horizon_ahead(self):
        inputs, targets = supervised_windows(np.arange(20, dtype=float), history=4, horizon=3)
        np.testing.assert_array_equal(inputs[0], [0, 1, 2, 3])
        assert targets[0] == 6.0

    def test_multivariate_target_column(self):
        series = np.column_stack([np.arange(20), np.arange(20) * 10])
        inputs, targets = supervised_windows(series, history=4, horizon=1, target_column=1)
        assert targets[0] == 40.0
        assert inputs.shape == (16, 4, 2)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            supervised_windows(np.arange(10), history=3, horizon=0)

    def test_too_short_series_gives_empty(self):
        inputs, targets = supervised_windows(np.arange(3), history=4, horizon=1)
        assert len(inputs) == 0
        assert len(targets) == 0


class TestSplitAndSmoothing:
    def test_sequential_split_sizes(self):
        train, test = train_test_split_sequential(np.arange(10), test_fraction=0.3)
        assert len(train) == 7
        assert len(test) == 3

    def test_split_preserves_order(self):
        train, test = train_test_split_sequential(np.arange(10), test_fraction=0.2)
        assert train[-1] < test[0]

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            train_test_split_sequential(np.arange(10), test_fraction=1.5)

    def test_ema_smooths_towards_signal(self):
        series = np.array([0.0, 10.0, 10.0, 10.0])
        smoothed = exponential_moving_average(series, alpha=0.5)
        assert smoothed[0] == 0.0
        assert smoothed[-1] > smoothed[1]

    def test_ema_alpha_validated(self):
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], alpha=0.0)

    def test_resample_length(self):
        assert len(resample_series(np.arange(10), 25)) == 25

    def test_resample_preserves_endpoints(self):
        resampled = resample_series(np.array([1.0, 5.0]), 7)
        assert resampled[0] == 1.0
        assert resampled[-1] == 5.0

    def test_resample_single_value(self):
        np.testing.assert_array_equal(resample_series([3.0], 4), np.full(4, 3.0))

    def test_autocorrelation_lag_zero_is_one(self):
        values = np.sin(np.linspace(0, 10, 100))
        result = autocorrelation(values, max_lag=5)
        assert result[0] == 1.0
        assert len(result) == 6

    def test_autocorrelation_constant_series(self):
        result = autocorrelation(np.ones(10), max_lag=3)
        np.testing.assert_array_equal(result[1:], 0.0)


class TestSampleRing:
    def test_window_none_until_full_then_time_ordered(self):
        ring = SampleRing(3)
        samples = [np.array([float(i), 10.0 * i]) for i in range(5)]
        for index, sample in enumerate(samples):
            ring.push(sample)
            if index < 2:
                assert ring.window() is None
                assert not ring.full
            else:
                np.testing.assert_array_equal(
                    ring.window(), np.stack(samples[index - 2 : index + 1])
                )

    def test_tail_with_prepends_recent_history(self):
        ring = SampleRing(3)
        assert ring.tail_with(np.zeros(2)) is None
        ring.push(np.array([1.0, 1.0]))
        assert ring.tail_with(np.zeros(2)) is None
        ring.push(np.array([2.0, 2.0]))
        tail = ring.tail_with(np.array([9.0, 9.0]))
        np.testing.assert_array_equal(
            tail, np.array([[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]])
        )
        # After wrapping, tail keeps only the newest capacity-1 samples.
        for value in (3.0, 4.0, 5.0):
            ring.push(np.array([value, value]))
        tail = ring.tail_with(np.array([9.0, 9.0]))
        np.testing.assert_array_equal(
            tail, np.array([[4.0, 4.0], [5.0, 5.0], [9.0, 9.0]])
        )

    def test_capacity_one(self):
        ring = SampleRing(1)
        np.testing.assert_array_equal(
            ring.tail_with(np.array([7.0])), np.array([[7.0]])
        )
        ring.push(np.array([3.0]))
        np.testing.assert_array_equal(ring.window(), np.array([[3.0]]))

    def test_window_returns_copy(self):
        ring = SampleRing(2)
        ring.push(np.array([1.0]))
        ring.push(np.array([2.0]))
        window = ring.window()
        window[:] = -1.0
        np.testing.assert_array_equal(ring.window(), np.array([[1.0], [2.0]]))

    def test_reset_and_validation(self):
        ring = SampleRing(2)
        ring.push(np.array([1.0]))
        ring.reset()
        assert ring.count == 0
        with pytest.raises(ValueError):
            SampleRing(0)
        with pytest.raises(ValueError):
            ring.push(np.zeros((2, 2)))
