"""Tests for the glucose–insulin physiology simulator."""

import numpy as np
import pytest

from repro.data import (
    CGM_SAMPLE_MINUTES,
    MAX_SENSOR_GLUCOSE,
    MIN_SENSOR_GLUCOSE,
    GlucoseInsulinSimulator,
    PhysiologyParameters,
    SimulationInputs,
)
from repro.data.events import BehaviourProfile, DailyScheduleGenerator


def quiet_inputs(minutes: int = 1440, basal: float = 1.0) -> SimulationInputs:
    return SimulationInputs(
        carbs=np.zeros(minutes),
        bolus=np.zeros(minutes),
        basal=np.full(minutes, basal),
        exercise=np.zeros(minutes),
    )


class TestParameters:
    def test_defaults_validate(self):
        PhysiologyParameters().validate()

    def test_negative_basal_rejected(self):
        with pytest.raises(ValueError):
            PhysiologyParameters(basal_glucose=-1.0).validate()

    def test_bad_bioavailability_rejected(self):
        with pytest.raises(ValueError):
            PhysiologyParameters(carb_bioavailability=1.5).validate()

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PhysiologyParameters(sensor_noise_std=-1.0).validate()


class TestSimulationInputs:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SimulationInputs(
                carbs=np.zeros(10), bolus=np.zeros(10), basal=np.zeros(9), exercise=np.zeros(10)
            )

    def test_minutes_property(self):
        assert quiet_inputs(120).minutes == 120


class TestSimulator:
    def test_output_lengths_match_cgm_cadence(self):
        result = GlucoseInsulinSimulator(PhysiologyParameters(), seed=0).simulate(quiet_inputs(1440))
        assert result.n_samples == 1440 // CGM_SAMPLE_MINUTES
        assert len(result.cgm) == len(result.heart_rate) == len(result.carbs)

    def test_cgm_within_sensor_limits(self):
        result = GlucoseInsulinSimulator(PhysiologyParameters(), seed=0).simulate(quiet_inputs(2880))
        assert np.all(result.cgm >= MIN_SENSOR_GLUCOSE)
        assert np.all(result.cgm <= MAX_SENSOR_GLUCOSE)

    def test_quiet_day_stays_near_basal_glucose(self):
        parameters = PhysiologyParameters(basal_glucose=120.0, sensor_noise_std=1.0, dawn_amplitude=0.1)
        result = GlucoseInsulinSimulator(parameters, seed=0).simulate(quiet_inputs(1440))
        assert abs(float(np.mean(result.cgm)) - 120.0) < 25.0

    def test_meal_raises_glucose(self):
        inputs = quiet_inputs(720)
        inputs.carbs[60] = 80.0  # unbolused meal
        no_meal = GlucoseInsulinSimulator(PhysiologyParameters(sensor_noise_std=0.5), seed=1).simulate(
            quiet_inputs(720)
        )
        with_meal = GlucoseInsulinSimulator(PhysiologyParameters(sensor_noise_std=0.5), seed=1).simulate(
            inputs
        )
        assert with_meal.cgm.max() > no_meal.cgm.max() + 30.0

    def test_bolus_lowers_glucose(self):
        inputs = quiet_inputs(720)
        inputs.bolus[60] = 4.0
        baseline = GlucoseInsulinSimulator(PhysiologyParameters(sensor_noise_std=0.5), seed=2).simulate(
            quiet_inputs(720)
        )
        dosed = GlucoseInsulinSimulator(PhysiologyParameters(sensor_noise_std=0.5), seed=2).simulate(inputs)
        assert dosed.cgm.min() < baseline.cgm.min() - 10.0

    def test_same_seed_reproducible(self):
        params = PhysiologyParameters()
        first = GlucoseInsulinSimulator(params, seed=5).simulate(quiet_inputs(720)).cgm
        second = GlucoseInsulinSimulator(params, seed=5).simulate(quiet_inputs(720)).cgm
        np.testing.assert_allclose(first, second)

    def test_different_seed_changes_noise(self):
        params = PhysiologyParameters()
        first = GlucoseInsulinSimulator(params, seed=5).simulate(quiet_inputs(720)).cgm
        second = GlucoseInsulinSimulator(params, seed=6).simulate(quiet_inputs(720)).cgm
        assert not np.allclose(first, second)

    def test_heart_rate_rises_with_exercise(self):
        inputs = quiet_inputs(720)
        inputs.exercise[300:360] = 0.8
        result = GlucoseInsulinSimulator(PhysiologyParameters(), seed=0).simulate(inputs)
        exercise_samples = result.heart_rate[(result.minutes >= 300) & (result.minutes < 360)]
        rest_samples = result.heart_rate[result.minutes < 300]
        assert exercise_samples.mean() > rest_samples.mean() + 20.0

    def test_insulin_sensitivity_changes_response(self):
        inputs = quiet_inputs(720)
        inputs.bolus[60] = 4.0
        sensitive = GlucoseInsulinSimulator(
            PhysiologyParameters(insulin_sensitivity=1.5, sensor_noise_std=0.5), seed=3
        ).simulate(inputs)
        resistant = GlucoseInsulinSimulator(
            PhysiologyParameters(insulin_sensitivity=0.5, sensor_noise_std=0.5), seed=3
        ).simulate(inputs)
        assert sensitive.cgm.min() < resistant.cgm.min()


class TestScheduleIntegration:
    def test_generated_schedule_runs_through_simulator(self):
        behaviour = BehaviourProfile()
        inputs = DailyScheduleGenerator(behaviour, seed=0).generate(2)
        result = GlucoseInsulinSimulator(PhysiologyParameters(), seed=0).simulate(inputs)
        assert result.n_samples == 2 * 1440 // CGM_SAMPLE_MINUTES
        assert result.carbs.sum() > 0
        assert result.bolus.sum() > 0
