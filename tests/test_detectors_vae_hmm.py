"""LSTM-VAE + HMM detector family: gradient parity, EM properties, contracts.

Pins the guarantees the new detector family ships under (ISSUE 9):

* the VAE loss head's fused backward matches the autodiff graph within the
  repo-wide 1e-8 gradient tolerance, per layer, across batch sizes and
  timestep counts, and the fused/graph training twins produce identical
  fixed-seed loss curves;
* Baum-Welch is a genuine EM fixed-point iteration — per-iteration data
  log-likelihood is monotonically non-decreasing and the transition matrix
  stays row-stochastic;
* both detectors fit deterministically under a fixed seed (equal
  ``state_hash``);
* the cross-detector serving contract: streaming verdicts bitwise equal to
  offline ``predict`` (HMM scores bitwise too; VAE scores within 1e-12 —
  see ``docs/detectors.md`` for the tolerance table), pickle round-trips
  preserving ``state_hash`` and scores, ensemble membership;
* the scheduler's cross-group cold-batch coalescing (the ROADMAP
  kernel-floor gap): identical verdicts with strictly fewer inversion
  batches when one MAD-GAN backs several lanes.
"""

import pickle

import numpy as np
import pytest

from repro.detectors import (
    GaussianHMMDetector,
    LSTMVAEDetector,
    MADGANDetector,
    StreamingDetector,
    VotingEnsembleDetector,
)
from repro.detectors.hmm import HMMStreamState
from repro.detectors.lstm_vae import _VAECore, VAEStreamState
from repro.nn import Tensor
from repro.nn.fused import (
    LOG_2PI,
    fused_gaussian_nll_loss,
    fused_kl_standard_normal,
    fused_vae_loss_head,
)

from tests.conftest import make_toy_windows
from tests.test_detectors import make_toy_trace, sliding_windows

GRADIENT_TOLERANCE = 1e-8
LOSS_CURVE_TOLERANCE = 1e-6
#: Steady-state streaming VAE scores vs offline: the one-sample ring
#: projection is a different BLAS dispatch than the window-sized product
#: (measured gap ~2e-15 on the fixture; verdicts are bitwise regardless).
VAE_STREAM_SCORE_TOLERANCE = 1e-12


def round_trip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


# ------------------------------------------------------------------ loss heads
class TestVAELossHeads:
    def test_gaussian_nll_gradients_match_finite_differences(self):
        rng = np.random.default_rng(0)
        mean = rng.normal(size=(4, 5))
        logvar = rng.normal(scale=0.3, size=(4, 5))
        targets = rng.normal(size=(4, 5))
        loss, d_mean, d_logvar = fused_gaussian_nll_loss(mean, logvar, targets)
        step = 1e-6
        for array, grad in ((mean, d_mean), (logvar, d_logvar)):
            flat, flat_grad = array.ravel(), grad.ravel()
            for index in (0, 7, 19):
                flat[index] += step
                up, _, _ = fused_gaussian_nll_loss(mean, logvar, targets)
                flat[index] -= 2 * step
                down, _, _ = fused_gaussian_nll_loss(mean, logvar, targets)
                flat[index] += step
                numeric = (up - down) / (2 * step)
                assert abs(numeric - flat_grad[index]) < 1e-6

    def test_kl_standard_normal_closed_form_and_gradients(self):
        rng = np.random.default_rng(1)
        mu = rng.normal(size=(3, 4))
        logvar = rng.normal(scale=0.5, size=(3, 4))
        kl, d_mu, d_logvar = fused_kl_standard_normal(mu, logvar)
        expected = 0.5 * (mu**2 + np.exp(logvar) - logvar - 1.0).sum() / mu.size
        assert abs(kl - expected) < 1e-12
        np.testing.assert_allclose(d_mu, mu / mu.size, atol=1e-15)
        np.testing.assert_allclose(
            d_logvar, (np.exp(logvar) - 1.0) * 0.5 / mu.size, atol=1e-15
        )
        # KL(N(0,1) || N(0,1)) = 0 with zero gradients.
        kl0, g0, g1 = fused_kl_standard_normal(np.zeros((2, 2)), np.zeros((2, 2)))
        assert kl0 == 0.0 and not g0.any() and not g1.any()

    def test_vae_loss_head_validates_beta(self):
        with pytest.raises(ValueError, match="beta"):
            fused_vae_loss_head(-0.5)


# ---------------------------------------------------------- VAE gradient parity
class TestVAEGradientParity:
    """Fused backward vs autodiff graph, per layer, across shapes."""

    @pytest.mark.parametrize("batch,timesteps", [(3, 12), (1, 5), (7, 8)])
    def test_per_layer_gradients_within_tolerance(self, batch, timesteps):
        rng = np.random.default_rng(batch * 100 + timesteps)
        core = _VAECore(timesteps, 4, 3, 8, seed=batch + timesteps)
        inputs = rng.normal(size=(batch, timesteps, 4))
        eps = rng.normal(size=(batch, 3))
        loss_head = fused_vae_loss_head(beta=0.7)

        core._pending_eps = eps
        outputs, cache = core.fused_forward_train(inputs)
        fused_loss, grads = loss_head(outputs, inputs)
        core.fused_backward_train(grads, cache)
        fused_grads = {
            name: parameter.grad.copy()
            for name, parameter in core.named_parameters().items()
        }

        core.zero_grad()
        recon_mean, recon_logvar, mu, logvar = core(Tensor(inputs), eps)
        difference = recon_mean - inputs
        inv_var = (recon_logvar * -1.0).exp()
        nll = (recon_logvar + difference * difference * inv_var + LOG_2PI).sum() * (
            0.5 / recon_mean.size
        )
        kl = ((mu * mu) + logvar.exp() - logvar - 1.0).sum() * (0.5 / mu.size)
        loss = nll + kl * 0.7
        loss.backward()

        assert abs(fused_loss - float(loss.item())) < 1e-10
        for name, parameter in core.named_parameters().items():
            gap = np.abs(fused_grads[name] - parameter.grad).max()
            assert gap <= GRADIENT_TOLERANCE, f"{name}: {gap:.3e}"

    def test_eps_shape_validated(self):
        core = _VAECore(6, 4, 3, 8, seed=0)
        core._pending_eps = np.zeros((2, 3))
        with pytest.raises(ValueError, match="eps"):
            core.fused_forward_train(np.zeros((5, 6, 4)))
        core._pending_eps = None
        with pytest.raises(ValueError, match="reparameterization"):
            core.fused_forward_train(np.zeros((5, 6, 4)))


# --------------------------------------------------------- fit determinism/curves
class TestVAETraining:
    @pytest.fixture(scope="class")
    def benign(self):
        windows, labels = make_toy_windows(n_benign=48, n_malicious=0, seed=2)
        return windows[labels == 0]

    def make(self, benign, **overrides):
        kwargs = dict(
            epochs=2, hidden_size=8, latent_dim=3, batch_size=16, seed=11
        )
        kwargs.update(overrides)
        return LSTMVAEDetector(**kwargs).fit(benign)

    def test_seeded_fit_is_deterministic(self, benign):
        left, right = self.make(benign), self.make(benign)
        assert left.state_hash() == right.state_hash()
        assert left.history_ == right.history_
        windows, _ = make_toy_windows(seed=3)
        np.testing.assert_array_equal(left.scores(windows), right.scores(windows))

    def test_fused_and_graph_loss_curves_match(self, benign):
        fused = self.make(benign, use_fast_path=True)
        graph = self.make(benign, use_fast_path=False)
        assert len(fused.history_) == len(graph.history_) == 2
        gap = np.abs(np.array(fused.history_) - np.array(graph.history_)).max()
        assert gap <= LOSS_CURVE_TOLERANCE
        # 1e-8 per-step gradient gaps compound through Adam, so the weights
        # track within a small tolerance rather than bitwise.
        left = fused._core.named_parameters()
        right = graph._core.named_parameters()
        for name, parameter in left.items():
            np.testing.assert_allclose(
                parameter.data, right[name].data, atol=1e-6, err_msg=name
            )

    def test_separates_toy_anomalies(self, benign):
        detector = self.make(benign, epochs=6)
        windows, labels = make_toy_windows(seed=4)
        scores = detector.scores(windows)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LSTMVAEDetector(epochs=0)
        with pytest.raises(ValueError):
            LSTMVAEDetector(beta=-1.0)
        with pytest.raises(ValueError):
            LSTMVAEDetector(learning_rate=0.0)


# -------------------------------------------------------------- HMM properties
class TestHMMProperties:
    @pytest.fixture(scope="class")
    def benign(self):
        windows, labels = make_toy_windows(n_benign=60, n_malicious=0, seed=5)
        return windows[labels == 0]

    @pytest.fixture(scope="class")
    def fitted(self, benign):
        return GaussianHMMDetector(n_states=3, n_iter=8, seed=7).fit(benign)

    def test_baum_welch_loglik_monotone(self, fitted):
        history = fitted.loglik_history_
        assert len(history) == 8
        for before, after in zip(history, history[1:]):
            assert after >= before - 1e-9, "EM must not decrease the log-likelihood"

    def test_parameters_stay_stochastic_and_floored(self, fitted):
        np.testing.assert_allclose(fitted.transmat_.sum(axis=1), 1.0, atol=1e-12)
        assert (fitted.transmat_ >= 0.0).all()
        assert abs(fitted.startprob_.sum() - 1.0) < 1e-12
        assert (fitted.startprob_ >= 0.0).all()
        assert (fitted.vars_ >= fitted.var_floor).all()

    def test_seeded_fit_is_deterministic(self, benign):
        left = GaussianHMMDetector(n_states=3, n_iter=8, seed=7).fit(benign)
        right = GaussianHMMDetector(n_states=3, n_iter=8, seed=7).fit(benign)
        assert left.state_hash() == right.state_hash()
        assert left.loglik_history_ == right.loglik_history_

    def test_separates_toy_anomalies(self, fitted):
        windows, labels = make_toy_windows(seed=6)
        scores = fitted.scores(windows)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()
        assert fitted.predict(windows[labels == 1]).mean() > 0.5

    def test_extreme_window_scores_finite(self, fitted):
        # The emission floor keeps a wildly out-of-band window finite instead
        # of poisoning the forward recursion with NaNs.
        absurd = np.full((1, 12, 4), 1e6)
        score = fitted.scores(absurd)
        assert np.isfinite(score).all()
        assert fitted.predict(absurd)[0] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GaussianHMMDetector(n_states=0)
        with pytest.raises(ValueError):
            GaussianHMMDetector(n_iter=0)
        with pytest.raises(ValueError):
            GaussianHMMDetector(self_transition=1.0)
        with pytest.raises(ValueError):
            GaussianHMMDetector(var_floor=0.0)


# --------------------------------------------------- cross-detector contracts
@pytest.fixture(scope="module")
def family():
    """Both new brains, fitted on the shared toy fixture."""
    windows, labels = make_toy_windows(n_benign=60, n_malicious=0, seed=8)
    benign = windows[labels == 0]
    vae = LSTMVAEDetector(
        epochs=2, hidden_size=8, latent_dim=3, batch_size=16, seed=0
    ).fit(benign)
    hmm = GaussianHMMDetector(n_states=3, n_iter=5, seed=0).fit(benign)
    return {"lstm_vae": vae, "hmm": hmm}


DETECTOR_NAMES = ["lstm_vae", "hmm"]


class TestStreamingOfflineParity:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_streaming_verdicts_bitwise_equal_offline(self, family, name):
        detector = family[name]
        windows = sliding_windows(make_toy_trace(14, seed=21), 14)
        offline_flags = detector.predict(windows)
        offline_scores = detector.scores(windows)
        state = detector.make_inversion_state()
        stream_flags, stream_scores = [], []
        for tick in range(len(windows)):
            flags, scores = detector.predict_incremental(
                windows[tick : tick + 1], [state], include_scores=True
            )
            stream_flags.append(int(flags[0]))
            stream_scores.append(float(scores[0]))
        np.testing.assert_array_equal(np.array(stream_flags), offline_flags)
        if name == "hmm":
            # Broadcast-reduce forward: batch-composition independent, so
            # per-tick streaming scores match the batched offline call bitwise.
            np.testing.assert_array_equal(np.array(stream_scores), offline_scores)
        else:
            # The VAE's BLAS products round per batch shape (one window per
            # tick vs all windows at once offline): scores within 1e-12.
            gap = np.abs(np.array(stream_scores) - offline_scores).max()
            assert gap <= VAE_STREAM_SCORE_TOLERANCE

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_batched_streams_match_single_streams(self, family, name):
        """Scoring k streams in one call == scoring each alone: bitwise for
        the matmul-free HMM, verdict-bitwise (scores ≤ 1e-12) for the VAE,
        whose recurrence/decoder matmuls round per batch shape."""
        detector = family[name]
        traces = [make_toy_trace(10, seed=30 + index) for index in range(3)]
        batch_states = [detector.make_inversion_state() for _ in traces]
        solo_states = [detector.make_inversion_state() for _ in traces]
        for tick in range(10):
            stacked = np.stack([trace[tick : tick + 12] for trace in traces])
            batched = detector.scores_incremental(stacked, batch_states)
            solo = np.array(
                [
                    detector.scores_incremental(
                        stacked[index : index + 1], [solo_states[index]]
                    )[0]
                    for index in range(len(traces))
                ]
            )
            if name == "hmm":
                np.testing.assert_array_equal(batched, solo)
            else:
                assert np.abs(batched - solo).max() <= VAE_STREAM_SCORE_TOLERANCE
                np.testing.assert_array_equal(
                    detector.calibrator.predict(batched),
                    detector.calibrator.predict(solo),
                )

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_state_reset_recovers_cold_parity(self, family, name):
        detector = family[name]
        windows = sliding_windows(make_toy_trace(4, seed=33), 4)
        state = detector.make_inversion_state()
        for tick in range(len(windows)):
            detector.scores_incremental(windows[tick : tick + 1], [state])
        state.reset()
        assert state.ticks == 0
        fresh = detector.scores_incremental(windows[:1], [state])
        np.testing.assert_array_equal(fresh, detector.scores(windows[:1]))

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_streaming_adapter_auto_enables_incremental(self, family, name):
        adapter = StreamingDetector(family[name], unit="window")
        assert adapter.incremental

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_state_alignment_validated(self, family, name):
        detector = family[name]
        windows = sliding_windows(make_toy_trace(2, seed=34), 2)
        with pytest.raises(ValueError, match="same length"):
            detector.scores_incremental(windows, [detector.make_inversion_state()])


class TestFamilySerialization:
    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_round_trip_preserves_hash_and_scores(self, family, name):
        detector = family[name]
        copy = round_trip(detector)
        assert copy.state_hash() == detector.state_hash()
        windows, _ = make_toy_windows(seed=9)
        np.testing.assert_array_equal(copy.scores(windows), detector.scores(windows))
        np.testing.assert_array_equal(copy.predict(windows), detector.predict(windows))

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_stream_state_survives_mid_stream(self, family, name):
        detector = family[name]
        windows = sliding_windows(make_toy_trace(8, seed=35), 8)
        state = detector.make_inversion_state()
        for tick in range(4):
            detector.scores_incremental(windows[tick : tick + 1], [state])
        copy = round_trip(state)
        for tick in range(4, 8):
            left = detector.scores_incremental(windows[tick : tick + 1], [state])
            right = detector.scores_incremental(windows[tick : tick + 1], [copy])
            np.testing.assert_array_equal(left, right)

    def test_stream_state_constructors_validate(self):
        with pytest.raises(ValueError):
            VAEStreamState(0, 8)
        with pytest.raises(ValueError):
            HMMStreamState(3, 0)


class TestEnsembleMembership:
    def test_family_joins_the_voting_ensemble(self, family):
        ensemble = VotingEnsembleDetector(
            [family["lstm_vae"], family["hmm"]], min_votes=2
        )
        windows, labels = make_toy_windows(seed=10)
        flags = ensemble.predict(windows)
        assert flags.shape == (len(windows),)
        assert set(np.unique(flags)) <= {0, 1}
        # Both members separate the toy anomalies, so their conjunction must.
        assert flags[labels == 1].mean() > flags[labels == 0].mean()


# ------------------------------------------------- cold-batch coalescing (MAD-GAN)
class TestColdBatchCoalescing:
    """The ROADMAP kernel-floor gap: deferred cold work coalesces per detector
    GROUP only — the scheduler must merge cold batches across the groups one
    shared MAD-GAN backs, with verdicts identical to the uncoalesced path."""

    @pytest.fixture(scope="class")
    def benign(self):
        windows, labels = make_toy_windows(n_benign=60, n_malicious=0, seed=12)
        return windows[labels == 0]

    def make_madgan(self, benign):
        detector = MADGANDetector(
            epochs=1,
            hidden_size=8,
            batch_size=32,
            inversion_steps=6,
            warm_inversion_steps=2,
            cold_refresh_interval=4,
            max_samples=200,
            seed=0,
        )
        detector.fit(benign)
        return detector

    def test_phased_api_is_bitwise_equal_to_one_shot(self, benign):
        """finish(begin(...)) == scores_incremental, tick for tick, including
        an externally-run invert_cold — the contract the scheduler relies on."""
        one_shot, phased = self.make_madgan(benign), self.make_madgan(benign)
        assert one_shot.generator.state_hash() == phased.generator.state_hash()
        traces = [make_toy_trace(12, seed=50 + index) for index in range(2)]
        states_a = [one_shot.make_inversion_state() for _ in traces]
        states_b = [phased.make_inversion_state() for _ in traces]
        for tick in range(12):
            stacked = np.stack([trace[tick : tick + 12] for trace in traces])
            left = one_shot.scores_incremental(stacked, states_a)
            plan = phased.begin_scores_incremental(stacked, states_b)
            if plan.rerun_cold:
                errors, latents = phased.invert_cold(
                    plan.scaled[plan.rerun_cold], plan.cold_initial
                )
                right = phased.finish_scores_incremental(plan, errors, latents)
            else:
                right = phased.finish_scores_incremental(plan)
            np.testing.assert_array_equal(left, right)
        assert one_shot.inversion_calls == phased.inversion_calls

    def test_finish_validates_cold_results(self, benign):
        detector = self.make_madgan(benign)
        windows = sliding_windows(make_toy_trace(1, seed=55), 1)
        plan = detector.begin_scores_incremental(
            windows, [detector.make_inversion_state()]
        )
        assert plan.rerun_cold  # a cold start always owes the inversion
        with pytest.raises(ValueError, match="cold_latents"):
            detector.finish_scores_incremental(plan, cold_errors=np.zeros(1))
        with pytest.raises(ValueError, match="cold results"):
            detector.finish_scores_incremental(
                plan, np.zeros(3), np.zeros((3, 12, 3))
            )

    def test_scheduler_coalesces_across_lanes_at_identical_verdicts(
        self, benign, tiny_zoo, tiny_cohort
    ):
        """Two lanes sharing one MAD-GAN: coalescing must cut the inversion
        batch count while leaving every verdict identical."""
        from repro.serving import StreamScheduler

        records = list(tiny_cohort)[:2]
        traces = {record.label: record.features("test")[:26] for record in records}

        def run(coalesce):
            detector = self.make_madgan(benign)
            scheduler = StreamScheduler(coalesce_cold_batches=coalesce)
            for record in records:
                scheduler.open_session(
                    record.label,
                    tiny_zoo.model_for(record.label),
                    detectors={
                        "madgan": StreamingDetector(detector, unit="window", history=12)
                    },
                )
            verdicts = []
            for tick in range(26):
                outcomes = scheduler.tick(
                    {label: trace[tick] for label, trace in traces.items()}
                )
                verdicts.append(
                    {
                        label: (
                            outcome.verdicts["madgan"].warming,
                            outcome.verdicts["madgan"].flagged,
                        )
                        for label, outcome in outcomes.items()
                    }
                )
            return verdicts, detector.inversion_calls

        eager_verdicts, eager_calls = run(coalesce=False)
        coalesced_verdicts, coalesced_calls = run(coalesce=True)
        assert coalesced_verdicts == eager_verdicts
        assert coalesced_calls < eager_calls


# ------------------------------------------------- tier-1 parity smoke hook
class TestDetectorFamilySmoke:
    """Wire scripts/check_parity.py's family gate into the tier-1 flow."""

    @pytest.fixture(scope="class")
    def check_parity(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "scripts" / "check_parity.py"
        spec = importlib.util.spec_from_file_location("check_parity_family", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_family_smoke_passes(self, check_parity, tiny_zoo, tiny_cohort):
        report = check_parity.run_detector_family_smoke(tiny_zoo, tiny_cohort)
        assert report["hmm"]["stream_score_gap"] == 0.0
        assert (
            report["lstm_vae"]["stream_score_gap"]
            <= check_parity.VAE_STREAM_SCORE_TOLERANCE
        )
        assert report["shard_counts"] == (1, 2, 4)
