"""Worker supervision: deterministic respawn, timeouts, and shutdown escalation.

Pins the self-healing half of the recovery contract (``docs/recovery.md``):

* arming :class:`SupervisorConfig` without any crash is inert — supervised
  serving is bitwise identical to the unsupervised fabric,
* a SIGKILLed worker is respawned and rehydrated (snapshot + journal replay,
  or journal-from-birth before the first snapshot) with **bitwise** resume —
  the recovered run equals a run that never crashed,
* with snapshots disabled the supervisor falls back to the PR-6 re-warm path
  (sessions restart fresh instead of resuming, but keep being served),
* the ``max_restarts`` circuit breaker turns a crash-looping shard back into
  the old terminal dropped-tick behavior,
* a hung worker trips ``request_timeout``: it is force-killed
  (``recovery.forced_kills_total``) and recovered like a crash, and
* ``shutdown()`` cannot hang on a wedged worker — the reaping loop escalates
  join → terminate → kill (satellite: the pre-supervision fabric would block
  forever on a SIGSTOPped worker).

A worker-raised error must also leave the channel usable: the command pipe
is drained so the *next* tick works (regression for the pre-recovery fabric,
which left the reply in the pipe and desynchronized every later request).
"""

import os
import signal
import time

import numpy as np
import pytest

import repro.serving.shard as shard_module
from repro.detectors import KNNDistanceDetector
from repro.detectors.streaming import StreamingDetector
from repro.obs import Observer
from repro.serving import (
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    ShardWorkerError,
    ShardedScheduler,
    SupervisorConfig,
)

N_TICKS = 24


def tick_fingerprint(outcomes):
    return tuple(
        (
            session_id,
            outcome.tick,
            outcome.sample.tobytes(),
            None if outcome.prediction is None else float(outcome.prediction),
            tuple(
                (name, verdict.warming, verdict.flagged, verdict.score)
                for name, verdict in sorted(outcome.verdicts.items())
            ),
            outcome.dropped,
            outcome.error,
        )
        for session_id, outcome in sorted(outcomes.items())
    )


class TestSupervisedRespawn:
    @pytest.fixture(scope="class")
    def knn(self, tiny_zoo, tiny_cohort):
        windows, _, _ = tiny_zoo.dataset.from_cohort(tiny_cohort, split="train")
        return KNNDistanceDetector(n_neighbors=5).fit(windows[::4, -1:, :])

    @pytest.fixture(scope="class")
    def run(self, tiny_zoo, tiny_cohort, knn):
        """Drive a fabric for N_TICKS, optionally SIGKILLing occupied workers.

        ``kills`` maps global tick -> occupied-shard rank to kill just before
        that tick.  Returns (per-tick fingerprints, health timelines, fabric
        restart total).
        """
        records = list(tiny_cohort)
        streams = {
            record.label: record.features("test")[:N_TICKS] for record in records
        }

        def _run(n_shards, supervision=None, kills=(), obs=None):
            fabric = ShardedScheduler(
                n_shards=n_shards,
                health=HealthConfig(
                    degrade_after=1, quarantine_after=2, backoff_ticks=4
                ),
                ingress=IngressConfig(policy=IngressPolicy.REJECT),
                supervision=supervision,
                obs=obs,
            )
            out = []
            try:
                for record in records:
                    fabric.open_session(
                        record.label,
                        tiny_zoo.model_for(record.label),
                        detectors={
                            "knn": StreamingDetector(
                                knn, unit="sample", history=tiny_zoo.dataset.history
                            )
                        },
                    )
                kills = dict(kills)
                for tick in range(N_TICKS):
                    if tick in kills:
                        occupied = sorted(
                            {handle.shard for handle in fabric._sessions.values()}
                        )
                        fabric.kill_worker(
                            occupied[min(kills[tick], len(occupied) - 1)]
                        )
                    out.append(
                        tick_fingerprint(
                            fabric.tick(
                                {
                                    record.label: streams[record.label][tick]
                                    for record in records
                                },
                                now=tick,
                            )
                        )
                    )
                timelines = {}
                for session_id in sorted(fabric._sessions):
                    handle = fabric._sessions[session_id]
                    timelines[session_id] = [
                        (e.tick, str(e.state), e.reason, e.delivered_at, e.backoff)
                        for e in (
                            handle.health.timeline if handle.health is not None else []
                        )
                    ]
                restarts = sum(shard.restarts for shard in fabric._shards)
            finally:
                fabric.shutdown()
            return out, timelines, restarts

        return _run

    @pytest.fixture(scope="class")
    def baseline(self, run):
        return run(2, supervision=None)

    def test_supervision_without_crash_is_inert(self, run, baseline):
        out, timelines, restarts = run(
            2, supervision=SupervisorConfig(snapshot_interval=8)
        )
        assert restarts == 0
        assert (out, timelines) == baseline[:2]

    def test_sigkill_recovers_bitwise_from_snapshot(self, run, baseline):
        out, timelines, restarts = run(
            2,
            supervision=SupervisorConfig(snapshot_interval=8, restart_backoff=0.01),
            kills={13: 0},
        )
        assert restarts >= 1
        assert out == baseline[0], "recovered run diverged from uninterrupted run"
        assert timelines == baseline[1]

    def test_two_kills_recover_bitwise_at_four_shards(self, run):
        reference = run(4, supervision=None)
        out, timelines, restarts = run(
            4,
            supervision=SupervisorConfig(snapshot_interval=8, restart_backoff=0.01),
            kills={13: 0, 19: 1},
        )
        assert restarts >= 2
        assert (out, timelines) == reference[:2]

    def test_kill_before_first_snapshot_replays_journal(self, run, baseline):
        # snapshot_interval far beyond the run: the journal reaches back to
        # worker birth and replaying it alone must still be exact.
        out, timelines, restarts = run(
            2,
            supervision=SupervisorConfig(snapshot_interval=1000, restart_backoff=0.01),
            kills={5: 0},
        )
        assert restarts >= 1
        assert (out, timelines) == baseline[:2]

    def test_rewarm_fallback_serves_fresh_sessions(self, run):
        # Snapshots disabled: recovery falls back to the PR-6 re-warm path.
        # The killed shard's sessions restart from tick 0 (not resumed) but
        # keep being served — no terminal dropped ticks.
        out, _, restarts = run(
            2,
            supervision=SupervisorConfig(snapshot_interval=None, restart_backoff=0.01),
            kills={13: 0},
        )
        assert restarts >= 1
        tick13 = {
            session_id: (tick, dropped)
            for (session_id, tick, _, _, _, dropped, _) in out[13]
        }
        assert any(
            tick == 0 for tick, dropped in tick13.values() if not dropped
        ), "no session was re-warmed from scratch"
        assert all(not dropped for _, dropped in tick13.values())

    def test_circuit_breaker_opens_after_max_restarts(self, run):
        out, _, restarts = run(
            2,
            supervision=SupervisorConfig(
                snapshot_interval=8, max_restarts=1, restart_backoff=0.01
            ),
            kills={7: 0, 15: 0},
        )
        assert restarts == 1, "the breaker must stop burning restarts"
        last = {
            session_id: (dropped, error)
            for (session_id, _, _, _, _, dropped, error) in out[-1]
        }
        dead = [error for dropped, error in last.values() if dropped]
        assert dead and all("worker died" in error for error in dead)
        assert any(not dropped for dropped, _ in last.values()), (
            "the surviving shard's sessions must keep being served"
        )

    def test_respawn_emits_recovery_telemetry(self, run):
        observer = Observer()
        _, _, restarts = run(
            2,
            supervision=SupervisorConfig(snapshot_interval=8, restart_backoff=0.01),
            kills={13: 0},
            obs=observer,
        )
        assert restarts >= 1
        registry = observer.registry
        assert registry.counter_total("recovery.respawns_total") >= 1
        assert registry.counter_total("recovery.snapshots_received_total") >= 1
        assert registry.counter_total("recovery.journal_replayed_total") >= 1
        respawned = [e for e in observer.events if e.kind == "worker_respawned"]
        assert respawned and respawned[0].fields["mode"] in ("snapshot", "journal")


class TestRequestTimeout:
    def test_hung_worker_is_force_killed_and_recovered(self, tiny_zoo, tiny_cohort):
        records = list(tiny_cohort)[:2]
        observer = Observer()
        fabric = ShardedScheduler(
            n_shards=1,
            supervision=SupervisorConfig(
                snapshot_interval=8, restart_backoff=0.01, request_timeout=0.5
            ),
            obs=observer,
        )
        try:
            for record in records:
                fabric.open_session(record.label, tiny_zoo.model_for(record.label))
            streams = {
                record.label: record.features("test")[:6] for record in records
            }
            for tick in range(4):
                fabric.tick(
                    {label: stream[tick] for label, stream in streams.items()}
                )
            os.kill(fabric._shards[0].process.pid, signal.SIGSTOP)
            outcomes = fabric.tick(
                {label: stream[4] for label, stream in streams.items()}
            )
            assert all(not outcome.dropped for outcome in outcomes.values())
            assert sum(shard.restarts for shard in fabric._shards) >= 1
            assert observer.registry.counter_total("recovery.forced_kills_total") >= 1
        finally:
            fabric.shutdown()


class TestShutdownEscalation:
    """Satellite: shutdown() must never hang on a wedged worker."""

    @pytest.fixture(autouse=True)
    def fast_timeouts(self, monkeypatch):
        monkeypatch.setattr(shard_module, "_STUCK_WORKER_TIMEOUT", 0.2)

    def test_sigstopped_worker_is_forced_down_with_obs(self):
        observer = Observer()
        fabric = ShardedScheduler(n_shards=2, obs=observer)
        victim = fabric._shards[0].process
        os.kill(victim.pid, signal.SIGSTOP)
        started = time.perf_counter()
        fabric.shutdown()
        assert time.perf_counter() - started < 5.0, "shutdown hung on a stuck worker"
        assert not victim.is_alive()
        assert observer.registry.counter_total("recovery.forced_kills_total") >= 1

    def test_sigstopped_worker_is_forced_down_without_obs(self):
        fabric = ShardedScheduler(n_shards=2)
        victim = fabric._shards[1].process
        os.kill(victim.pid, signal.SIGSTOP)
        started = time.perf_counter()
        fabric.shutdown()
        assert time.perf_counter() - started < 5.0, "shutdown hung on a stuck worker"
        assert not victim.is_alive()


class TestWorkerErrorChannelDrain:
    """Satellite: a worker-raised error leaves the pipe usable."""

    def test_fabric_stays_usable_after_worker_error(self, tiny_zoo, tiny_cohort):
        record = next(iter(tiny_cohort))
        stream = record.features("test")[:4]
        fabric = ShardedScheduler(n_shards=1)  # health=None: errors re-raise
        try:
            fabric.open_session(record.label, tiny_zoo.model_for(record.label))
            fabric.tick({record.label: stream[0]})
            with pytest.raises(ShardWorkerError):
                fabric.tick({record.label: np.ones(99)})  # wrong feature shape
            # The channel must be drained: the next good tick still works on
            # the SAME worker (no respawn happened — supervision is off).
            outcomes = fabric.tick({record.label: stream[1]})
            assert not outcomes[record.label].dropped
            assert fabric._shards[0].alive
            assert sum(shard.restarts for shard in fabric._shards) == 0
        finally:
            fabric.shutdown()
