"""Shared fixtures.

Expensive artifacts (cohort, trained forecasters, attack campaigns) are built
once per session on deliberately tiny configurations so the full suite stays
fast while still exercising the real code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AttackCampaign
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo


TINY_PATIENTS = [
    ("A", 5),  # excellent control — expected less vulnerable
    ("B", 2),  # excellent control — expected less vulnerable
    ("A", 0),  # fair control — expected more vulnerable
    ("A", 2),  # very poor control — expected more vulnerable
]


@pytest.fixture(scope="session")
def tiny_cohort():
    """Four-patient cohort with two train days and one test day."""
    profiles = [make_patient_profile(subset, pid) for subset, pid in TINY_PATIENTS]
    return SyntheticOhioT1DM(train_days=2, test_days=1, seed=13, profiles=profiles).generate()


@pytest.fixture(scope="session")
def tiny_zoo(tiny_cohort):
    """Personalized forecasters trained with a minimal budget."""
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=2, hidden_size=8),
        train_personalized=True,
        seed=5,
    )
    zoo.fit(tiny_cohort)
    return zoo


@pytest.fixture(scope="session")
def tiny_train_campaign(tiny_zoo, tiny_cohort):
    """Attack campaign over the training split (sparse stride)."""
    return AttackCampaign(tiny_zoo, stride=8).run_cohort(tiny_cohort, split="train")


@pytest.fixture(scope="session")
def tiny_test_campaign(tiny_zoo, tiny_cohort):
    """Attack campaign over the test split (sparse stride)."""
    return AttackCampaign(tiny_zoo, stride=6).run_cohort(tiny_cohort, split="test")


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_toy_windows(n_benign: int = 60, n_malicious: int = 20, seed: int = 0):
    """Small, clearly separable benign/malicious windows for detector tests."""
    generator = np.random.default_rng(seed)
    timeline = np.linspace(0.0, 1.0, 12)

    def build(count: int, malicious: bool) -> np.ndarray:
        if count == 0:
            return np.empty((0, 12, 4))
        windows = []
        for _ in range(count):
            cgm = 110 + 18 * np.sin(2 * np.pi * (timeline + generator.uniform()))
            cgm = cgm + generator.normal(0, 2.5, size=12)
            if malicious:
                cgm[-4:] += generator.uniform(90, 180)
            other = generator.normal(0.0, 1.0, size=(12, 3))
            windows.append(np.column_stack([cgm, other]))
        return np.asarray(windows)

    benign = build(n_benign, malicious=False)
    malicious = build(n_malicious, malicious=True)
    windows = np.concatenate([benign, malicious])
    labels = np.array([0] * n_benign + [1] * n_malicious)
    return windows, labels


@pytest.fixture()
def toy_detection_data():
    return make_toy_windows()
