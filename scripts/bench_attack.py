"""Micro-benchmark for the attack hot path: graph vs fast path, per-window vs
batched vs cohort-batched, plus per-explorer lockstep timings.

Times one small, fixed attack campaign under five engine configurations:

* ``graph_per_window``       — the seed configuration: every model query runs
  through the full reverse-mode autodiff graph, one window at a time.
* ``fast_per_window``        — graph-free numpy inference, one window at a time.
* ``fast_batched``           — PR 1's engine: graph-free inference plus lockstep
  batched search per patient, with the per-edge candidate expansion.
* ``fast_batched_vectorized``— lockstep per patient with vectorized candidate
  generation (``candidates_batch`` + batched constraint passes).
* ``fast_cohort``            — the full engine: vectorized expansion plus
  cross-patient cohort batching (patients sharing a model advance together,
  one model query per search depth for the whole cohort).

The benchmark cohort shares the aggregate model (``train_personalized=False``)
so cross-patient batching is exercised — this is the aggregate-model campaign
of the paper's Appendix A.  A second section times each explorer's lockstep
``search_batch`` against its sequential per-window loop.

Writes ``BENCH_attack.json`` next to the repo root so later PRs can track the
performance trajectory, and verifies the fast path's regression guarantee
(fast vs graph predictions within 1e-10) on every benchmark window.

Usage::

    PYTHONPATH=src python scripts/bench_attack.py [--output PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro.attacks import AttackCampaign, BeamExplorer, EvasionAttack, GreedyExplorer, RandomExplorer
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo
from repro.obs import Timer

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_STRIDE = 4
EXPLORER_STRIDE = 8
BENCH_SEED = 13
# All three patients attack through the shared aggregate model, so the
# cohort-batched engine merges the whole cohort into one lockstep search.
ZOO_KWARGS = dict(
    predictor_kwargs=dict(epochs=2, hidden_size=8), train_personalized=False, seed=5
)

TARGET_TOTAL_SPEEDUP = 5.0
TARGET_COHORT_SPEEDUP = 2.0


def build_fixture():
    """Build the fixed cohort + trained zoo the benchmark always uses."""
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(**ZOO_KWARGS)
    zoo.fit(cohort)
    return cohort, zoo


def set_fast_path(zoo: GlucoseModelZoo, enabled: bool) -> None:
    for model in zoo.models.values():
        model.use_fast_path = enabled


def make_attack_factory(explorer_factory=None, vectorized: bool = True):
    """An EvasionAttack factory with a chosen explorer and expansion mode."""

    def factory(predictor):
        explorer = explorer_factory() if explorer_factory is not None else GreedyExplorer()
        explorer.use_batched_candidates = vectorized
        return EvasionAttack(predictor, explorer=explorer)

    return factory


def time_campaign(
    zoo,
    cohort,
    repeats: int,
    batched: bool,
    fast_path: bool,
    cohort_batched: bool = False,
    vectorized: bool = True,
    explorer_factory=None,
    stride: int = BENCH_STRIDE,
):
    """Run the fixed campaign ``repeats`` times; return (best seconds, result)."""
    set_fast_path(zoo, fast_path)
    timer = Timer()
    result = None
    try:
        for _ in range(repeats):
            campaign = AttackCampaign(
                zoo,
                stride=stride,
                batched=batched,
                cohort_batched=cohort_batched,
                attack_factory=make_attack_factory(explorer_factory, vectorized),
            )
            with timer.lap():
                result = campaign.run_cohort(cohort, split="test")
    finally:
        set_fast_path(zoo, True)
    return timer.best, result


def equivalence_check(zoo, cohort) -> float:
    """Max |fast - graph| prediction gap over every benchmark window."""
    worst = 0.0
    for record in cohort:
        windows, _, _ = zoo.dataset.from_record(record, "test")
        if len(windows) == 0:
            continue
        model = zoo.model_for(record.label)
        gap = np.abs(model.predict(windows) - model.predict_graph(windows)).max()
        worst = max(worst, float(gap))
    return worst


def bench_explorers(zoo, cohort, repeats: int):
    """Lockstep vs sequential wall-clock per explorer (fast inference path)."""
    factories = {
        "greedy": lambda: GreedyExplorer(max_depth=3),
        "beam": lambda: BeamExplorer(beam_width=2, max_depth=2),
        "random": lambda: RandomExplorer(max_depth=2, n_walks=6, seed=11),
    }
    report = {}
    for name, factory in factories.items():
        sequential, _ = time_campaign(
            zoo, cohort, repeats, batched=False, fast_path=True,
            explorer_factory=factory, stride=EXPLORER_STRIDE,
        )
        lockstep, result = time_campaign(
            zoo, cohort, repeats, batched=True, fast_path=True, cohort_batched=True,
            explorer_factory=factory, stride=EXPLORER_STRIDE,
        )
        report[name] = {
            "sequential_seconds": sequential,
            "lockstep_seconds": lockstep,
            "speedup": sequential / lockstep,
            "attacked_windows": len(result.records),
        }
        print(
            f"  {name}: sequential {sequential:.3f}s, lockstep {lockstep:.3f}s "
            f"({report[name]['speedup']:.1f}x, {report[name]['attacked_windows']} windows)"
        )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_attack.json",
        help="where to write the benchmark report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repetitions per configuration; the best run is reported",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    print("building fixture (cohort + trained zoo)...")
    cohort, zoo = build_fixture()

    print("checking fast-path regression guarantee...")
    max_gap = equivalence_check(zoo, cohort)
    print(f"  max |fast - graph| prediction gap: {max_gap:.3e}")

    configurations = {
        "graph_per_window": dict(batched=False, fast_path=False),
        "fast_per_window": dict(batched=False, fast_path=True),
        "fast_batched": dict(batched=True, fast_path=True, vectorized=False),
        "fast_batched_vectorized": dict(batched=True, fast_path=True, vectorized=True),
        "fast_cohort": dict(
            batched=True, fast_path=True, vectorized=True, cohort_batched=True
        ),
    }
    timings = {}
    record_counts = {}
    total_queries = {}
    for name, config in configurations.items():
        print(f"timing {name}...")
        seconds, result = time_campaign(zoo, cohort, repeats=args.repeats, **config)
        timings[name] = seconds
        record_counts[name] = len(result.records)
        total_queries[name] = int(sum(r.result.queries for r in result.records))
        print(f"  {seconds:.3f}s ({record_counts[name]} windows, {total_queries[name]} queries)")

    print("timing explorers (lockstep vs sequential)...")
    explorer_report = bench_explorers(zoo, cohort, repeats=args.repeats)

    speedup_total = timings["graph_per_window"] / timings["fast_cohort"]
    speedup_cohort = timings["fast_batched"] / timings["fast_cohort"]
    report = {
        "benchmark": "attack_campaign",
        "config": {
            "patients": ["_".join(map(str, p)) for p in BENCH_PATIENTS],
            "stride": BENCH_STRIDE,
            "explorer_stride": EXPLORER_STRIDE,
            "cohort_seed": BENCH_SEED,
            "repeats": args.repeats,
            "shared_model": "aggregate",
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "seconds": timings,
        "attacked_windows": record_counts["fast_cohort"],
        "model_queries": total_queries["fast_cohort"],
        "speedup": {
            "fast_path_only": timings["graph_per_window"] / timings["fast_per_window"],
            "batching_only": timings["fast_per_window"] / timings["fast_batched"],
            "vectorized_expansion_only": (
                timings["fast_batched"] / timings["fast_batched_vectorized"]
            ),
            "cohort_over_fast_batched": speedup_cohort,
            "total": speedup_total,
        },
        "explorers": explorer_report,
        "equivalence": {
            "max_prediction_gap": max_gap,
            "tolerance": 1e-10,
            "within_tolerance": bool(max_gap <= 1e-10),
        },
        "target_speedup": TARGET_TOTAL_SPEEDUP,
        "meets_target": bool(speedup_total >= TARGET_TOTAL_SPEEDUP),
        "target_cohort_speedup": TARGET_COHORT_SPEEDUP,
        "meets_cohort_target": bool(speedup_cohort >= TARGET_COHORT_SPEEDUP),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\ntotal speedup: {speedup_total:.1f}x (target >= {TARGET_TOTAL_SPEEDUP:g}x), "
        f"cohort vs PR1 batched: {speedup_cohort:.1f}x (target >= "
        f"{TARGET_COHORT_SPEEDUP:g}x) -> {args.output}"
    )
    if not report["equivalence"]["within_tolerance"]:
        raise SystemExit("fast path diverged from the autodiff path beyond 1e-10")
    if not report["meets_target"]:
        raise SystemExit("total speedup target not met")
    if not report["meets_cohort_target"]:
        raise SystemExit("cohort speedup target not met")


if __name__ == "__main__":
    main()
