"""Micro-benchmark for the attack hot path: graph vs fast path, per-window vs batched.

Times one small, fixed attack campaign under three engine configurations:

* ``graph_per_window`` — the seed configuration: every model query runs
  through the full reverse-mode autodiff graph, one window at a time.
* ``fast_per_window``  — graph-free numpy inference, still one window at a time.
* ``fast_batched``     — graph-free inference plus lockstep batched search
  (one model call per search depth across all active windows).

Writes ``BENCH_attack.json`` next to the repo root so later PRs can track the
performance trajectory, and verifies the fast path's regression guarantee
(fast vs graph predictions within 1e-10) on every benchmark window.

Usage::

    PYTHONPATH=src python scripts/bench_attack.py [--output PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.attacks import AttackCampaign
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_STRIDE = 4
BENCH_SEED = 13
ZOO_KWARGS = dict(predictor_kwargs=dict(epochs=2, hidden_size=8), train_personalized=True, seed=5)


def build_fixture():
    """Build the fixed cohort + trained zoo the benchmark always uses."""
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(**ZOO_KWARGS)
    zoo.fit(cohort)
    return cohort, zoo


def set_fast_path(zoo: GlucoseModelZoo, enabled: bool) -> None:
    for model in zoo.models.values():
        model.use_fast_path = enabled


def time_campaign(zoo, cohort, batched: bool, fast_path: bool, repeats: int):
    """Run the fixed campaign ``repeats`` times; return (best seconds, result)."""
    set_fast_path(zoo, fast_path)
    best = float("inf")
    result = None
    try:
        for _ in range(repeats):
            campaign = AttackCampaign(zoo, stride=BENCH_STRIDE, batched=batched)
            start = time.perf_counter()
            result = campaign.run_cohort(cohort, split="test")
            best = min(best, time.perf_counter() - start)
    finally:
        set_fast_path(zoo, True)
    return best, result


def equivalence_check(zoo, cohort) -> float:
    """Max |fast - graph| prediction gap over every benchmark window."""
    worst = 0.0
    for record in cohort:
        windows, _, _ = zoo.dataset.from_record(record, "test")
        if len(windows) == 0:
            continue
        model = zoo.model_for(record.label)
        gap = np.abs(model.predict(windows) - model.predict_graph(windows)).max()
        worst = max(worst, float(gap))
    return worst


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_attack.json",
        help="where to write the benchmark report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repetitions per configuration; the best run is reported",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    print("building fixture (cohort + trained zoo)...")
    cohort, zoo = build_fixture()

    print("checking fast-path regression guarantee...")
    max_gap = equivalence_check(zoo, cohort)
    print(f"  max |fast - graph| prediction gap: {max_gap:.3e}")

    configurations = {
        "graph_per_window": dict(batched=False, fast_path=False),
        "fast_per_window": dict(batched=False, fast_path=True),
        "fast_batched": dict(batched=True, fast_path=True),
    }
    timings = {}
    record_counts = {}
    total_queries = {}
    for name, config in configurations.items():
        print(f"timing {name}...")
        seconds, result = time_campaign(zoo, cohort, repeats=args.repeats, **config)
        timings[name] = seconds
        record_counts[name] = len(result.records)
        total_queries[name] = int(sum(r.result.queries for r in result.records))
        print(f"  {seconds:.3f}s ({record_counts[name]} windows, {total_queries[name]} queries)")

    speedup_total = timings["graph_per_window"] / timings["fast_batched"]
    report = {
        "benchmark": "attack_campaign",
        "config": {
            "patients": ["_".join(map(str, p)) for p in BENCH_PATIENTS],
            "stride": BENCH_STRIDE,
            "cohort_seed": BENCH_SEED,
            "repeats": args.repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "seconds": timings,
        "attacked_windows": record_counts["fast_batched"],
        "model_queries": total_queries["fast_batched"],
        "speedup": {
            "fast_path_only": timings["graph_per_window"] / timings["fast_per_window"],
            "batching_only": timings["fast_per_window"] / timings["fast_batched"],
            "total": speedup_total,
        },
        "equivalence": {
            "max_prediction_gap": max_gap,
            "tolerance": 1e-10,
            "within_tolerance": bool(max_gap <= 1e-10),
        },
        "target_speedup": 5.0,
        "meets_target": bool(speedup_total >= 5.0),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\ntotal speedup: {speedup_total:.1f}x (target >= 5x) -> {args.output}")
    if not report["equivalence"]["within_tolerance"]:
        raise SystemExit("fast path diverged from the autodiff path beyond 1e-10")
    if not report["meets_target"]:
        raise SystemExit("speedup target not met")


if __name__ == "__main__":
    main()
