"""Chaos replay harness: fault mixes x attacks x churn x clocks, end to end.

Runs a declarative scenario suite through the full serving fabric — seeded
benign sensor faults (:class:`~repro.serving.SensorFaultConfig`), the online
URET attacker, per-device transmission clocks, session churn, ingress
validation, and the per-session health state machine — and asserts the
robustness contract the fault-injection layer promises:

* **No unhandled exceptions.**  Every scenario, including the full-chaos mix,
  must complete; lane isolation and quarantine are supposed to absorb
  poisoned streams, not crash the scheduler.
* **Zero-config inertness.**  A replay with ``SensorFaultConfig()`` (all
  rates zero) must be *bitwise identical* — samples, predictions, verdicts —
  to one with no injector at all.
* **Bounded false-alarm inflation.**  Benign device faults may inflate the
  detector's benign false-alarm rate by at most
  :data:`FP_INFLATION_BOUND` over the fault-free baseline.  A detector that
  confuses glitches with tampering is unusable; this is the paper's
  false-alarm cost measured under realistic hardware flakiness.
* **Attack detection preserved.**  Running the same attack campaign on top
  of benign faults must not drop episode detection below the fault-free
  campaign's rate minus :data:`DETECTION_DROP_TOLERANCE`.
* **Family false alarms bounded** (full runs only).  The LSTM-VAE + HMM
  voting ensemble's benign false-alarm rate under benign faults plus the
  attack campaign may exceed its fault-free rate by at most
  :data:`FP_INFLATION_BOUND` — the new detector family must not trade its
  verdict-parity guarantees for fault-confused alarms.
* **Recovery is bitwise resume.**  SIGKILLing shard workers mid-replay at 2
  and 4 shards — with the full chaos mix still active — must produce a
  replay bitwise identical to one that never crashed: the supervisor's
  snapshot + journal recovery (``docs/recovery.md``) absorbs the kill, and
  the ``recovery_bitwise_identical`` gate asserts the respawns actually
  happened so a silent no-op kill cannot pass.

Writes ``BENCH_chaos.json`` next to the repo root.  Usage::

    PYTHONPATH=src python scripts/chaos_replay.py [--output PATH] [--smoke]

``--smoke`` shrinks every trace so the suite finishes in a few seconds; it is
wired into CI and (via ``scripts/check_parity.py::run_chaos_smoke``) the
tier-1 test suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import traceback
from pathlib import Path

import numpy as np

from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.detectors import KNNDistanceDetector
from repro.glucose import GlucoseModelZoo
from repro.serving import (
    AttackEpisode,
    DeviceClockConfig,
    HealthConfig,
    IngressConfig,
    IngressPolicy,
    OnlineAttacker,
    SensorFaultConfig,
    SessionChurnConfig,
    StreamReplayer,
    StreamScheduler,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_SEED = 13
ZOO_KWARGS = dict(
    predictor_kwargs=dict(epochs=2, hidden_size=16), train_personalized=False, seed=5
)
MADGAN_KWARGS = dict(
    epochs=5, hidden_size=12, inversion_steps=40, warm_inversion_steps=10, seed=0
)
#: The LSTM-VAE + HMM voting ensemble (``--smoke`` skips it, like MAD-GAN).
VAE_KWARGS = dict(epochs=5, hidden_size=12, latent_dim=3, batch_size=32, seed=0)
HMM_KWARGS = dict(n_states=4, n_iter=5, seed=0)

#: Samples each device delivers per scenario (``--smoke`` uses the smaller).
FULL_TICKS = 96
SMOKE_TICKS = 48
#: One attack episode per device, in session-tick coordinates.  Start is past
#: the forecaster's 12-tick warm-up so the attacker has a full context window.
ATTACK_START = 20
ATTACK_DURATION = 12

#: Benign hardware-flakiness mix: every non-malformed fault kind at a hazard
#: that corrupts a visible but minority share of ticks.
BENIGN_FAULTS = SensorFaultConfig(
    bias_rate=0.01,
    stuck_rate=0.01,
    spike_rate=0.02,
    drift_rate=0.005,
    dropout_rate=0.01,
    seed=29,
)
#: Garbage-heavy mix for exercising the ingress policies.
MALFORMED_FAULTS = SensorFaultConfig(malformed_rate=0.05, spike_rate=0.02, seed=31)
#: Everything at once (full-chaos scenario).
CHAOS_FAULTS = SensorFaultConfig(
    bias_rate=0.01,
    stuck_rate=0.01,
    spike_rate=0.02,
    drift_rate=0.005,
    dropout_rate=0.01,
    malformed_rate=0.02,
    seed=37,
)
CHAOS_CLOCKS = DeviceClockConfig(drift=0.1, jitter=0.2, dropout=0.05, seed=7)
CHAOS_CHURN = SessionChurnConfig(join_stagger=2, disconnect_every=30, reconnect_after=2)

#: The gates (calibrated on this fixture; see ``docs/robustness.md``).
#: Benign faults push the kNN detector's benign false-alarm rate up by a few
#: points (spikes and stuck-at runs look anomalous at the sample level); the
#: bound caps the inflation well below unusable while still failing loudly if
#: ingress/quarantine regress and garbage starts reaching the detectors.
FP_INFLATION_BOUND = 0.10
#: Episode detection under benign faults must match the fault-free campaign
#: (the fixture detects every episode in both); any slack here would let a
#: fault-confused pipeline trade detections for false alarms silently.
DETECTION_DROP_TOLERANCE = 0.0

#: Kill-mix schedule, keyed by shard count: replay tick -> occupied-shard
#: rank to SIGKILL.  The first kill lands mid-attack-episode; the 4-shard run
#: adds a second, later kill so two independent recoveries compose.
KILL_TICKS = {2: {25: 0}, 4: {25: 0, 33: 1}}
#: Tiny personalized sibling zoo for the kill-mix: lane placement is the
#: fabric's atomic unit, so the gate needs one lane per patient (the bench
#: zoo is aggregate-only and would collapse onto a single shard).
KILL_ZOO_KWARGS = dict(
    predictor_kwargs=dict(epochs=1, hidden_size=8), train_personalized=True, seed=3
)
#: Supervisor arming for the kill-mix: snapshots every 8 worker ticks so the
#: first kill recovers via snapshot + journal replay, fast backoff for CI.
KILL_SUPERVISION_KWARGS = dict(snapshot_interval=8, restart_backoff=0.01)


def build_fixture():
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(**ZOO_KWARGS)
    zoo.fit(cohort)
    return cohort, zoo


def build_detectors(zoo, cohort, with_madgan: bool = False, with_family: bool = False):
    """Fitted streaming monitors: kNN on samples, optional window brains.

    ``with_madgan`` adds the MAD-GAN monitor; ``with_family`` adds a
    2-of-2 voting ensemble of the LSTM-VAE and Gaussian-HMM detectors
    (key ``"vae_hmm"``), the ISSUE-9 family scenario's monitor.
    """
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detectors = {
        "knn": (KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :]), "sample")
    }
    if with_madgan:
        from repro.detectors import MADGANDetector

        madgan = MADGANDetector(**MADGAN_KWARGS)
        madgan.fit(train_windows[::2])
        detectors["madgan"] = (madgan, "window")
    if with_family:
        from repro.detectors import (
            GaussianHMMDetector,
            LSTMVAEDetector,
            VotingEnsembleDetector,
        )

        benign = train_windows[::2]
        ensemble = VotingEnsembleDetector(
            [
                LSTMVAEDetector(**VAE_KWARGS).fit(benign),
                GaussianHMMDetector(**HMM_KWARGS).fit(benign),
            ],
            min_votes=2,
        )
        detectors["vae_hmm"] = (ensemble, "window")
    return detectors


def build_scenarios(with_madgan: bool, with_family: bool = False) -> list:
    """The declarative scenario suite.

    Each entry is a plain dict; ``run_scenario`` turns it into a configured
    :class:`StreamReplayer`.  Keys: ``faults`` (SensorFaultConfig or None),
    ``attack`` (bool), ``clocks``/``churn`` (configs or None), ``health``
    (bool — per-session state machine + lane isolation), ``ingress``
    (IngressPolicy or None), ``watchdog`` (int or None), ``madgan``/
    ``family`` (bool — which window monitors join the kNN baseline).
    """
    base = dict(
        faults=None, attack=False, clocks=None, churn=None,
        health=False, ingress=None, watchdog=None, madgan=False, family=False,
    )
    scenarios = [
        dict(base, name="baseline",
             description="fault-free, attack-free reference replay"),
        dict(base, name="zero_config", faults=SensorFaultConfig(),
             description="zero-rate fault config; must be bitwise-identical to baseline"),
        dict(base, name="attack_only", attack=True,
             description="URET campaign on every stream, no faults (reference detection rate)"),
        dict(base, name="benign_faults", faults=BENIGN_FAULTS, health=True,
             ingress=IngressPolicy.CLAMP,
             description="benign hardware flakiness under clamp ingress (FP-inflation gate)"),
        dict(base, name="malformed_reject", faults=MALFORMED_FAULTS, health=True,
             ingress=IngressPolicy.REJECT,
             description="garbage-heavy stream, reject policy (drops + quarantine path)"),
        dict(base, name="malformed_hold", faults=MALFORMED_FAULTS, health=True,
             ingress=IngressPolicy.HOLD_LAST,
             description="garbage-heavy stream, hold-last repair policy"),
        dict(base, name="faults_plus_attack", faults=BENIGN_FAULTS, attack=True,
             health=True, ingress=IngressPolicy.CLAMP,
             description="attack campaign on top of benign faults (detection-preservation gate)"),
        dict(base, name="full_chaos", faults=CHAOS_FAULTS, attack=True,
             clocks=CHAOS_CLOCKS, churn=CHAOS_CHURN, health=True,
             ingress=IngressPolicy.CLAMP, watchdog=3, madgan=with_madgan,
             description="everything at once: faults + attack + churn + device clocks"),
    ]
    if with_family:
        scenarios += [
            dict(base, name="family_baseline", family=True,
                 description="LSTM-VAE + HMM voting ensemble, fault-free "
                             "(reference false-alarm rate)"),
            dict(base, name="family_faults_attack", faults=BENIGN_FAULTS,
                 attack=True, health=True, ingress=IngressPolicy.CLAMP,
                 family=True,
                 description="LSTM-VAE + HMM voting ensemble under benign "
                             "faults plus the URET campaign "
                             "(family FP-inflation gate)"),
        ]
    return scenarios


def build_attacker(cohort, n_ticks: int) -> OnlineAttacker:
    """A fresh campaign (attacker state is per-replay): one episode per device."""
    duration = min(ATTACK_DURATION, max(n_ticks - ATTACK_START - 1, 1))
    return OnlineAttacker(
        {
            record.label: [AttackEpisode(start=ATTACK_START, duration=duration)]
            for record in cohort
        }
    )


def run_scenario(zoo, cohort, detectors, spec: dict, n_ticks: int):
    scheduler = StreamScheduler(
        health=HealthConfig() if spec["health"] else None,
        ingress=IngressConfig(policy=spec["ingress"]) if spec["ingress"] else None,
    )
    replayer = StreamReplayer(
        zoo,
        detectors=detectors,
        attacker=build_attacker(cohort, n_ticks) if spec["attack"] else None,
        scheduler=scheduler,
        clocks=spec["clocks"],
        churn=spec["churn"],
        faults=spec["faults"],
        divergence_watchdog=spec["watchdog"],
    )
    return replayer.replay(cohort, split="test", max_ticks=n_ticks)


def report_fingerprint(report) -> dict:
    """Bitwise-comparable view of a replay (zero-config inertness check)."""
    fingerprint = {}
    for session_id, trace in sorted(report.sessions.items()):
        fingerprint[session_id] = {
            "samples": np.stack([outcome.sample for outcome in trace.ticks]),
            "predictions": trace.predictions(),
            "attacked": trace.attacked_ticks,
            "flags": {
                name: [
                    None if outcome.verdicts[name].warming else bool(outcome.verdicts[name].flagged)
                    for outcome in trace.ticks
                ]
                for name in report.detector_names
            },
        }
    return fingerprint


def fingerprints_identical(left: dict, right: dict) -> bool:
    if left.keys() != right.keys():
        return False
    for session_id in left:
        a, b = left[session_id], right[session_id]
        if not np.array_equal(a["samples"], b["samples"]):
            return False
        if not np.array_equal(a["predictions"], b["predictions"], equal_nan=True):
            return False
        if a["attacked"] != b["attacked"] or a["flags"] != b["flags"]:
            return False
    return True


def summarize(report, spec: dict) -> dict:
    health = report.health_summary()
    entry = {
        "description": spec["description"],
        "n_sessions": len(report.sessions),
        "ticks_delivered": int(sum(trace.n_ticks for trace in report.sessions.values())),
        "faulted_ticks": int(
            sum(len(trace.faulted_ticks) for trace in report.sessions.values())
        ),
        "dropped_ticks": int(
            sum(len(trace.dropped_ticks) for trace in report.sessions.values())
        ),
        "attacked_ticks": int(
            sum(len(trace.attacked_ticks) for trace in report.sessions.values())
        ),
        "quarantines": int(sum(counts["quarantines"] for counts in health.values())),
        "detectors": {name: report.rollup(name) for name in report.detector_names},
        "health": health,
    }
    return entry


def run_suite(
    n_ticks: int,
    with_madgan: bool,
    verbose: bool = True,
    fixture=None,
    with_family: bool = False,
):
    """Run every scenario and evaluate the gates.

    ``fixture`` is an optional prebuilt ``(cohort, zoo)`` pair (the tier-1
    smoke passes its own tiny fixture); the benchmark fixture is built when
    omitted.  ``with_family`` adds the LSTM-VAE + HMM ensemble scenarios and
    their FP-inflation gate.  Returns ``(report_dict, ok)``; never raises
    for an in-scenario failure (that is itself gate #1).
    """
    def say(message: str) -> None:
        if verbose:
            print(message)

    if fixture is None:
        say("building fixture (cohort + trained aggregate forecaster)...")
        cohort, zoo = build_fixture()
    else:
        cohort, zoo = fixture
    say("fitting streaming detectors...")
    detectors = build_detectors(
        zoo, cohort, with_madgan=with_madgan, with_family=with_family
    )
    knn_only = {"knn": detectors["knn"]}

    scenarios = build_scenarios(with_madgan, with_family)
    results = {}
    fingerprints = {}
    failures = {}
    for spec in scenarios:
        name = spec["name"]
        say(f"scenario {name!r}: {spec['description']}...")
        scenario_detectors = dict(knn_only)
        if spec["madgan"]:
            scenario_detectors["madgan"] = detectors["madgan"]
        if spec["family"]:
            scenario_detectors["vae_hmm"] = detectors["vae_hmm"]
        try:
            report = run_scenario(zoo, cohort, scenario_detectors, spec, n_ticks)
        except Exception as error:  # gate #1: nothing may escape the fabric
            failures[name] = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            say(f"  UNHANDLED EXCEPTION: {failures[name]}")
            continue
        if name in ("baseline", "zero_config"):
            fingerprints[name] = report_fingerprint(report)
        results[name] = summarize(report, spec)
        rollup = results[name]["detectors"]["knn"]
        say(
            f"  {results[name]['ticks_delivered']} ticks "
            f"({results[name]['faulted_ticks']} faulted, "
            f"{results[name]['dropped_ticks']} dropped, "
            f"{results[name]['quarantines']} quarantines); "
            f"knn FA rate {rollup['false_alarm_rate_benign']:.3f}, "
            f"detection rate {rollup['detection_rate']:.2f}"
        )

    gates = {}
    gates["no_unhandled_exceptions"] = {
        "passed": not failures,
        "failures": failures,
    }
    zero_config_ok = (
        "baseline" in fingerprints
        and "zero_config" in fingerprints
        and fingerprints_identical(fingerprints["baseline"], fingerprints["zero_config"])
    )
    gates["zero_config_bitwise_identical"] = {"passed": bool(zero_config_ok)}

    if "baseline" in results and "benign_faults" in results:
        baseline_fa = results["baseline"]["detectors"]["knn"]["false_alarm_rate_benign"]
        faulted_fa = results["benign_faults"]["detectors"]["knn"]["false_alarm_rate_benign"]
        inflation = faulted_fa - baseline_fa
        gates["fp_inflation_bounded"] = {
            "passed": bool(inflation <= FP_INFLATION_BOUND),
            "baseline_false_alarm_rate": baseline_fa,
            "faulted_false_alarm_rate": faulted_fa,
            "inflation": inflation,
            "bound": FP_INFLATION_BOUND,
        }
    else:
        gates["fp_inflation_bounded"] = {"passed": False, "error": "scenario missing"}

    if "attack_only" in results and "faults_plus_attack" in results:
        clean_rate = results["attack_only"]["detectors"]["knn"]["detection_rate"]
        chaos_rate = results["faults_plus_attack"]["detectors"]["knn"]["detection_rate"]
        gates["detection_preserved_under_faults"] = {
            "passed": bool(chaos_rate >= clean_rate - DETECTION_DROP_TOLERANCE),
            "fault_free_detection_rate": clean_rate,
            "faulted_detection_rate": chaos_rate,
            "tolerance": DETECTION_DROP_TOLERANCE,
        }
    else:
        gates["detection_preserved_under_faults"] = {
            "passed": False, "error": "scenario missing",
        }

    if with_family:
        if "family_baseline" in results and "family_faults_attack" in results:
            clean_fa = results["family_baseline"]["detectors"]["vae_hmm"][
                "false_alarm_rate_benign"
            ]
            chaos_fa = results["family_faults_attack"]["detectors"]["vae_hmm"][
                "false_alarm_rate_benign"
            ]
            inflation = chaos_fa - clean_fa
            gates["family_fp_inflation_bounded"] = {
                "passed": bool(inflation <= FP_INFLATION_BOUND),
                "baseline_false_alarm_rate": clean_fa,
                "faulted_false_alarm_rate": chaos_fa,
                "inflation": inflation,
                "bound": FP_INFLATION_BOUND,
            }
        else:
            gates["family_fp_inflation_bounded"] = {
                "passed": False, "error": "scenario missing",
            }

    ok = all(gate["passed"] for gate in gates.values())
    report_dict = {
        "benchmark": "chaos_replay",
        "config": {
            "patients": (
                [record.label for record in cohort]
                if fixture is not None
                else ["_".join(map(str, p)) for p in BENCH_PATIENTS]
            ),
            "cohort_seed": BENCH_SEED if fixture is None else None,
            "ticks_per_device": n_ticks,
            "attack": {"start": ATTACK_START, "duration": ATTACK_DURATION},
            "with_madgan": with_madgan,
            "with_family": with_family,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "scenarios": results,
        "gates": gates,
        "all_gates_passed": bool(ok),
    }
    return report_dict, ok


def run_kill_mix(n_ticks: int, fixture=None, verbose: bool = True) -> dict:
    """SIGKILL shard workers mid-replay under the full chaos mix.

    Replays the cohort once on a single-process scheduler (no kill) and once
    per shard count in :data:`KILL_TICKS` on a supervised
    :class:`~repro.serving.ShardedScheduler` whose workers are SIGKILLed at
    the scheduled ticks, then requires the killed replays to be **bitwise
    identical** to the uninterrupted one — samples, predictions, verdicts,
    and the health summary — and the supervisor to have actually respawned
    at least once per kill.  Returns the ``recovery_bitwise_identical`` gate
    entry; never raises for an in-replay failure (that fails the gate).

    ``fixture`` is an optional ``(cohort, zoo)`` pair; when omitted a cohort
    plus a tiny personalized lane zoo are built directly (the suite's
    aggregate forecaster is never needed here).
    """
    from repro.serving import ShardedScheduler, SupervisorConfig

    def say(message: str) -> None:
        if verbose:
            print(message)

    if fixture is None:
        say("building kill-mix fixture (cohort + personalized lane zoo)...")
        profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
        cohort = SyntheticOhioT1DM(
            train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
        ).generate()
        lane_zoo = GlucoseModelZoo(**KILL_ZOO_KWARGS)
        lane_zoo.fit(cohort)
    else:
        cohort, zoo = fixture
        records = list(cohort)
        if len({zoo.model_for(record.label).state_hash() for record in records}) > 1:
            lane_zoo = zoo
        else:
            lane_zoo = GlucoseModelZoo(**KILL_ZOO_KWARGS)
            lane_zoo.fit(cohort)
    train_windows, _, _ = lane_zoo.dataset.from_cohort(cohort, split="train")
    detectors = {
        "knn": (KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :]), "sample")
    }
    health = HealthConfig()
    ingress = IngressConfig(policy=IngressPolicy.CLAMP)

    class KillSwitch:
        """Passthrough shim that SIGKILLs occupied workers between ticks —
        the same boundary a real mid-run crash is recovered at."""

        def __init__(self, fabric, kill_at):
            self._fabric = fabric
            self._kill_at = dict(kill_at)
            self._ticks = 0

        def __getattr__(self, name):
            return getattr(self._fabric, name)

        def tick(self, samples, now=None):
            rank = self._kill_at.get(self._ticks)
            if rank is not None:
                occupied = sorted(
                    {handle.shard for handle in self._fabric._sessions.values()}
                )
                self._fabric.kill_worker(occupied[min(rank, len(occupied) - 1)])
            self._ticks += 1
            return self._fabric.tick(samples, now=now)

    def replay_with(scheduler):
        replayer = StreamReplayer(
            lane_zoo,
            detectors=detectors,
            attacker=build_attacker(cohort, n_ticks),
            scheduler=scheduler,
            clocks=CHAOS_CLOCKS,
            churn=CHAOS_CHURN,
            faults=CHAOS_FAULTS,
            divergence_watchdog=3,
        )
        return replayer.replay(cohort, split="test", max_ticks=n_ticks)

    say("kill-mix reference replay (single process, no kill)...")
    baseline_report = replay_with(StreamScheduler(health=health, ingress=ingress))
    baseline = report_fingerprint(baseline_report)
    baseline_health = baseline_report.health_summary()

    gate = {"passed": True, "n_ticks": n_ticks, "shards": {}}
    for n_shards, schedule in sorted(KILL_TICKS.items()):
        kill_at = {tick: rank for tick, rank in schedule.items() if tick < n_ticks}
        say(f"kill-mix at {n_shards} shards (SIGKILL at ticks {sorted(kill_at)})...")
        fabric = ShardedScheduler(
            n_shards=n_shards,
            health=health,
            ingress=ingress,
            supervision=SupervisorConfig(**KILL_SUPERVISION_KWARGS),
        )
        try:
            try:
                report = replay_with(KillSwitch(fabric, kill_at))
            except Exception as error:  # the fabric must absorb the kill
                gate["passed"] = False
                gate["shards"][str(n_shards)] = {
                    "kill_ticks": sorted(kill_at),
                    "error": "".join(
                        traceback.format_exception_only(type(error), error)
                    ).strip(),
                }
                say(f"  UNHANDLED EXCEPTION: {gate['shards'][str(n_shards)]['error']}")
                continue
            restarts = sum(shard.restarts for shard in fabric._shards)
        finally:
            fabric.shutdown()
        identical = fingerprints_identical(report_fingerprint(report), baseline)
        health_ok = report.health_summary() == baseline_health
        respawned = restarts >= len(kill_at)
        gate["shards"][str(n_shards)] = {
            "kill_ticks": sorted(kill_at),
            "respawns": restarts,
            "bitwise_identical": bool(identical),
            "health_identical": bool(health_ok),
        }
        if not (identical and health_ok and respawned):
            gate["passed"] = False
        say(
            f"  respawns={restarts}, bitwise={'yes' if identical else 'NO'}, "
            f"health={'yes' if health_ok else 'NO'}"
        )
    return gate


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_chaos.json",
        help="where to write the chaos report (default: repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short traces, kNN only — the CI/tier-1 configuration",
    )
    args = parser.parse_args()

    n_ticks = SMOKE_TICKS if args.smoke else FULL_TICKS
    report, ok = run_suite(
        n_ticks, with_madgan=not args.smoke, with_family=not args.smoke
    )
    recovery = run_kill_mix(n_ticks)
    report["gates"]["recovery_bitwise_identical"] = recovery
    ok = ok and recovery["passed"]
    report["all_gates_passed"] = bool(ok)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for name, gate in report["gates"].items():
        status = "PASS" if gate["passed"] else "FAIL"
        print(f"gate {name}: {status}")
    print(f"report -> {args.output}")
    if not ok:
        print("CHAOS GATES FAILED")
        return 1
    print("all chaos gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
