"""Serving throughput benchmark: streamed incremental inference vs naive re-predict.

Simulates a fleet of concurrent CGM streams (1, 64, and 1024 sessions, all
served by the shared aggregate forecaster) and times two serving strategies
over the same tick sequence:

* ``baseline`` — the naive server loop the repo's offline evaluation implies:
  each session keeps its own window buffer and every tick issues one
  ``predictor.predict(window[None])`` per session — full window re-scaling,
  re-projection, and recurrence recompute, one session at a time.
* ``streamed`` — the :mod:`repro.serving` subsystem: per-sample scaling and
  input projection cached in ring buffers (O(1) incremental work per tick),
  and ONE stacked model step per tick for every session sharing the model via
  :class:`StreamScheduler`.

Both strategies see identical samples; their predictions are compared tick by
tick and must agree within 1e-10 (the streamed path's regression guarantee
against the offline fast path).  A short attacked replay additionally checks
that streaming detector verdicts equal the offline ``predict`` on the same
delivered measurements.

Two additional configurations cover the streaming hot path's v2 targets:

* ``single_session`` — the 1-session entry must reach at least parity
  (>= 1.0x) with the naive loop: the scheduler's slim single-session fast
  path bypasses the lane stacking that has nothing to batch.
* ``incremental_scoring`` — per-tick MAD-GAN window scoring at 64 sessions,
  cold (``scores``: full generator inversion from a fresh latent every tick)
  vs warm (``scores_incremental``: inversion warm-started from each stream's
  previous-tick latent).  Steady-state per-tick cost must drop by >= 3x with
  warm-vs-cold verdicts identical on every tick and the DR score gap bounded.

Writes ``BENCH_serving.json`` next to the repo root.  Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--output PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo
from repro.serving import StreamScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(Path(__file__).resolve().parent))

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_SEED = 13
ZOO_KWARGS = dict(
    predictor_kwargs=dict(epochs=2, hidden_size=16), train_personalized=False, seed=5
)

#: Measured ticks per session count (after a ``history``-tick warm-up).
SESSION_CONFIGS = {1: 120, 64: 60, 1024: 20}

TARGET_SPEEDUP_AT_64 = 5.0
TARGET_SINGLE_SESSION = 1.0
TOLERANCE = 1e-10

#: Incremental MAD-GAN scoring configuration (64 streams, steady state).
MADGAN_KWARGS = dict(
    epochs=5, hidden_size=12, inversion_steps=40, warm_inversion_steps=10, seed=0
)
INCREMENTAL_SESSIONS = 64
INCREMENTAL_WARMUP_TICKS = 3
INCREMENTAL_TICKS = 10
TARGET_INCREMENTAL_SPEEDUP = 3.0
#: Warm-vs-cold DR score tolerance: the warm path must stay within this
#: absolute gap of a cold rescore (the fixture's decision threshold is ~4.3,
#: so verdicts cannot flip inside this band).
INCREMENTAL_SCORE_TOLERANCE = 0.5
INCREMENTAL_RNG_SEED = 123


def build_fixture():
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(**ZOO_KWARGS)
    zoo.fit(cohort)
    return cohort, zoo


def session_traces(cohort, n_sessions: int, n_ticks: int):
    """One raw trace per session, cycling the cohort's test traces."""
    base = [record.features("test") for record in cohort]
    for trace in base:
        if len(trace) < n_ticks:
            raise RuntimeError("test traces are shorter than the benchmark needs")
    return [base[index % len(base)] for index in range(n_sessions)]


def run_baseline(predictor, traces, warmup: int, ticks: int):
    """Naive per-session re-predict loop; returns (seconds, predictions)."""
    history = predictor.history
    rings = [[] for _ in traces]
    for tick in range(warmup):
        for ring, trace in zip(rings, traces):
            ring.append(trace[tick])
            del ring[:-history]
    predictions = np.full((ticks, len(traces)), np.nan)
    start = time.perf_counter()
    for tick in range(ticks):
        for index, (ring, trace) in enumerate(zip(rings, traces)):
            ring.append(trace[warmup + tick])
            del ring[:-history]
            if len(ring) == history:
                predictions[tick, index] = predictor.predict(np.asarray(ring)[np.newaxis])[0]
    return time.perf_counter() - start, predictions


def run_streamed(predictor, traces, warmup: int, ticks: int):
    """Scheduler-coalesced incremental serving; returns (seconds, predictions)."""
    scheduler = StreamScheduler()
    ids = [f"s{index}" for index in range(len(traces))]
    for session_id in ids:
        scheduler.open_session(session_id, predictor, session_id=session_id)
    for tick in range(warmup):
        scheduler.tick(
            {session_id: trace[tick] for session_id, trace in zip(ids, traces)}
        )
    predictions = np.full((ticks, len(traces)), np.nan)
    start = time.perf_counter()
    for tick in range(ticks):
        outcomes = scheduler.tick(
            {session_id: trace[warmup + tick] for session_id, trace in zip(ids, traces)}
        )
        for index, session_id in enumerate(ids):
            value = outcomes[session_id].prediction
            predictions[tick, index] = np.nan if value is None else value
    return time.perf_counter() - start, predictions


def bench_session_count(zoo, cohort, n_sessions: int, ticks: int, repeats: int):
    predictor = zoo.aggregate
    warmup = predictor.history
    traces = session_traces(cohort, n_sessions, warmup + ticks)

    if n_sessions == 1:
        # The single-session gate is a hard >= 1.0x floor on two sub-ms
        # timings; extra best-of repetitions keep scheduler noise from
        # failing the run on loaded machines (each pass is only ~50 ms).
        repeats = repeats * 3
    baseline_best = float("inf")
    streamed_best = float("inf")
    baseline_preds = streamed_preds = None
    for _ in range(repeats):
        seconds, baseline_preds = run_baseline(predictor, traces, warmup, ticks)
        baseline_best = min(baseline_best, seconds)
        seconds, streamed_preds = run_streamed(predictor, traces, warmup, ticks)
        streamed_best = min(streamed_best, seconds)

    gap = float(np.abs(baseline_preds - streamed_preds).max())
    return {
        "ticks": ticks,
        "baseline_seconds": baseline_best,
        "stream_seconds": streamed_best,
        "baseline_ticks_per_sec": ticks / baseline_best,
        "stream_ticks_per_sec": ticks / streamed_best,
        "baseline_tick_latency_ms": baseline_best / ticks * 1e3,
        "stream_tick_latency_ms": streamed_best / ticks * 1e3,
        "session_ticks_per_sec": n_sessions * ticks / streamed_best,
        "speedup": baseline_best / streamed_best,
        "max_prediction_gap": gap,
    }


def incremental_fixture(zoo, cohort):
    """Fitted MAD-GAN detector plus 64 per-stream traces (some spoofed)."""
    from repro.detectors import MADGANDetector

    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = MADGANDetector(**MADGAN_KWARGS)
    detector.fit(train_windows[::2])
    history = detector.sequence_length
    traces = [
        trace.copy()
        for trace in session_traces(
            cohort,
            INCREMENTAL_SESSIONS,
            history + INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS,
        )
    ]
    # Every 8th stream carries a spoofed hyperglycemic level from before the
    # timed span, so verdict parity is checked on a mix of benign and
    # manipulated windows (all far from the decision threshold — the warm
    # path cannot flip them; tests cover the borderline fallback machinery).
    for index in range(0, INCREMENTAL_SESSIONS, 8):
        traces[index][history - 4 :, 0] = 400.0
    return detector, traces


def bench_incremental_scoring(zoo, cohort, repeats: int):
    """Time per-tick MAD-GAN scoring: cold inversion vs warm-started inversion.

    Both passes score identical per-tick window batches after an untimed
    warm-up (the warm pass needs it to seed its carried latents; excluding it
    from both sides makes this a steady-state comparison).  The detector's
    RNG is re-seeded before every pass so cold latent draws are identical
    across passes and repeats; verdicts are asserted identical tick by tick.
    """
    from repro.utils.rng import as_random_state

    detector, traces = incremental_fixture(zoo, cohort)
    history = detector.sequence_length

    def tick_windows(tick):
        return np.stack([trace[tick : tick + history] for trace in traces])

    def run_cold():
        detector._rng = as_random_state(INCREMENTAL_RNG_SEED)
        for tick in range(INCREMENTAL_WARMUP_TICKS):
            detector.scores(tick_windows(tick))
        scores = []
        start = time.perf_counter()
        for tick in range(
            INCREMENTAL_WARMUP_TICKS, INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS
        ):
            scores.append(detector.scores(tick_windows(tick)))
        return time.perf_counter() - start, scores

    def run_warm():
        detector._rng = as_random_state(INCREMENTAL_RNG_SEED)
        states = [detector.make_inversion_state() for _ in range(len(traces))]
        for tick in range(INCREMENTAL_WARMUP_TICKS):
            detector.scores_incremental(tick_windows(tick), states)
        scores = []
        start = time.perf_counter()
        for tick in range(
            INCREMENTAL_WARMUP_TICKS, INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS
        ):
            scores.append(detector.scores_incremental(tick_windows(tick), states))
        return time.perf_counter() - start, scores

    cold_best = warm_best = float("inf")
    worst_gap = 0.0
    for _ in range(repeats):
        cold_seconds, cold_scores = run_cold()
        warm_seconds, warm_scores = run_warm()
        cold_best = min(cold_best, cold_seconds)
        warm_best = min(warm_best, warm_seconds)
        for cold, warm in zip(cold_scores, warm_scores):
            worst_gap = max(worst_gap, float(np.abs(cold - warm).max()))
            cold_flags = detector.calibrator.predict(cold)
            warm_flags = detector.calibrator.predict(warm)
            if not np.array_equal(cold_flags, warm_flags):
                raise SystemExit(
                    "warm-started MAD-GAN verdicts diverged from the cold path"
                )
    if worst_gap > INCREMENTAL_SCORE_TOLERANCE:
        raise SystemExit(
            f"warm-vs-cold DR score gap {worst_gap:.3f} exceeds the "
            f"{INCREMENTAL_SCORE_TOLERANCE} tolerance"
        )
    return {
        "n_sessions": INCREMENTAL_SESSIONS,
        "ticks": INCREMENTAL_TICKS,
        "warmup_ticks": INCREMENTAL_WARMUP_TICKS,
        "detector": MADGAN_KWARGS,
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "cold_tick_latency_ms": cold_best / INCREMENTAL_TICKS * 1e3,
        "warm_tick_latency_ms": warm_best / INCREMENTAL_TICKS * 1e3,
        "speedup": cold_best / warm_best,
        "max_score_gap": worst_gap,
        "score_tolerance": INCREMENTAL_SCORE_TOLERANCE,
        "verdict_parity": True,  # asserted above, every tick of every repeat
        "decision_threshold": float(detector.calibrator.threshold_),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serving.json",
        help="where to write the benchmark report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repetitions per configuration; the best run is reported",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    print("building fixture (cohort + trained aggregate forecaster)...")
    cohort, zoo = build_fixture()

    sessions_report = {}
    worst_gap = 0.0
    for n_sessions, ticks in SESSION_CONFIGS.items():
        print(f"timing {n_sessions} concurrent session(s) x {ticks} ticks...")
        entry = bench_session_count(zoo, cohort, n_sessions, ticks, args.repeats)
        sessions_report[str(n_sessions)] = entry
        worst_gap = max(worst_gap, entry["max_prediction_gap"])
        print(
            f"  baseline {entry['baseline_tick_latency_ms']:.2f} ms/tick, "
            f"streamed {entry['stream_tick_latency_ms']:.2f} ms/tick "
            f"({entry['speedup']:.1f}x, gap {entry['max_prediction_gap']:.2e})"
        )

    print("timing incremental MAD-GAN scoring (warm vs cold inversion, 64 streams)...")
    incremental = bench_incremental_scoring(zoo, cohort, args.repeats)
    print(
        f"  cold {incremental['cold_tick_latency_ms']:.1f} ms/tick, "
        f"warm {incremental['warm_tick_latency_ms']:.1f} ms/tick "
        f"({incremental['speedup']:.1f}x, verdicts identical, "
        f"score gap {incremental['max_score_gap']:.3f})"
    )

    print("checking streaming detector verdict parity (attacked replay)...")
    from check_parity import run_serving_smoke

    smoke = run_serving_smoke(zoo, cohort)
    print(
        f"  verdicts identical to offline predict; stream gap "
        f"{smoke['max_stream_gap']:.2e} over {smoke['tampered_ticks']} tampered ticks"
    )

    speedup_at_64 = sessions_report["64"]["speedup"]
    single_session_speedup = sessions_report["1"]["speedup"]
    report = {
        "benchmark": "serving_stream",
        "config": {
            "patients": ["_".join(map(str, p)) for p in BENCH_PATIENTS],
            "cohort_seed": BENCH_SEED,
            "repeats": args.repeats,
            "shared_model": "aggregate",
            "warmup_ticks": zoo.aggregate.history,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sessions": sessions_report,
        "speedup_at_64": speedup_at_64,
        "target_speedup_at_64": TARGET_SPEEDUP_AT_64,
        "meets_target": bool(speedup_at_64 >= TARGET_SPEEDUP_AT_64),
        "single_session": {
            "speedup": single_session_speedup,
            "target_speedup": TARGET_SINGLE_SESSION,
            "meets_target": bool(single_session_speedup >= TARGET_SINGLE_SESSION),
        },
        "incremental_scoring": {
            **incremental,
            "target_speedup": TARGET_INCREMENTAL_SPEEDUP,
            "meets_target": bool(
                incremental["speedup"] >= TARGET_INCREMENTAL_SPEEDUP
            ),
        },
        "equivalence": {
            "max_prediction_gap": worst_gap,
            "tolerance": TOLERANCE,
            "within_tolerance": bool(worst_gap <= TOLERANCE),
            "verdict_parity": True,  # run_serving_smoke asserts it above
            "smoke": smoke,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nspeedup at 64 sessions: {speedup_at_64:.1f}x "
        f"(target >= {TARGET_SPEEDUP_AT_64:g}x), "
        f"single session: {single_session_speedup:.2f}x "
        f"(target >= {TARGET_SINGLE_SESSION:g}x), "
        f"incremental scoring: {incremental['speedup']:.1f}x "
        f"(target >= {TARGET_INCREMENTAL_SPEEDUP:g}x) -> {args.output}"
    )
    if not report["equivalence"]["within_tolerance"]:
        raise SystemExit("streamed predictions diverged from the baseline beyond 1e-10")
    if not report["meets_target"]:
        raise SystemExit("serving speedup target not met")
    if not report["single_session"]["meets_target"]:
        raise SystemExit("single-session fast path fell below the naive loop")
    if not report["incremental_scoring"]["meets_target"]:
        raise SystemExit("incremental MAD-GAN scoring speedup target not met")


if __name__ == "__main__":
    main()
