"""Serving throughput benchmark: streamed incremental inference vs naive re-predict.

Simulates a fleet of concurrent CGM streams (1, 64, and 1024 sessions, all
served by the shared aggregate forecaster) and times two serving strategies
over the same tick sequence:

* ``baseline`` — the naive server loop the repo's offline evaluation implies:
  each session keeps its own window buffer and every tick issues one
  ``predictor.predict(window[None])`` per session — full window re-scaling,
  re-projection, and recurrence recompute, one session at a time.
* ``streamed`` — the :mod:`repro.serving` subsystem: per-sample scaling and
  input projection cached in ring buffers (O(1) incremental work per tick),
  and ONE stacked model step per tick for every session sharing the model via
  :class:`StreamScheduler`.

Both strategies see identical samples; their predictions are compared tick by
tick and must agree within 1e-10 (the streamed path's regression guarantee
against the offline fast path).  A short attacked replay additionally checks
that streaming detector verdicts equal the offline ``predict`` on the same
delivered measurements.

Two additional configurations cover the streaming hot path's v2 targets:

* ``single_session`` — the 1-session entry must reach at least parity
  (>= 1.0x) with the naive loop: the scheduler's slim single-session fast
  path bypasses the lane stacking that has nothing to batch.
* ``incremental_scoring`` — per-tick MAD-GAN window scoring at 64 sessions,
  cold (``scores``: full generator inversion from a fresh latent every tick)
  vs warm (``scores_incremental``: inversion warm-started from each stream's
  previous-tick latent).  Steady-state per-tick cost must drop by >= 3x with
  warm-vs-cold verdicts identical on every tick and the DR score gap bounded.
* ``family_scoring`` — the same 64-stream comparison for the LSTM-VAE
  (projection ring) and Gaussian-HMM (partial-alpha band) brains: streaming
  vs offline re-score, verdicts bitwise on every tick, HMM scores bitwise and
  VAE scores within the ``check_parity`` tolerance (timing informational).

A multiprocess scale sweep then re-serves a large fleet (``1024`` sessions
across ``8`` model lanes) through :class:`repro.serving.shard.ShardedScheduler`
at 1, 2, and 4 worker processes, pinning bitwise prediction parity against the
single-process scheduler on every pass and reporting per-shard tick-latency
percentiles (p50/p95/p99) plus throughput vs the single-process baseline.  The
``>= 2.5x at 4 workers`` throughput gate only applies when the machine
actually has 4 cores to run them on (``gate_applicable`` in the report records
the decision); parity is gated unconditionally.

A ``recovery`` section (``docs/recovery.md``) then prices the crash-recovery
machinery: scheduler snapshot capture plus checkpoint-file save/load cost
normalized per 1k sessions, SIGKILL-to-next-tick respawn latency on a
supervised 2-shard fabric, and the steady-state overhead of arming the
supervisor at ``snapshot_interval=32`` — gated below 5% with predictions
bitwise identical to the unsupervised fabric.

Writes ``BENCH_serving.json`` next to the repo root.  Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--output PATH] [--repeats N]
    PYTHONPATH=src python scripts/bench_serving.py --smoke --workers 2

``--smoke`` is the CI entry: a small sharded-vs-single-process fleet parity
check at ``--workers`` workers — no timing, no gates, no report file.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo
from repro.obs import Observer, Timer
from repro.serving import StreamScheduler

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(Path(__file__).resolve().parent))

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_SEED = 13
ZOO_KWARGS = dict(
    predictor_kwargs=dict(epochs=2, hidden_size=16), train_personalized=False, seed=5
)

#: Measured ticks per session count (after a ``history``-tick warm-up).
SESSION_CONFIGS = {1: 120, 64: 60, 1024: 20}

TARGET_SPEEDUP_AT_64 = 5.0
TARGET_SINGLE_SESSION = 1.0
TOLERANCE = 1e-10

#: Incremental MAD-GAN scoring configuration (64 streams, steady state).
MADGAN_KWARGS = dict(
    epochs=5, hidden_size=12, inversion_steps=40, warm_inversion_steps=10, seed=0
)
INCREMENTAL_SESSIONS = 64
INCREMENTAL_WARMUP_TICKS = 3
INCREMENTAL_TICKS = 10
TARGET_INCREMENTAL_SPEEDUP = 3.0
#: Warm-vs-cold DR score tolerance: the warm path must stay within this
#: absolute gap of a cold rescore (the fixture's decision threshold is ~4.3,
#: so verdicts cannot flip inside this band).
INCREMENTAL_SCORE_TOLERANCE = 0.5
INCREMENTAL_RNG_SEED = 123

#: LSTM-VAE + HMM streaming-vs-offline comparison (same 64-stream fixture).
#: Parity is the gate (verdicts bitwise, scores per the check_parity table);
#: the speedup is reported but not floored.
FAMILY_VAE_KWARGS = dict(epochs=5, hidden_size=12, latent_dim=3, batch_size=32, seed=0)
FAMILY_HMM_KWARGS = dict(n_states=4, n_iter=5, seed=0)

#: Sharded scale sweep: sessions spread over distinct model lanes, served at
#: each worker count with bitwise parity against the single-process scheduler.
SHARD_SWEEP_SESSIONS = 1024
SHARD_SWEEP_TICKS = 8
SHARD_WORKER_COUNTS = (1, 2, 4)
SHARD_LANES = 8
TARGET_SHARD_SPEEDUP_AT_4 = 2.5
#: The 4-worker throughput gate needs 4 cores to be meaningful; below this the
#: sweep still runs (parity + latency percentiles) but the gate is waived and
#: recorded as inapplicable.
SHARD_GATE_MIN_CORES = 4

#: ``--smoke`` fleet size: big enough to spread lanes over workers, small
#: enough for a CI minute.
SMOKE_SESSIONS = 24
SMOKE_TICKS = 6
SMOKE_LANES = 4

#: Observability overhead check: the same streamed fleet served with a live
#: :class:`repro.obs.Observer` (metrics + per-tick spans) vs without one.
OBS_SESSIONS = 64
OBS_TICKS = 40
TARGET_OBS_OVERHEAD_PCT = 5.0

#: Crash-recovery costs (``docs/recovery.md``): snapshot capture + checkpoint
#: file round-trip on a large single-process fleet (normalized per 1k
#: sessions), SIGKILL-to-next-tick respawn latency on a supervised 2-shard
#: fabric, and the steady-state tick overhead of arming the supervisor at
#: the default cadence — gated below ``TARGET_RECOVERY_OVERHEAD_PCT`` %.
RECOVERY_SNAPSHOT_SESSIONS = 256
RECOVERY_SESSIONS = 64
RECOVERY_TICKS = 40
RECOVERY_LANES = 8
RECOVERY_SNAPSHOT_INTERVAL = 32
TARGET_RECOVERY_OVERHEAD_PCT = 5.0


def build_fixture():
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=2, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(**ZOO_KWARGS)
    zoo.fit(cohort)
    return cohort, zoo


def session_traces(cohort, n_sessions: int, n_ticks: int):
    """One raw trace per session, cycling the cohort's test traces."""
    base = [record.features("test") for record in cohort]
    for trace in base:
        if len(trace) < n_ticks:
            raise RuntimeError("test traces are shorter than the benchmark needs")
    return [base[index % len(base)] for index in range(n_sessions)]


def run_baseline(predictor, traces, warmup: int, ticks: int, timer: Timer):
    """Naive per-session re-predict loop; laps ``timer``, returns predictions."""
    history = predictor.history
    rings = [[] for _ in traces]
    for tick in range(warmup):
        for ring, trace in zip(rings, traces):
            ring.append(trace[tick])
            del ring[:-history]
    predictions = np.full((ticks, len(traces)), np.nan)
    with timer.lap():
        for tick in range(ticks):
            for index, (ring, trace) in enumerate(zip(rings, traces)):
                ring.append(trace[warmup + tick])
                del ring[:-history]
                if len(ring) == history:
                    predictions[tick, index] = predictor.predict(np.asarray(ring)[np.newaxis])[0]
    return predictions


def run_streamed(predictor, traces, warmup: int, ticks: int, timer: Timer, obs=None):
    """Scheduler-coalesced incremental serving; laps ``timer``, returns predictions."""
    scheduler = StreamScheduler(obs=obs)
    ids = [f"s{index}" for index in range(len(traces))]
    for session_id in ids:
        scheduler.open_session(session_id, predictor, session_id=session_id)
    for tick in range(warmup):
        scheduler.tick(
            {session_id: trace[tick] for session_id, trace in zip(ids, traces)}
        )
    predictions = np.full((ticks, len(traces)), np.nan)
    with timer.lap():
        for tick in range(ticks):
            outcomes = scheduler.tick(
                {session_id: trace[warmup + tick] for session_id, trace in zip(ids, traces)}
            )
            for index, session_id in enumerate(ids):
                value = outcomes[session_id].prediction
                predictions[tick, index] = np.nan if value is None else value
    return predictions


def bench_session_count(zoo, cohort, n_sessions: int, ticks: int, repeats: int):
    predictor = zoo.aggregate
    warmup = predictor.history
    traces = session_traces(cohort, n_sessions, warmup + ticks)

    if n_sessions == 1:
        # The single-session gate is a hard >= 1.0x floor on two sub-ms
        # timings; extra best-of repetitions keep scheduler noise from
        # failing the run on loaded machines (each pass is only ~50 ms).
        repeats = repeats * 3
    baseline_timer = Timer()
    streamed_timer = Timer()
    baseline_preds = streamed_preds = None
    for _ in range(repeats):
        baseline_preds = run_baseline(predictor, traces, warmup, ticks, baseline_timer)
        streamed_preds = run_streamed(predictor, traces, warmup, ticks, streamed_timer)
    baseline_best = baseline_timer.best
    streamed_best = streamed_timer.best

    gap = float(np.abs(baseline_preds - streamed_preds).max())
    return {
        "ticks": ticks,
        "baseline_seconds": baseline_best,
        "stream_seconds": streamed_best,
        "baseline_ticks_per_sec": ticks / baseline_best,
        "stream_ticks_per_sec": ticks / streamed_best,
        "baseline_tick_latency_ms": baseline_best / ticks * 1e3,
        "stream_tick_latency_ms": streamed_best / ticks * 1e3,
        "session_ticks_per_sec": n_sessions * ticks / streamed_best,
        "speedup": baseline_best / streamed_best,
        "max_prediction_gap": gap,
    }


def incremental_fixture(zoo, cohort):
    """Fitted MAD-GAN detector plus 64 per-stream traces (some spoofed)."""
    from repro.detectors import MADGANDetector

    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = MADGANDetector(**MADGAN_KWARGS)
    detector.fit(train_windows[::2])
    history = detector.sequence_length
    traces = [
        trace.copy()
        for trace in session_traces(
            cohort,
            INCREMENTAL_SESSIONS,
            history + INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS,
        )
    ]
    # Every 8th stream carries a spoofed hyperglycemic level from before the
    # timed span, so verdict parity is checked on a mix of benign and
    # manipulated windows (all far from the decision threshold — the warm
    # path cannot flip them; tests cover the borderline fallback machinery).
    for index in range(0, INCREMENTAL_SESSIONS, 8):
        traces[index][history - 4 :, 0] = 400.0
    return detector, traces


def bench_incremental_scoring(zoo, cohort, repeats: int):
    """Time per-tick MAD-GAN scoring: cold inversion vs warm-started inversion.

    Both passes score identical per-tick window batches after an untimed
    warm-up (the warm pass needs it to seed its carried latents; excluding it
    from both sides makes this a steady-state comparison).  The detector's
    RNG is re-seeded before every pass so cold latent draws are identical
    across passes and repeats; verdicts are asserted identical tick by tick.
    """
    from repro.utils.rng import as_random_state

    detector, traces = incremental_fixture(zoo, cohort)
    history = detector.sequence_length

    def tick_windows(tick):
        return np.stack([trace[tick : tick + history] for trace in traces])

    cold_timer = Timer()
    warm_timer = Timer()

    def run_cold():
        detector._rng = as_random_state(INCREMENTAL_RNG_SEED)
        for tick in range(INCREMENTAL_WARMUP_TICKS):
            detector.scores(tick_windows(tick))
        scores = []
        with cold_timer.lap():
            for tick in range(
                INCREMENTAL_WARMUP_TICKS, INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS
            ):
                scores.append(detector.scores(tick_windows(tick)))
        return scores

    def run_warm():
        detector._rng = as_random_state(INCREMENTAL_RNG_SEED)
        states = [detector.make_inversion_state() for _ in range(len(traces))]
        for tick in range(INCREMENTAL_WARMUP_TICKS):
            detector.scores_incremental(tick_windows(tick), states)
        scores = []
        with warm_timer.lap():
            for tick in range(
                INCREMENTAL_WARMUP_TICKS, INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS
            ):
                scores.append(detector.scores_incremental(tick_windows(tick), states))
        return scores

    worst_gap = 0.0
    for _ in range(repeats):
        cold_scores = run_cold()
        warm_scores = run_warm()
        for cold, warm in zip(cold_scores, warm_scores):
            worst_gap = max(worst_gap, float(np.abs(cold - warm).max()))
            cold_flags = detector.calibrator.predict(cold)
            warm_flags = detector.calibrator.predict(warm)
            if not np.array_equal(cold_flags, warm_flags):
                raise SystemExit(
                    "warm-started MAD-GAN verdicts diverged from the cold path"
                )
    if worst_gap > INCREMENTAL_SCORE_TOLERANCE:
        raise SystemExit(
            f"warm-vs-cold DR score gap {worst_gap:.3f} exceeds the "
            f"{INCREMENTAL_SCORE_TOLERANCE} tolerance"
        )
    cold_best = cold_timer.best
    warm_best = warm_timer.best
    return {
        "n_sessions": INCREMENTAL_SESSIONS,
        "ticks": INCREMENTAL_TICKS,
        "warmup_ticks": INCREMENTAL_WARMUP_TICKS,
        "detector": MADGAN_KWARGS,
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "cold_tick_latency_ms": cold_best / INCREMENTAL_TICKS * 1e3,
        "warm_tick_latency_ms": warm_best / INCREMENTAL_TICKS * 1e3,
        "speedup": cold_best / warm_best,
        "max_score_gap": worst_gap,
        "score_tolerance": INCREMENTAL_SCORE_TOLERANCE,
        "verdict_parity": True,  # asserted above, every tick of every repeat
        "decision_threshold": float(detector.calibrator.threshold_),
    }


def bench_family_scoring(zoo, cohort, repeats: int):
    """Per-tick LSTM-VAE + HMM scoring: streaming state vs offline re-score.

    Drives the same 64 per-stream traces as the MAD-GAN comparison through
    each new window brain two ways — ``scores`` (full window re-score every
    tick) and ``scores_incremental`` (VAE projection ring / HMM partial-alpha
    band) — and asserts the family contract on every tick: verdicts bitwise
    identical for both, HMM scores bitwise, VAE scores within the
    ``check_parity`` tolerance.  Timing is informational (parity is the
    gate): streaming amortizes the per-window recompute across overlapping
    windows, so the ratio is reported alongside the MAD-GAN speedup.
    """
    from check_parity import VAE_STREAM_SCORE_TOLERANCE
    from repro.detectors import GaussianHMMDetector, LSTMVAEDetector

    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    benign = train_windows[::2]
    family = {
        "lstm_vae": LSTMVAEDetector(**FAMILY_VAE_KWARGS).fit(benign),
        "hmm": GaussianHMMDetector(**FAMILY_HMM_KWARGS).fit(benign),
    }
    history = family["lstm_vae"].sequence_length
    traces = [
        trace.copy()
        for trace in session_traces(
            cohort,
            INCREMENTAL_SESSIONS,
            history + INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS,
        )
    ]
    for index in range(0, INCREMENTAL_SESSIONS, 8):
        traces[index][history - 4 :, 0] = 400.0

    def tick_windows(tick):
        return np.stack([trace[tick : tick + history] for trace in traces])

    report = {}
    for name, detector in family.items():
        offline_timer = Timer()
        streamed_timer = Timer()
        tolerance = 0.0 if name == "hmm" else VAE_STREAM_SCORE_TOLERANCE
        worst_gap = 0.0
        for _ in range(repeats):
            offline_scores = []
            for tick in range(INCREMENTAL_WARMUP_TICKS):
                detector.scores(tick_windows(tick))
            with offline_timer.lap():
                for tick in range(
                    INCREMENTAL_WARMUP_TICKS,
                    INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS,
                ):
                    offline_scores.append(detector.scores(tick_windows(tick)))

            states = [detector.make_inversion_state() for _ in traces]
            streamed_scores = []
            for tick in range(INCREMENTAL_WARMUP_TICKS):
                detector.scores_incremental(tick_windows(tick), states)
            with streamed_timer.lap():
                for tick in range(
                    INCREMENTAL_WARMUP_TICKS,
                    INCREMENTAL_WARMUP_TICKS + INCREMENTAL_TICKS,
                ):
                    streamed_scores.append(
                        detector.scores_incremental(tick_windows(tick), states)
                    )

            for offline, streamed in zip(offline_scores, streamed_scores):
                worst_gap = max(worst_gap, float(np.abs(offline - streamed).max()))
                if not np.array_equal(
                    detector.calibrator.predict(offline),
                    detector.calibrator.predict(streamed),
                ):
                    raise SystemExit(
                        f"{name}: streaming verdicts diverged from offline scores"
                    )
        if worst_gap > tolerance:
            raise SystemExit(
                f"{name}: streaming score gap {worst_gap:.3e} exceeds the "
                f"{tolerance:g} tolerance"
            )
        report[name] = {
            "offline_seconds": offline_timer.best,
            "streamed_seconds": streamed_timer.best,
            "offline_tick_latency_ms": offline_timer.best / INCREMENTAL_TICKS * 1e3,
            "streamed_tick_latency_ms": streamed_timer.best / INCREMENTAL_TICKS * 1e3,
            "speedup": offline_timer.best / streamed_timer.best,
            "max_score_gap": worst_gap,
            "score_tolerance": tolerance,
            "verdict_parity": True,  # asserted above, every tick of every repeat
        }
    report["n_sessions"] = INCREMENTAL_SESSIONS
    report["ticks"] = INCREMENTAL_TICKS
    return report


def available_cores() -> int:
    """CPU cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def clone_lane_variants(predictor, n_lanes: int):
    """``n_lanes`` independently-hashed copies of one trained forecaster.

    The sharded fabric places whole lanes — sessions sharing a model state
    hash — so a fleet served by ONE model is one lane and cannot spread
    across workers.  Perturbing each clone's weights by ~1e-9 gives every
    lane a distinct hash without meaningfully changing its forecasts; the
    parity checks below compare sharded vs single-process on the SAME
    clones, so bitwise equality is unaffected by the perturbation.
    """
    from repro.utils.rng import RandomState

    rng = RandomState(BENCH_SEED).derive("lane-variants")
    variants = [predictor]
    for _ in range(1, n_lanes):
        clone = copy.deepcopy(predictor)
        for param in clone.model.parameters():
            param.data = param.data + rng.normal(0.0, 1e-9, size=param.data.shape)
        variants.append(clone)
    if len({variant.state_hash() for variant in variants}) != n_lanes:
        raise RuntimeError("lane variants did not produce distinct state hashes")
    return variants


def run_fleet(scheduler, variants, traces, warmup: int, ticks: int, collect_latencies: bool = False, timer: Timer = None):
    """Serve every trace through ``scheduler``; returns (seconds, predictions, latencies).

    Sessions are assigned round-robin to the model variants so every lane
    carries an equal share of the fleet.  ``collect_latencies`` gathers the
    worker-measured per-shard tick times a :class:`ShardedScheduler` exposes.
    Pass a shared ``timer`` to accumulate best-of laps across calls.
    """
    if timer is None:
        timer = Timer()
    ids = [f"s{index:04d}" for index in range(len(traces))]
    for index, session_id in enumerate(ids):
        scheduler.open_session(
            session_id, variants[index % len(variants)], session_id=session_id
        )
    for tick in range(warmup):
        scheduler.tick(
            {session_id: trace[tick] for session_id, trace in zip(ids, traces)}
        )
    predictions = np.full((ticks, len(traces)), np.nan)
    shard_latencies: dict = {}
    with timer.lap():
        for tick in range(ticks):
            outcomes = scheduler.tick(
                {session_id: trace[warmup + tick] for session_id, trace in zip(ids, traces)}
            )
            if collect_latencies:
                for shard, seconds in scheduler.last_tick_latencies.items():
                    shard_latencies.setdefault(shard, []).append(seconds)
            for index, session_id in enumerate(ids):
                value = outcomes[session_id].prediction
                predictions[tick, index] = np.nan if value is None else value
    return timer.last, predictions, shard_latencies


def bench_shard_sweep(zoo, cohort, repeats: int):
    """Scale sweep: the sharded fabric vs the single-process scheduler.

    Every sharded pass must be bitwise identical to the single-process run
    (the fabric's core contract); timing is best-of ``repeats``.
    """
    from repro.serving import ShardedScheduler

    variants = clone_lane_variants(zoo.aggregate, SHARD_LANES)
    warmup = zoo.aggregate.history
    ticks = SHARD_SWEEP_TICKS
    traces = session_traces(cohort, SHARD_SWEEP_SESSIONS, warmup + ticks)

    single_timer = Timer()
    single_preds = None
    for _ in range(repeats):
        _, single_preds, _ = run_fleet(
            StreamScheduler(), variants, traces, warmup, ticks, timer=single_timer
        )
    single_best = single_timer.best

    sweep = {}
    for n_workers in SHARD_WORKER_COUNTS:
        worker_timer = Timer()
        latencies: dict = {}
        for _ in range(repeats):
            fabric = ShardedScheduler(n_shards=n_workers)
            try:
                _, preds, latencies = run_fleet(
                    fabric, variants, traces, warmup, ticks,
                    collect_latencies=True, timer=worker_timer,
                )
            finally:
                fabric.shutdown()
            if not np.array_equal(preds, single_preds, equal_nan=True):
                raise SystemExit(
                    f"sharded predictions diverged from single-process at "
                    f"{n_workers} workers"
                )
        best = worker_timer.best
        per_shard = {
            str(shard): {
                "p50_ms": float(np.percentile(values, 50) * 1e3),
                "p95_ms": float(np.percentile(values, 95) * 1e3),
                "p99_ms": float(np.percentile(values, 99) * 1e3),
            }
            for shard, values in sorted(latencies.items())
        }
        sweep[str(n_workers)] = {
            "workers": n_workers,
            "seconds": best,
            "ticks_per_sec": ticks / best,
            "session_ticks_per_sec": SHARD_SWEEP_SESSIONS * ticks / best,
            "speedup_vs_single_process": single_best / best,
            "bitwise_parity": True,  # asserted on every pass above
            "shards_engaged": len(per_shard),
            "per_shard_tick_latency_ms": per_shard,
        }
        print(
            f"  {n_workers} worker(s): {ticks / best:.2f} ticks/s "
            f"({single_best / best:.2f}x single-process, "
            f"{len(per_shard)} shard(s) engaged, parity bitwise)"
        )

    cores = available_cores()
    gate_applicable = cores >= SHARD_GATE_MIN_CORES
    speedup_at_4 = sweep["4"]["speedup_vs_single_process"]
    return {
        "n_sessions": SHARD_SWEEP_SESSIONS,
        "ticks": ticks,
        "warmup_ticks": warmup,
        "n_lanes": SHARD_LANES,
        "repeats": repeats,
        "single_process_seconds": single_best,
        "single_process_ticks_per_sec": ticks / single_best,
        "workers": sweep,
        "available_cores": cores,
        "speedup_at_4_workers": speedup_at_4,
        "target_speedup_at_4_workers": TARGET_SHARD_SPEEDUP_AT_4,
        "gate_min_cores": SHARD_GATE_MIN_CORES,
        "gate_applicable": gate_applicable,
        "meets_target": (
            bool(speedup_at_4 >= TARGET_SHARD_SPEEDUP_AT_4) if gate_applicable else None
        ),
        "bitwise_parity": True,
    }


def bench_observability(zoo, cohort, repeats: int):
    """Tick-throughput overhead of a live Observer on the streamed fleet.

    Serves the same ``OBS_SESSIONS``-session fleet twice per repeat — once
    bare, once with an :class:`~repro.obs.Observer` recording metrics and
    per-tick spans — and compares best-of tick throughput.  Predictions must
    be bitwise identical (the inertness contract); the overhead target is
    informational (< ``TARGET_OBS_OVERHEAD_PCT`` %) and recorded in the
    report rather than gated, since it measures pure scheduler dispatch with
    sub-ms ticks — the least favorable (most instrumentation-sensitive)
    workload the fabric has.
    """
    predictor = zoo.aggregate
    warmup = predictor.history
    traces = session_traces(cohort, OBS_SESSIONS, warmup + OBS_TICKS)

    plain_timer = Timer()
    traced_timer = Timer()
    plain_preds = traced_preds = None
    observer = None
    for _ in range(repeats):
        plain_preds = run_streamed(predictor, traces, warmup, OBS_TICKS, plain_timer)
        observer = Observer()
        traced_preds = run_streamed(
            predictor, traces, warmup, OBS_TICKS, traced_timer, obs=observer
        )
    if not np.array_equal(plain_preds, traced_preds, equal_nan=True):
        raise SystemExit("observer perturbed streamed predictions (inertness violation)")

    snapshot = observer.registry.snapshot()
    overhead_pct = (traced_timer.best / plain_timer.best - 1.0) * 100.0
    return {
        "n_sessions": OBS_SESSIONS,
        "ticks": OBS_TICKS,
        "plain_seconds": plain_timer.best,
        "traced_seconds": traced_timer.best,
        "plain_ticks_per_sec": OBS_TICKS / plain_timer.best,
        "traced_ticks_per_sec": OBS_TICKS / traced_timer.best,
        "overhead_pct": overhead_pct,
        "target_overhead_pct": TARGET_OBS_OVERHEAD_PCT,
        "meets_target": bool(overhead_pct < TARGET_OBS_OVERHEAD_PCT),
        "series_recorded": sum(len(section) for section in snapshot.values()),
        "spans_recorded": len(observer.spans),
        "prediction_parity": True,  # asserted above
    }


def bench_recovery(zoo, cohort, repeats: int):
    """Crash-recovery cost triplet (see ``docs/recovery.md``).

    1. **Snapshot cost** — ``StreamScheduler.snapshot()`` plus the
       :class:`~repro.serving.SchedulerCheckpointer` save/load round-trip on
       a warmed ``RECOVERY_SNAPSHOT_SESSIONS``-session fleet, normalized per
       1k sessions.
    2. **Respawn latency** — SIGKILL one worker of a supervised 2-shard
       fabric that holds a snapshot, then time the next ``tick()`` end to
       end: death detection, respawn, snapshot restore, journal replay, and
       the tick itself.
    3. **Steady-state overhead** — the same fleet served sharded with and
       without supervision at ``snapshot_interval=RECOVERY_SNAPSHOT_INTERVAL``
       (the timed window crosses the cadence, so snapshot capture + shipping
       and parent-side journaling are both in the measurement).  Predictions
       must be bitwise identical; the overhead is gated in ``main``.
    """
    import tempfile
    import time

    from repro.serving import SchedulerCheckpointer, ShardedScheduler, SupervisorConfig

    warmup = zoo.aggregate.history
    variants = clone_lane_variants(zoo.aggregate, RECOVERY_LANES)

    # 1. Snapshot capture + persist on a big warmed single-process fleet.
    traces = session_traces(cohort, RECOVERY_SNAPSHOT_SESSIONS, warmup + 4)
    ids = [f"s{index:04d}" for index in range(len(traces))]
    scheduler = StreamScheduler()
    for index, session_id in enumerate(ids):
        scheduler.open_session(
            session_id, variants[index % len(variants)], session_id=session_id
        )
    for tick in range(warmup + 4):
        scheduler.tick({sid: trace[tick] for sid, trace in zip(ids, traces)})
    capture_timer, save_timer, load_timer = Timer(), Timer(), Timer()
    snapshot_bytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        checkpointer = SchedulerCheckpointer(tmp, keep=2)
        for _ in range(repeats):
            with capture_timer.lap():
                snapshot = scheduler.snapshot()
            with save_timer.lap():
                path = checkpointer.save(snapshot)
            with load_timer.lap():
                checkpointer.load()
            snapshot_bytes = path.stat().st_size
    per_1k = 1000.0 / RECOVERY_SNAPSHOT_SESSIONS

    # 2. Respawn-to-first-tick latency on a supervised 2-shard fabric.
    fleet_traces = session_traces(cohort, RECOVERY_SESSIONS, warmup + RECOVERY_TICKS)
    fleet_ids = [f"s{index:04d}" for index in range(len(fleet_traces))]
    respawn_timer = Timer()
    for _ in range(repeats):
        fabric = ShardedScheduler(
            n_shards=2,
            supervision=SupervisorConfig(
                snapshot_interval=RECOVERY_SNAPSHOT_INTERVAL, restart_backoff=0.0
            ),
        )
        try:
            for index, session_id in enumerate(fleet_ids):
                fabric.open_session(
                    session_id,
                    variants[index % len(variants)],
                    session_id=session_id,
                )
            # Run past the snapshot cadence so every worker holds a snapshot.
            for tick in range(warmup + RECOVERY_SNAPSHOT_INTERVAL + 2):
                fabric.tick(
                    {sid: trace[tick % len(trace)] for sid, trace in zip(fleet_ids, fleet_traces)}
                )
            occupied = sorted({handle.shard for handle in fabric._sessions.values()})
            fabric.kill_worker(occupied[0])
            with respawn_timer.lap():
                fabric.tick(
                    {sid: trace[0] for sid, trace in zip(fleet_ids, fleet_traces)}
                )
            if sum(shard.restarts for shard in fabric._shards) < 1:
                raise SystemExit("respawn benchmark: the kill never landed")
        finally:
            fabric.shutdown()

    # 3. Steady-state overhead: supervised vs unsupervised sharded serving.
    plain_timer, supervised_timer = Timer(), Timer()
    plain_preds = supervised_preds = None
    for _ in range(repeats):
        fabric = ShardedScheduler(n_shards=2)
        try:
            _, plain_preds, _ = run_fleet(
                fabric, variants, fleet_traces, warmup, RECOVERY_TICKS,
                timer=plain_timer,
            )
        finally:
            fabric.shutdown()
        fabric = ShardedScheduler(
            n_shards=2,
            supervision=SupervisorConfig(snapshot_interval=RECOVERY_SNAPSHOT_INTERVAL),
        )
        try:
            _, supervised_preds, _ = run_fleet(
                fabric, variants, fleet_traces, warmup, RECOVERY_TICKS,
                timer=supervised_timer,
            )
        finally:
            fabric.shutdown()
    if not np.array_equal(plain_preds, supervised_preds, equal_nan=True):
        raise SystemExit(
            "arming the supervisor perturbed sharded predictions (inertness violation)"
        )
    overhead_pct = (supervised_timer.best / plain_timer.best - 1.0) * 100.0

    return {
        "snapshot": {
            "n_sessions": RECOVERY_SNAPSHOT_SESSIONS,
            "capture_ms": capture_timer.best * 1e3,
            "capture_ms_per_1k_sessions": capture_timer.best * 1e3 * per_1k,
            "save_ms": save_timer.best * 1e3,
            "load_ms": load_timer.best * 1e3,
            "snapshot_bytes": snapshot_bytes,
            "bytes_per_session": snapshot_bytes / RECOVERY_SNAPSHOT_SESSIONS,
        },
        "respawn": {
            "n_sessions": RECOVERY_SESSIONS,
            "n_shards": 2,
            "snapshot_interval": RECOVERY_SNAPSHOT_INTERVAL,
            "respawn_to_first_tick_ms": respawn_timer.best * 1e3,
        },
        "steady_state": {
            "n_sessions": RECOVERY_SESSIONS,
            "ticks": RECOVERY_TICKS,
            "snapshot_interval": RECOVERY_SNAPSHOT_INTERVAL,
            "plain_seconds": plain_timer.best,
            "supervised_seconds": supervised_timer.best,
            "overhead_pct": overhead_pct,
            "target_overhead_pct": TARGET_RECOVERY_OVERHEAD_PCT,
            "meets_target": bool(overhead_pct < TARGET_RECOVERY_OVERHEAD_PCT),
            "prediction_parity": True,  # asserted above
        },
    }


def run_smoke(n_workers: int) -> None:
    """CI smoke: sharded fleet == single-process fleet, bitwise.  No timing."""
    from repro.serving import ShardedScheduler

    print(f"shard smoke: {SMOKE_SESSIONS} sessions, {n_workers} worker(s)...")
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS[:2]]
    cohort = SyntheticOhioT1DM(
        train_days=1, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8),
        train_personalized=False,
        seed=5,
    )
    zoo.fit(cohort)
    variants = clone_lane_variants(zoo.aggregate, SMOKE_LANES)
    warmup = zoo.aggregate.history
    traces = session_traces(cohort, SMOKE_SESSIONS, warmup + SMOKE_TICKS)

    _, single_preds, _ = run_fleet(
        StreamScheduler(), variants, traces, warmup, SMOKE_TICKS
    )
    fabric = ShardedScheduler(n_shards=n_workers)
    try:
        _, sharded_preds, _ = run_fleet(
            fabric, variants, traces, warmup, SMOKE_TICKS
        )
    finally:
        fabric.shutdown()
    if not np.array_equal(sharded_preds, single_preds, equal_nan=True):
        raise SystemExit(
            f"sharded predictions diverged from single-process at {n_workers} workers"
        )
    print(
        f"  {SMOKE_SESSIONS} sessions x {SMOKE_TICKS} ticks over {SMOKE_LANES} "
        f"lanes: sharded == single-process bitwise at {n_workers} worker(s)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serving.json",
        help="where to write the benchmark report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repetitions per configuration; the best run is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="parity-only sharded smoke (CI entry): no timing gates, no report file",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker count for --smoke (ignored in the full benchmark)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    if args.smoke:
        run_smoke(args.workers)
        return

    print("building fixture (cohort + trained aggregate forecaster)...")
    cohort, zoo = build_fixture()

    sessions_report = {}
    worst_gap = 0.0
    for n_sessions, ticks in SESSION_CONFIGS.items():
        print(f"timing {n_sessions} concurrent session(s) x {ticks} ticks...")
        entry = bench_session_count(zoo, cohort, n_sessions, ticks, args.repeats)
        sessions_report[str(n_sessions)] = entry
        worst_gap = max(worst_gap, entry["max_prediction_gap"])
        print(
            f"  baseline {entry['baseline_tick_latency_ms']:.2f} ms/tick, "
            f"streamed {entry['stream_tick_latency_ms']:.2f} ms/tick "
            f"({entry['speedup']:.1f}x, gap {entry['max_prediction_gap']:.2e})"
        )

    print("timing incremental MAD-GAN scoring (warm vs cold inversion, 64 streams)...")
    incremental = bench_incremental_scoring(zoo, cohort, args.repeats)
    print(
        f"  cold {incremental['cold_tick_latency_ms']:.1f} ms/tick, "
        f"warm {incremental['warm_tick_latency_ms']:.1f} ms/tick "
        f"({incremental['speedup']:.1f}x, verdicts identical, "
        f"score gap {incremental['max_score_gap']:.3f})"
    )

    print("timing LSTM-VAE + HMM scoring (streaming state vs offline, 64 streams)...")
    family = bench_family_scoring(zoo, cohort, args.repeats)
    for name in ("lstm_vae", "hmm"):
        entry = family[name]
        print(
            f"  {name}: offline {entry['offline_tick_latency_ms']:.1f} ms/tick, "
            f"streamed {entry['streamed_tick_latency_ms']:.1f} ms/tick "
            f"({entry['speedup']:.1f}x, verdicts bitwise, "
            f"score gap {entry['max_score_gap']:.2e})"
        )

    print(
        f"sweeping sharded serving ({SHARD_SWEEP_SESSIONS} sessions, "
        f"{SHARD_LANES} lanes, workers {SHARD_WORKER_COUNTS})..."
    )
    shard_sweep = bench_shard_sweep(zoo, cohort, args.repeats)
    if not shard_sweep["gate_applicable"]:
        print(
            f"  NOTE: {shard_sweep['available_cores']} core(s) available; the "
            f">= {TARGET_SHARD_SPEEDUP_AT_4:g}x @ 4 workers gate needs "
            f"{SHARD_GATE_MIN_CORES} and is recorded as inapplicable"
        )

    print(
        f"timing observability overhead ({OBS_SESSIONS} sessions, live observer)..."
    )
    observability = bench_observability(zoo, cohort, args.repeats)
    print(
        f"  bare {observability['plain_ticks_per_sec']:.1f} ticks/s, traced "
        f"{observability['traced_ticks_per_sec']:.1f} ticks/s "
        f"({observability['overhead_pct']:+.1f}% overhead, target < "
        f"{TARGET_OBS_OVERHEAD_PCT:g}%, predictions bitwise identical)"
    )

    print(
        f"timing crash recovery (snapshot on {RECOVERY_SNAPSHOT_SESSIONS} sessions, "
        f"respawn + supervised overhead on {RECOVERY_SESSIONS})..."
    )
    recovery = bench_recovery(zoo, cohort, args.repeats)
    print(
        f"  snapshot {recovery['snapshot']['capture_ms_per_1k_sessions']:.1f} ms/1k "
        f"sessions ({recovery['snapshot']['bytes_per_session']:.0f} B/session, save "
        f"{recovery['snapshot']['save_ms']:.1f} ms, load "
        f"{recovery['snapshot']['load_ms']:.1f} ms); respawn-to-first-tick "
        f"{recovery['respawn']['respawn_to_first_tick_ms']:.1f} ms; supervised "
        f"overhead {recovery['steady_state']['overhead_pct']:+.1f}% (target < "
        f"{TARGET_RECOVERY_OVERHEAD_PCT:g}%, predictions bitwise identical)"
    )

    print("checking streaming detector verdict parity (attacked replay)...")
    from check_parity import run_serving_smoke

    smoke = run_serving_smoke(zoo, cohort)
    print(
        f"  verdicts identical to offline predict; stream gap "
        f"{smoke['max_stream_gap']:.2e} over {smoke['tampered_ticks']} tampered ticks"
    )

    speedup_at_64 = sessions_report["64"]["speedup"]
    single_session_speedup = sessions_report["1"]["speedup"]
    report = {
        "benchmark": "serving_stream",
        "config": {
            "patients": ["_".join(map(str, p)) for p in BENCH_PATIENTS],
            "cohort_seed": BENCH_SEED,
            "repeats": args.repeats,
            "shared_model": "aggregate",
            "warmup_ticks": zoo.aggregate.history,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sessions": sessions_report,
        "speedup_at_64": speedup_at_64,
        "target_speedup_at_64": TARGET_SPEEDUP_AT_64,
        "meets_target": bool(speedup_at_64 >= TARGET_SPEEDUP_AT_64),
        "single_session": {
            "speedup": single_session_speedup,
            "target_speedup": TARGET_SINGLE_SESSION,
            "meets_target": bool(single_session_speedup >= TARGET_SINGLE_SESSION),
        },
        "incremental_scoring": {
            **incremental,
            "target_speedup": TARGET_INCREMENTAL_SPEEDUP,
            "meets_target": bool(
                incremental["speedup"] >= TARGET_INCREMENTAL_SPEEDUP
            ),
        },
        # Parity-gated only; see bench_family_scoring's docstring.
        "family_scoring": family,
        "shard_sweep": shard_sweep,
        "observability": observability,
        "recovery": recovery,
        "equivalence": {
            "max_prediction_gap": worst_gap,
            "tolerance": TOLERANCE,
            "within_tolerance": bool(worst_gap <= TOLERANCE),
            "verdict_parity": True,  # run_serving_smoke asserts it above
            "smoke": smoke,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nspeedup at 64 sessions: {speedup_at_64:.1f}x "
        f"(target >= {TARGET_SPEEDUP_AT_64:g}x), "
        f"single session: {single_session_speedup:.2f}x "
        f"(target >= {TARGET_SINGLE_SESSION:g}x), "
        f"incremental scoring: {incremental['speedup']:.1f}x "
        f"(target >= {TARGET_INCREMENTAL_SPEEDUP:g}x), "
        f"shard sweep at 4 workers: "
        f"{shard_sweep['speedup_at_4_workers']:.2f}x vs single-process "
        f"(gate {'on' if shard_sweep['gate_applicable'] else 'waived: '}"
        f"{'' if shard_sweep['gate_applicable'] else str(shard_sweep['available_cores']) + ' core(s)'}"
        f") -> {args.output}"
    )
    if not report["equivalence"]["within_tolerance"]:
        raise SystemExit("streamed predictions diverged from the baseline beyond 1e-10")
    if not report["meets_target"]:
        raise SystemExit("serving speedup target not met")
    if not report["single_session"]["meets_target"]:
        raise SystemExit("single-session fast path fell below the naive loop")
    if not report["incremental_scoring"]["meets_target"]:
        raise SystemExit("incremental MAD-GAN scoring speedup target not met")
    if shard_sweep["gate_applicable"] and not shard_sweep["meets_target"]:
        raise SystemExit("sharded serving speedup target not met at 4 workers")
    if not recovery["steady_state"]["meets_target"]:
        raise SystemExit(
            "supervised steady-state overhead exceeded "
            f"{TARGET_RECOVERY_OVERHEAD_PCT:g}% at snapshot_interval="
            f"{RECOVERY_SNAPSHOT_INTERVAL}"
        )


if __name__ == "__main__":
    main()
