#!/usr/bin/env python
"""Summarize a telemetry JSONL export — or gate one end-to-end with --smoke.

The serving fabric's :class:`repro.obs.Observer` exports runs as JSON Lines
(``Observer.export_jsonl``): one ``meta`` line, then ``counter`` / ``gauge`` /
``histogram`` lines (the deterministic series), ``timing`` lines (wall-clock
channel, never part of any bitwise comparison), and ``span`` / ``event`` trace
lines.  This script renders that file back into the shapes the repository
reports elsewhere — most importantly the per-detector chaos-harness rollup
(``ReplayReport.rollup``): TP/FP/TN/FN, false-alarm rates, detection rate, and
mean detection latency, all recomputed purely from the exported series.

Usage::

    PYTHONPATH=src python scripts/obs_report.py TRACE.jsonl
    PYTHONPATH=src python scripts/obs_report.py --smoke [--out TRACE.jsonl]

``--smoke`` builds the tiny parity fixture, runs the telemetry gates from
``scripts/check_parity.py`` (observer inertness; sharded == single-process
metric snapshots at 1/2/4 shards), then drives one traced replay on a 2-shard
fabric, exports its telemetry, and asserts the rollup recomputed from the
JSONL matches ``ReplayReport.rollup`` bitwise.  Exit status is non-zero on
any violation — CI runs this and uploads the trace as an artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from collections import Counter
from typing import Dict, Iterable, List, Tuple

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPTS_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)


# ------------------------------------------------------------------- parsing
def load_records(path: str) -> List[dict]:
    """Parse a JSONL export into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _labels(record: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(record.get("labels", {}).items()))


def counters(records: Iterable[dict], name: str) -> Dict[Tuple[Tuple[str, str], ...], float]:
    """All counter series of one name, keyed by their sorted label tuples."""
    return {
        _labels(record): record["value"]
        for record in records
        if record.get("type") == "counter" and record.get("name") == name
    }


def histogram(records: Iterable[dict], name: str, **labels: str) -> dict:
    """The single histogram record matching ``name`` and ``labels`` (or None)."""
    wanted = tuple(sorted(labels.items()))
    for record in records:
        if record.get("type") == "histogram" and record.get("name") == name:
            if _labels(record) == wanted:
                return record
    return None


# -------------------------------------------------------------- rollup shape
def detector_names(records: Iterable[dict]) -> List[str]:
    names = {
        record["labels"]["detector"]
        for record in records
        if record.get("type") == "counter"
        and record.get("name") == "replay.verdicts_total"
    }
    return sorted(names)


def rollup_from_series(records: List[dict], detector: str) -> Dict[str, float]:
    """Recompute ``ReplayReport.rollup(detector)`` from exported series alone.

    ``replay.verdicts_total{detector,truth,fault,flagged}`` carries the full
    tick-level confusion (``flagged="degraded"`` ticks are scored but never
    alarms, matching the report's truthiness test), and the episode view comes
    from ``replay.episodes_total`` plus the ``replay.detection_latency_ticks``
    histogram — latencies are integral tick counts, so ``sum / count``
    reproduces the report's mean bitwise.
    """
    tp = fp = tn = fn = 0.0
    benign = alarms = faulted = fault_alarms = 0.0
    for labels, value in counters(records, "replay.verdicts_total").items():
        fields = dict(labels)
        if fields["detector"] != detector:
            continue
        attacked = fields["truth"] == "attacked"
        flagged = fields["flagged"] == "yes"
        if attacked:
            tp += value if flagged else 0.0
            fn += 0.0 if flagged else value
        else:
            fp += value if flagged else 0.0
            tn += 0.0 if flagged else value
            benign += value
            alarms += value if flagged else 0.0
            if fields["fault"] == "yes":
                faulted += value
                fault_alarms += value if flagged else 0.0

    detected = missed = 0.0
    for labels, value in counters(records, "replay.episodes_total").items():
        fields = dict(labels)
        if fields["detector"] != detector:
            continue
        if fields["detected"] == "yes":
            detected += value
        else:
            missed += value
    episodes = detected + missed

    latency = histogram(records, "replay.detection_latency_ticks", detector=detector)
    if latency is not None and latency["count"]:
        mean_latency = latency["sum"] / latency["count"]
    else:
        mean_latency = float("nan")

    return {
        "true_positives": tp,
        "false_positives": fp,
        "true_negatives": tn,
        "false_negatives": fn,
        "false_positive_rate": fp / (fp + tn) if (fp + tn) else 0.0,
        "false_alarm_rate_benign": alarms / benign if benign else 0.0,
        "false_alarm_rate_faulted": fault_alarms / faulted if faulted else 0.0,
        "detection_rate": detected / episodes if episodes else float("nan"),
        "mean_detection_latency": mean_latency,
    }


def rollups_match(left: Dict[str, float], right: Dict[str, float]) -> bool:
    """Bitwise dict equality with NaN == NaN (rates are NaN with no episodes)."""
    if left.keys() != right.keys():
        return False
    return all(
        value == right[key]
        or (
            isinstance(value, float)
            and math.isnan(value)
            and math.isnan(right[key])
        )
        for key, value in left.items()
    )


# ----------------------------------------------------------------- rendering
def render(records: List[dict]) -> None:
    """Print the human summary: run meta, series totals, stages, rollups."""
    by_type = Counter(record.get("type") for record in records)
    meta = next((r for r in records if r.get("type") == "meta"), {})
    meta_fields = {k: v for k, v in meta.items() if k != "type"}
    if meta_fields:
        print("meta:", json.dumps(meta_fields, sort_keys=True))
    print(
        "series: "
        f"{by_type.get('counter', 0)} counters, {by_type.get('gauge', 0)} gauges, "
        f"{by_type.get('histogram', 0)} histograms, {by_type.get('timing', 0)} timings"
    )
    print(
        f"trace: {by_type.get('span', 0)} spans, {by_type.get('event', 0)} events"
    )

    stage_counts = Counter(
        record["stage"] for record in records if record.get("type") == "span"
    )
    if stage_counts:
        stages = ", ".join(
            f"{stage}={count}" for stage, count in sorted(stage_counts.items())
        )
        print(f"span stages: {stages}")
    event_counts = Counter(
        record["kind"] for record in records if record.get("type") == "event"
    )
    if event_counts:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(event_counts.items())
        )
        print(f"event kinds: {kinds}")

    top = Counter()
    for record in records:
        if record.get("type") == "counter":
            top[record["name"]] += record["value"]
    if top:
        print("counter totals:")
        for name, total in sorted(top.items()):
            print(f"  {name}: {total:g}")

    for detector in detector_names(records):
        print(f"rollup[{detector}]:")
        for key, value in rollup_from_series(records, detector).items():
            print(f"  {key}: {value:g}")


# --------------------------------------------------------------------- smoke
def run_smoke(out_path: str) -> int:
    """Tiny traced replay + the telemetry gates; returns a process exit code."""
    if SCRIPTS_DIR not in sys.path:
        sys.path.insert(0, SCRIPTS_DIR)
    import check_parity

    from repro.detectors import KNNDistanceDetector
    from repro.obs import Observer
    from repro.serving import AttackEpisode, OnlineAttacker, StreamReplayer

    print("building tiny fixture...")
    cohort, zoo = check_parity.build_fixture()

    print("running telemetry gates (inertness + merge determinism)...")
    try:
        gates = check_parity.run_obs_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"OBS GATE VIOLATION: {error}")
        return 1
    print(
        f"  observer inert; {gates['n_series']} series bitwise identical at "
        f"shard counts {gates['shard_counts']}"
    )

    print("running traced replay on a 2-shard fabric...")
    records = list(cohort)
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])
    observer = Observer()
    attacker = OnlineAttacker(
        {records[0].label: [AttackEpisode(start=13, duration=12)]}, obs=observer
    )
    replayer = StreamReplayer(
        zoo,
        detectors={"knn": (detector, "sample")},
        attacker=attacker,
        n_shards=2,
        obs=observer,
    )
    report = replayer.replay(cohort, split="test", max_ticks=40)
    lines = observer.export_jsonl(
        out_path, meta={"fixture": "check_parity", "n_shards": 2, "detector": "knn"}
    )
    print(f"  exported {lines} JSONL lines -> {out_path}")

    exported = load_records(out_path)
    recomputed = rollup_from_series(exported, "knn")
    expected = report.rollup("knn")
    if not rollups_match(recomputed, expected):
        print("OBS GATE VIOLATION: JSONL rollup diverged from ReplayReport.rollup")
        print(f"  from series: {recomputed}")
        print(f"  from report: {expected}")
        return 1
    print("  JSONL rollup == ReplayReport.rollup bitwise")
    render(exported)
    print("obs smoke passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="telemetry JSONL export to summarize")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny traced replay and telemetry gates instead",
    )
    parser.add_argument(
        "--out",
        default="obs_trace.jsonl",
        help="where --smoke writes the JSONL trace (default: obs_trace.jsonl)",
    )
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(args.out)
    if not args.trace:
        parser.error("provide a JSONL trace path or --smoke")
    render(load_records(args.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
