"""Build and pickle a small pipeline state for fast iteration during development."""
import pickle, time
from repro.data import generate_cohort
from repro.glucose import GlucoseModelZoo
from repro.attacks import AttackCampaign

t0 = time.time()
cohort = generate_cohort(train_days=5, test_days=2, seed=7)
zoo = GlucoseModelZoo(predictor_kwargs=dict(epochs=5, hidden_size=12), train_personalized=True, seed=3)
zoo.fit(cohort)
train_campaign = AttackCampaign(zoo, stride=4).run_cohort(cohort, split="train")
test_campaign = AttackCampaign(zoo, stride=3).run_cohort(cohort, split="test")
with open("/tmp/pipeline_cache.pkl", "wb") as fh:
    pickle.dump(dict(cohort=cohort, zoo=zoo, train_campaign=train_campaign, test_campaign=test_campaign), fh)
print("cached in", round(time.time() - t0, 1), "s")
import numpy as np
for rec in cohort:
    cgm = rec.cgm('train')
    normal = np.mean((cgm >= 70) & (cgm <= 180)); hyper = np.mean(cgm > 180)
    print(rec.label, rec.profile.control_level.ljust(10), 'normal%', round(normal*100,1), 'hyper%', round(hyper*100,1))
for label, s in test_campaign.summaries().items():
    print(label, 'eligible', s.n_eligible, '/', s.n_windows, 'succ%', round(100*s.success_rate,1) if s.n_eligible else 'n/a')
