"""Training throughput benchmark: fused training engine vs the autodiff graph.

Model fitting was the last graph-bound subsystem: every inference hot path is
batched and graph-free, but the paper's pipeline retrains an LSTM glucose
predictor per patient/cohort and a MAD-GAN per detector configuration, so
training dominates wall-clock for any scenario sweep.  This benchmark times
both fits under their two engines:

* ``graph`` — the reference twin: ``model(Tensor(x))``, ``loss.backward()``
  through the reverse-mode autodiff graph (``use_fast_path=False``).
* ``fused`` — the hand-written training engine (``use_fast_path=True``):
  analytic truncated-BPTT backward passes over the fused 4-gate matmuls with
  cached forward activations and preallocated gradient buffers
  (``repro.nn.fused.FusedTrainer``, ``Module.fused_grads``).

Both engines consume identical data, shuffling, and latent draws under a
fixed seed, so their per-epoch loss curves must match **step for step**
(asserted within ``LOSS_CURVE_TOLERANCE``) and one-batch fused gradients must
match the graph within ``GRADIENT_TOLERANCE`` (1e-8) — the same pinning
discipline as every other fast path in the repo (see docs/architecture.md).

Exit criteria: predictor-fit epoch throughput >= 3x the graph path, MAD-GAN
fit epoch throughput >= 2.5x, gradients within 1e-8, loss curves step-for-step.
Writes ``BENCH_train.json`` next to the repo root.  Usage::

    PYTHONPATH=src python scripts/bench_train.py [--output PATH] [--repeats N]
    PYTHONPATH=src python scripts/bench_train.py --smoke   # parity only, no gates

``--smoke`` runs the gradient and loss-curve parity assertions on a tiny
configuration without timing gates (CI uses it as a fast tripwire).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_parity import (
    GRADIENT_TOLERANCE,
    LOSS_CURVE_TOLERANCE,
    assert_loss_curves_match as _assert_loss_curves_match,
    fused_vs_graph_gradient_gap,
)
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.detectors import LSTMVAEDetector, MADGANDetector
from repro.glucose import GlucoseModelZoo
from repro.glucose.predictor import GlucosePredictor
from repro.obs import Timer

BENCH_PATIENTS = [("A", 5), ("A", 0), ("A", 2)]
BENCH_SEED = 17

#: Predictor fit configuration (the paper's per-patient forecaster budget,
#: scaled to a few CPU seconds).
PREDICTOR_KWARGS = dict(epochs=6, hidden_size=16, batch_size=64, seed=11)
#: MAD-GAN fit configuration.  inversion_steps is deliberately small so the
#: post-training calibration (already fast-pathed in PR 2) stays a sliver of
#: the measured fit time — the gate measures the GAN training loop.
MADGAN_KWARGS = dict(
    epochs=6, hidden_size=12, batch_size=64, inversion_steps=5, seed=4
)
#: LSTM-VAE fit configuration (encoder/decoder LSTMs + the ``vae_elbo``
#: fused loss head; both engines consume the same per-step eps draws).
VAE_KWARGS = dict(epochs=4, hidden_size=12, latent_dim=3, batch_size=64, seed=2)

TARGET_PREDICTOR_SPEEDUP = 3.0
TARGET_MADGAN_SPEEDUP = 2.5
# Parity tolerances are defined once, in check_parity.py: 1e-8 on gradients,
# and step-for-step loss curves within 1e-6 (individual steps agree near
# machine precision; the budget covers benign fp accumulation compounding
# over hundreds of Adam updates — measured ~3e-9 after 6 GAN epochs here).


def build_fixture(train_days: int = 2):
    profiles = [make_patient_profile(subset, pid) for subset, pid in BENCH_PATIENTS]
    cohort = SyntheticOhioT1DM(
        train_days=train_days, test_days=1, seed=BENCH_SEED, profiles=profiles
    ).generate()
    dataset = GlucoseModelZoo().dataset
    windows, targets, _ = dataset.from_cohort(cohort, split="train")
    return windows, targets


def assert_loss_curves_match(graph_losses, fused_losses, label: str) -> float:
    """check_parity's shared step-for-step comparison, as a benchmark gate."""
    try:
        return _assert_loss_curves_match(graph_losses, fused_losses, label)
    except AssertionError as error:
        raise SystemExit(str(error)) from None


def check_gradient_parity(windows, targets) -> float:
    """One-batch fused gradients vs the autodiff graph, across the full stack.

    Delegates the actual comparison to ``check_parity.py``'s shared
    :func:`fused_vs_graph_gradient_gap` (one parity recipe for both scripts);
    this wrapper only builds a briefly-trained forecaster to compare on.
    """
    predictor = GlucosePredictor(**{**PREDICTOR_KWARGS, "epochs": 1})
    scaler_fit = predictor.fit(windows[:96], targets[:96])  # fit scaler + warm weights
    scaled = predictor._clip_scaled(scaler_fit.scaler.transform(windows[:64]))
    batch_targets = scaler_fit.scaler.scale_target(targets[:64]).reshape(-1, 1)
    worst = fused_vs_graph_gradient_gap(predictor.model, scaled, batch_targets)
    if worst > GRADIENT_TOLERANCE:
        raise SystemExit(
            f"fused gradients diverged from the autodiff graph: {worst:.3e} > "
            f"{GRADIENT_TOLERANCE:g}"
        )
    return worst


def bench_predictor(windows, targets, repeats: int, kwargs=None):
    kwargs = dict(PREDICTOR_KWARGS if kwargs is None else kwargs)
    epochs = kwargs["epochs"]
    best = {}
    histories = {}
    for fast in (False, True):
        timer = Timer()
        for _ in range(repeats):
            predictor = GlucosePredictor(use_fast_path=fast, **kwargs)
            with timer.lap():
                predictor.fit(windows, targets)
        best[fast] = timer.best
        histories[fast] = list(predictor.history_.epoch_losses)

    gap = assert_loss_curves_match(histories[False], histories[True], "predictor fit")
    return {
        "n_windows": int(len(windows)),
        "config": kwargs,
        "graph_seconds": best[False],
        "fused_seconds": best[True],
        "graph_epochs_per_sec": epochs / best[False],
        "fused_epochs_per_sec": epochs / best[True],
        "speedup": best[False] / best[True],
        "loss_curve_gap": gap,
        "epoch_losses": histories[True],
    }


def bench_madgan(windows, repeats: int, kwargs=None):
    kwargs = dict(MADGAN_KWARGS if kwargs is None else kwargs)
    epochs = kwargs["epochs"]
    best = {}
    histories = {}
    for fast in (False, True):
        timer = Timer()
        for _ in range(repeats):
            detector = MADGANDetector(use_fast_path=fast, **kwargs)
            with timer.lap():
                detector.fit(windows)
        best[fast] = timer.best
        histories[fast] = detector.history_

    generator_gap = assert_loss_curves_match(
        histories[False].generator_losses,
        histories[True].generator_losses,
        "MAD-GAN generator fit",
    )
    discriminator_gap = assert_loss_curves_match(
        histories[False].discriminator_losses,
        histories[True].discriminator_losses,
        "MAD-GAN discriminator fit",
    )
    return {
        "n_windows": int(len(windows)),
        "config": kwargs,
        "graph_seconds": best[False],
        "fused_seconds": best[True],
        "graph_epochs_per_sec": epochs / best[False],
        "fused_epochs_per_sec": epochs / best[True],
        "speedup": best[False] / best[True],
        "generator_loss_gap": generator_gap,
        "discriminator_loss_gap": discriminator_gap,
    }


def bench_vae(windows, repeats: int, kwargs=None):
    """LSTM-VAE fit under both engines: timing + ELBO loss-curve parity."""
    kwargs = dict(VAE_KWARGS if kwargs is None else kwargs)
    epochs = kwargs["epochs"]
    best = {}
    histories = {}
    for fast in (False, True):
        timer = Timer()
        for _ in range(repeats):
            detector = LSTMVAEDetector(use_fast_path=fast, **kwargs)
            with timer.lap():
                detector.fit(windows)
        best[fast] = timer.best
        histories[fast] = list(detector.history_)

    gap = assert_loss_curves_match(histories[False], histories[True], "LSTM-VAE fit")
    return {
        "n_windows": int(len(windows)),
        "config": kwargs,
        "graph_seconds": best[False],
        "fused_seconds": best[True],
        "graph_epochs_per_sec": epochs / best[False],
        "fused_epochs_per_sec": epochs / best[True],
        "speedup": best[False] / best[True],
        "loss_curve_gap": gap,
    }


def run_smoke() -> None:
    """Parity-only pass on a tiny configuration (no timing gates)."""
    windows, targets = build_fixture(train_days=1)
    gradient_gap = check_gradient_parity(windows, targets)
    print(f"  fused-vs-graph gradient gap: {gradient_gap:.3e} (tolerance 1e-8)")
    predictor = bench_predictor(
        windows[:256], targets[:256], repeats=1,
        kwargs={**PREDICTOR_KWARGS, "epochs": 2},
    )
    print(f"  predictor loss curves match step-for-step (gap {predictor['loss_curve_gap']:.3e})")
    madgan = bench_madgan(
        windows[:192], repeats=1, kwargs={**MADGAN_KWARGS, "epochs": 2}
    )
    print(
        "  MAD-GAN loss curves match step-for-step "
        f"(gen {madgan['generator_loss_gap']:.3e}, "
        f"disc {madgan['discriminator_loss_gap']:.3e})"
    )
    vae = bench_vae(windows[:192], repeats=1, kwargs={**VAE_KWARGS, "epochs": 2})
    print(
        f"  LSTM-VAE ELBO loss curves match step-for-step "
        f"(gap {vae['loss_curve_gap']:.3e})"
    )
    print("training parity smoke passed")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_train.json",
        help="where to write the benchmark report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per engine; the best run is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the gradient/loss-curve parity checks (no timing gates)",
    )
    args = parser.parse_args()
    if args.smoke:
        print("running fused-training parity smoke...")
        run_smoke()
        return
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    print("building fixture (3-patient cohort training windows)...")
    windows, targets = build_fixture()
    print(f"  {len(windows)} windows of shape {windows.shape[1:]}")

    print("checking one-batch fused-vs-graph gradient parity...")
    gradient_gap = check_gradient_parity(windows, targets)
    print(f"  max gradient gap: {gradient_gap:.3e} (tolerance {GRADIENT_TOLERANCE:g})")

    print(f"timing predictor fit ({PREDICTOR_KWARGS['epochs']} epochs, graph vs fused)...")
    predictor = bench_predictor(windows, targets, args.repeats)
    print(
        f"  graph {predictor['graph_seconds']:.2f}s, fused "
        f"{predictor['fused_seconds']:.2f}s ({predictor['speedup']:.2f}x, "
        f"loss curves step-for-step, gap {predictor['loss_curve_gap']:.2e})"
    )

    print(f"timing MAD-GAN fit ({MADGAN_KWARGS['epochs']} epochs, graph vs fused)...")
    madgan = bench_madgan(windows, args.repeats)
    print(
        f"  graph {madgan['graph_seconds']:.2f}s, fused "
        f"{madgan['fused_seconds']:.2f}s ({madgan['speedup']:.2f}x, "
        f"loss curves step-for-step)"
    )

    print(f"timing LSTM-VAE fit ({VAE_KWARGS['epochs']} epochs, graph vs fused)...")
    vae = bench_vae(windows, args.repeats)
    print(
        f"  graph {vae['graph_seconds']:.2f}s, fused "
        f"{vae['fused_seconds']:.2f}s ({vae['speedup']:.2f}x, "
        f"loss curves step-for-step, gap {vae['loss_curve_gap']:.2e})"
    )

    report = {
        "benchmark": "fused_training",
        "config": {
            "patients": ["_".join(map(str, p)) for p in BENCH_PATIENTS],
            "cohort_seed": BENCH_SEED,
            "repeats": args.repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "gradient_parity": {
            "max_gap": gradient_gap,
            "tolerance": GRADIENT_TOLERANCE,
            "within_tolerance": bool(gradient_gap <= GRADIENT_TOLERANCE),
        },
        "predictor_fit": {
            **predictor,
            "target_speedup": TARGET_PREDICTOR_SPEEDUP,
            "meets_target": bool(predictor["speedup"] >= TARGET_PREDICTOR_SPEEDUP),
        },
        "madgan_fit": {
            **madgan,
            "target_speedup": TARGET_MADGAN_SPEEDUP,
            "meets_target": bool(madgan["speedup"] >= TARGET_MADGAN_SPEEDUP),
        },
        # The VAE fit is parity-gated only (loss curves step-for-step); its
        # timing is informational — the ELBO loop shares the fused LSTM
        # kernels already speed-gated by the predictor and MAD-GAN fits.
        "vae_fit": vae,
        "loss_curve_tolerance": LOSS_CURVE_TOLERANCE,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\npredictor fit: {predictor['speedup']:.2f}x "
        f"(target >= {TARGET_PREDICTOR_SPEEDUP:g}x), "
        f"MAD-GAN fit: {madgan['speedup']:.2f}x "
        f"(target >= {TARGET_MADGAN_SPEEDUP:g}x) -> {args.output}"
    )
    if not report["predictor_fit"]["meets_target"]:
        raise SystemExit("predictor-fit speedup target not met")
    if not report["madgan_fit"]["meets_target"]:
        raise SystemExit("MAD-GAN-fit speedup target not met")


if __name__ == "__main__":
    main()
