"""Fast parity smoke check for the batched attack engine.

Asserts, on a tiny cohort, that every explorer's lockstep ``search_batch``
reproduces the sequential per-window reference exactly (same eligibility,
success, paths, query counts, and adversarial windows) and that the inference
fast path stays within its 1e-10 regression tolerance.  This is the cheap
tripwire between "every PR runs the full benchmark" and "parity silently
regresses": it is wired into the tier-1 suite (``tests/test_explorer_parity.py``
imports :func:`run_checks`) and can be run standalone::

    PYTHONPATH=src python scripts/check_parity.py

Exit status is non-zero on any parity violation.
"""

from __future__ import annotations

import sys
from typing import Dict, Sequence

import numpy as np

from repro.attacks import BeamExplorer, EvasionAttack, GreedyExplorer, RandomExplorer
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo, Scenario

PREDICTION_TOLERANCE = 1e-10

EXPLORER_FACTORIES = {
    "greedy": lambda seed: GreedyExplorer(max_depth=2),
    "beam": lambda seed: BeamExplorer(beam_width=2, max_depth=2),
    "random": lambda seed: RandomExplorer(max_depth=2, n_walks=4, seed=seed),
}


def build_fixture():
    """Two-patient cohort and an aggregate-only zoo, trained with a tiny budget."""
    profiles = [make_patient_profile("A", 5), make_patient_profile("A", 2)]
    cohort = SyntheticOhioT1DM(train_days=1, test_days=1, seed=7, profiles=profiles).generate()
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8), train_personalized=False, seed=3
    )
    zoo.fit(cohort)
    return cohort, zoo


def _compare_results(batched, sequential) -> None:
    """Raise AssertionError unless two AttackResult lists are equivalent."""
    assert len(batched) == len(sequential), "result count mismatch"
    for left, right in zip(batched, sequential):
        assert left.eligible == right.eligible, "eligibility mismatch"
        assert left.success == right.success, "success mismatch"
        assert left.path == right.path, f"path mismatch: {left.path} != {right.path}"
        assert left.queries == right.queries, (
            f"query-count mismatch: {left.queries} != {right.queries}"
        )
        np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
        assert abs(left.adversarial_prediction - right.adversarial_prediction) <= (
            PREDICTION_TOLERANCE
        ), "adversarial prediction drifted beyond tolerance"


def run_checks(
    zoo: GlucoseModelZoo,
    cohort,
    seeds: Sequence[int] = (0, 1, 2),
    stride: int = 10,
    max_windows: int = 8,
) -> Dict[str, dict]:
    """Run every explorer's batched-vs-sequential parity check on real windows.

    Returns a report dict; raises AssertionError on the first violation.
    """
    record = next(iter(cohort))
    windows, _, _ = zoo.dataset.from_record(record, "test")
    windows = windows[::stride][:max_windows]
    if len(windows) == 0:
        raise RuntimeError("fixture produced no test windows")
    scenarios = [
        Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING
        for index in range(len(windows))
    ]
    predictor = zoo.model_for(record.label)

    fast = predictor.predict(windows)
    graph = predictor.predict_graph(windows)
    max_gap = float(np.abs(fast - graph).max())
    assert max_gap <= PREDICTION_TOLERANCE, (
        f"fast path diverged from the autodiff path: {max_gap:.3e}"
    )

    report: Dict[str, dict] = {"max_prediction_gap": max_gap, "n_windows": len(windows)}
    for name, factory in EXPLORER_FACTORIES.items():
        report[name] = {}
        for seed in seeds:
            batched = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=True
            )
            sequential = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=False
            )
            _compare_results(batched, sequential)
            report[name][seed] = {
                "n_eligible": sum(result.eligible for result in batched),
                "n_success": sum(result.success for result in batched),
                "total_queries": sum(result.queries for result in batched),
            }
    return report


def main() -> int:
    print("building tiny fixture...")
    cohort, zoo = build_fixture()
    print("running parity checks (greedy, beam, random x 3 seeds)...")
    try:
        report = run_checks(zoo, cohort)
    except AssertionError as error:
        print(f"PARITY VIOLATION: {error}")
        return 1
    print(f"  max |fast - graph| prediction gap: {report['max_prediction_gap']:.3e}")
    for name in EXPLORER_FACTORIES:
        per_seed = report[name]
        queries = sorted(stats["total_queries"] for stats in per_seed.values())
        print(f"  {name}: parity ok across seeds (query totals {queries})")
    print("all parity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
