"""Fast parity smoke check for the batched attack engine and the serving path.

Asserts, on a tiny cohort, that every explorer's lockstep ``search_batch``
reproduces the sequential per-window reference exactly (same eligibility,
success, paths, query counts, and adversarial windows), that the inference
fast path stays within its 1e-10 regression tolerance, that the fused
training engine's hand-written gradients match the autodiff graph within
1e-8 with step-for-step matching fixed-seed loss curves
(:func:`run_training_parity`), and — via :func:`run_serving_smoke` — that
the streaming serving subsystem (scheduler + incremental recurrent state +
online attacker + streaming detectors) matches the offline fast path on a
live replay: per-tick predictions within 1e-10 of ``predict`` on the
delivered windows and detector verdicts identical to the offline
``predict``.  :func:`run_chaos_smoke` additionally drives the chaos-replay
scenario suite (benign sensor faults, malformed-sample ingress, attack
campaigns, churn + device clocks) on the same tiny fixture and asserts every
robustness gate, and :func:`run_detector_family_smoke` admits the LSTM-VAE +
HMM window brains into the fabric: streaming verdicts bitwise equal to the
offline ``predict`` and sharded replays bitwise equal to single-process at
1/2/4 shards.  This is the cheap tripwire between "every PR runs the full
benchmark" and "parity silently regresses": it is wired into the tier-1
suite (``tests/test_explorer_parity.py`` imports :func:`run_checks`,
``tests/test_serving.py`` imports :func:`run_serving_smoke`,
``tests/test_nn_fused.py`` imports :func:`run_training_parity`) and can be
run standalone::

    PYTHONPATH=src python scripts/check_parity.py

Exit status is non-zero on any parity violation.
"""

from __future__ import annotations

import sys
from typing import Dict, Sequence

import numpy as np

from repro.attacks import BeamExplorer, EvasionAttack, GreedyExplorer, RandomExplorer
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo, Scenario

PREDICTION_TOLERANCE = 1e-10
GRADIENT_TOLERANCE = 1e-8
#: Per-epoch losses of a fixed-seed fused fit vs the graph fit; individual
#: steps agree near machine precision, the budget covers benign accumulation.
LOSS_CURVE_TOLERANCE = 1e-6
#: LSTM-VAE streaming scores vs offline ``scores``: the offline path batches
#: N windows per BLAS call while streaming scores one window per tick, and
#: BLAS rounds differently per batch shape, so scores agree to ~1e-15 but not
#: bitwise.  Verdicts ARE bitwise (the threshold comparison absorbs the
#: rounding), and so are calls with identical batch composition — which is
#: why the sharded fabric still reproduces VAE scores bit for bit.  The HMM
#: uses only broadcast-reduce arithmetic and is bitwise everywhere.
VAE_STREAM_SCORE_TOLERANCE = 1e-12

EXPLORER_FACTORIES = {
    "greedy": lambda seed: GreedyExplorer(max_depth=2),
    "beam": lambda seed: BeamExplorer(beam_width=2, max_depth=2),
    "random": lambda seed: RandomExplorer(max_depth=2, n_walks=4, seed=seed),
}


def build_fixture():
    """Two-patient cohort and an aggregate-only zoo, trained with a tiny budget."""
    profiles = [make_patient_profile("A", 5), make_patient_profile("A", 2)]
    cohort = SyntheticOhioT1DM(train_days=1, test_days=1, seed=7, profiles=profiles).generate()
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8), train_personalized=False, seed=3
    )
    zoo.fit(cohort)
    return cohort, zoo


def _compare_results(batched, sequential) -> None:
    """Raise AssertionError unless two AttackResult lists are equivalent."""
    assert len(batched) == len(sequential), "result count mismatch"
    for left, right in zip(batched, sequential):
        assert left.eligible == right.eligible, "eligibility mismatch"
        assert left.success == right.success, "success mismatch"
        assert left.path == right.path, f"path mismatch: {left.path} != {right.path}"
        assert left.queries == right.queries, (
            f"query-count mismatch: {left.queries} != {right.queries}"
        )
        np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
        assert abs(left.adversarial_prediction - right.adversarial_prediction) <= (
            PREDICTION_TOLERANCE
        ), "adversarial prediction drifted beyond tolerance"


def run_checks(
    zoo: GlucoseModelZoo,
    cohort,
    seeds: Sequence[int] = (0, 1, 2),
    stride: int = 10,
    max_windows: int = 8,
) -> Dict[str, dict]:
    """Run every explorer's batched-vs-sequential parity check on real windows.

    Returns a report dict; raises AssertionError on the first violation.
    """
    record = next(iter(cohort))
    windows, _, _ = zoo.dataset.from_record(record, "test")
    windows = windows[::stride][:max_windows]
    if len(windows) == 0:
        raise RuntimeError("fixture produced no test windows")
    scenarios = [
        Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING
        for index in range(len(windows))
    ]
    predictor = zoo.model_for(record.label)

    fast = predictor.predict(windows)
    graph = predictor.predict_graph(windows)
    max_gap = float(np.abs(fast - graph).max())
    assert max_gap <= PREDICTION_TOLERANCE, (
        f"fast path diverged from the autodiff path: {max_gap:.3e}"
    )

    report: Dict[str, dict] = {"max_prediction_gap": max_gap, "n_windows": len(windows)}
    for name, factory in EXPLORER_FACTORIES.items():
        report[name] = {}
        for seed in seeds:
            batched = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=True
            )
            sequential = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=False
            )
            _compare_results(batched, sequential)
            report[name][seed] = {
                "n_eligible": sum(result.eligible for result in batched),
                "n_success": sum(result.success for result in batched),
                "total_queries": sum(result.queries for result in batched),
            }
    return report


def assert_loss_curves_match(graph_losses, fused_losses, label: str) -> float:
    """Assert two fixed-seed loss curves match step for step; return the gap.

    One comparison recipe for every training-parity tripwire (this script
    and ``scripts/bench_train.py``): identical lengths, and a maximum
    absolute per-step gap within :data:`LOSS_CURVE_TOLERANCE`.  Raises
    ``AssertionError`` on violation (callers wanting a process exit wrap it).
    """
    import numpy as np

    graph_losses = np.asarray(graph_losses, dtype=np.float64)
    fused_losses = np.asarray(fused_losses, dtype=np.float64)
    assert graph_losses.shape == fused_losses.shape, (
        f"{label}: loss-curve length mismatch "
        f"({graph_losses.shape} vs {fused_losses.shape})"
    )
    gap = float(np.abs(graph_losses - fused_losses).max())
    assert gap <= LOSS_CURVE_TOLERANCE, (
        f"{label}: fused loss curve diverged from the graph path "
        f"step-for-step gap {gap:.3e} > {LOSS_CURVE_TOLERANCE:g}"
    )
    return gap


def fused_vs_graph_gradient_gap(model, inputs, targets) -> float:
    """Worst |fused − graph| across loss, input grad, and every parameter grad.

    Runs one MSE training batch through the autodiff graph and through the
    fused engine (``fused_forward_train`` → ``fused_mse_loss`` →
    ``fused_backward_train``) on the same ``model`` and returns the largest
    absolute deviation.  Shared by :func:`run_training_parity` and
    ``scripts/bench_train.py`` so the parity recipe is defined once.
    """
    import numpy as np

    from repro.nn import Tensor
    from repro.nn.fused import fused_mse_loss
    from repro.nn.functional import mse_loss

    model.zero_grad()
    graph_inputs = Tensor(inputs, requires_grad=True)
    loss = mse_loss(model(graph_inputs), Tensor(targets))
    loss.backward()
    graph_grads = {
        name: parameter.grad.copy()
        for name, parameter in model.named_parameters().items()
    }
    graph_input_grad = graph_inputs.grad.copy()
    graph_loss = loss.item()

    model.zero_grad()
    output, cache = model.fused_forward_train(inputs)
    fused_loss, grad_output = fused_mse_loss(output, targets)
    fused_input_grad = model.fused_backward_train(grad_output, cache)

    gap = max(
        abs(graph_loss - fused_loss),
        float(np.abs(graph_input_grad - fused_input_grad).max()),
    )
    for name, parameter in model.named_parameters().items():
        gap = max(gap, float(np.abs(parameter.grad - graph_grads[name]).max()))
    model.zero_grad()
    return gap


def run_training_parity(zoo: GlucoseModelZoo, cohort) -> Dict[str, float]:
    """Fused-training-engine parity smoke (tier-1).

    Asserts, on the tiny fixture, that

    * one full-stack fused backward (``Module.fused_grads`` through
      BiLSTM + dense head + MSE seeding) matches the autodiff graph's
      parameter and input gradients within 1e-8, and
    * fixed-seed ``GlucosePredictor.fit`` and ``MADGANDetector.fit`` runs
      produce step-for-step matching per-epoch loss curves on the fused
      (``use_fast_path=True``) and graph (``False``) engines.

    Returns a report dict; raises AssertionError on the first violation.
    """
    import numpy as np

    from repro.detectors import MADGANDetector
    from repro.glucose.predictor import GlucosePredictor

    record = next(iter(cohort))
    windows, targets, _ = zoo.dataset.from_record(record, "train")
    windows, targets = windows[:128], targets[:128]

    # ---- one-batch gradient parity over the full forecaster stack
    reference = zoo.model_for(record.label)
    scaled = reference._clip_scaled(reference.scaler.transform(windows[:64]))
    scaled_targets = reference.scaler.scale_target(targets[:64]).reshape(-1, 1)
    gradient_gap = fused_vs_graph_gradient_gap(reference.model, scaled, scaled_targets)
    assert gradient_gap <= GRADIENT_TOLERANCE, (
        f"fused gradients diverged from the autodiff graph: {gradient_gap:.3e}"
    )

    # ---- fixed-seed loss-curve parity, both trainable models
    predictor_curves = {}
    for fast in (False, True):
        predictor = GlucosePredictor(epochs=2, hidden_size=8, seed=9, use_fast_path=fast)
        predictor.fit(windows, targets)
        predictor_curves[fast] = np.asarray(predictor.history_.epoch_losses)
    predictor_gap = assert_loss_curves_match(
        predictor_curves[False], predictor_curves[True], "predictor fit"
    )

    madgan_curves = {}
    for fast in (False, True):
        detector = MADGANDetector(
            epochs=2, hidden_size=8, inversion_steps=2, seed=6, use_fast_path=fast
        )
        detector.fit(windows)
        madgan_curves[fast] = np.concatenate(
            [detector.history_.generator_losses, detector.history_.discriminator_losses]
        )
    madgan_gap = assert_loss_curves_match(
        madgan_curves[False], madgan_curves[True], "MAD-GAN fit"
    )

    return {
        "gradient_gap": gradient_gap,
        "predictor_loss_gap": predictor_gap,
        "madgan_loss_gap": madgan_gap,
    }


def run_serving_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 50) -> Dict[str, float]:
    """Streaming-serving parity on a short live replay (tier-1 smoke).

    Replays ``n_ticks`` of every patient's test trace through the
    :class:`~repro.serving.StreamScheduler` with an :class:`OnlineAttacker`
    tampering one stream mid-replay and a kNN-distance detector monitoring
    every stream, then asserts

    * streamed per-tick predictions match the offline fast path (``predict``
      on the delivered sliding windows) within 1e-10, and
    * streaming detector verdicts are identical to the offline ``predict`` on
      the same delivered measurements.

    Returns a report dict; raises AssertionError on the first violation.
    """
    from repro.detectors import KNNDistanceDetector
    from repro.serving import AttackEpisode, OnlineAttacker, StreamReplayer

    records = list(cohort)
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])
    attacked_label = records[0].label
    attacker = OnlineAttacker(
        {attacked_label: [AttackEpisode(start=n_ticks // 2, duration=max(n_ticks // 5, 3))]}
    )
    replayer = StreamReplayer(
        zoo, detectors={"knn": (detector, "sample")}, attacker=attacker
    )
    report = replayer.replay(cohort, split="test", max_ticks=n_ticks)

    worst_gap = 0.0
    tampered_ticks = 0
    for record in records:
        trace = report.sessions[record.label]
        predictor = zoo.model_for(record.label)
        delivered = np.stack([tick.sample for tick in trace.ticks])
        windows, _, _ = zoo.dataset.windows_from_features(delivered)
        assert len(windows) > 0, "replay too short to form a prediction window"
        offline = predictor.predict(windows)
        history = predictor.history
        streamed = trace.predictions()[history - 1 : history - 1 + len(windows)]
        gap = float(np.abs(streamed - offline).max())
        worst_gap = max(worst_gap, gap)
        assert gap <= PREDICTION_TOLERANCE, (
            f"streamed predictions diverged from the offline fast path for "
            f"{record.label}: {gap:.3e}"
        )
        offline_flags = [bool(flag) for flag in detector.predict(delivered[:, np.newaxis, :])]
        stream_flags = [bool(tick.verdicts["knn"].flagged) for tick in trace.ticks]
        assert stream_flags == offline_flags, (
            f"streaming detector verdicts diverged from offline predict for {record.label}"
        )
        tampered_ticks += len(trace.attacked_ticks)
    assert tampered_ticks > 0, "the online attacker never tampered a sample"
    return {
        "max_stream_gap": worst_gap,
        "n_sessions": len(records),
        "n_ticks": n_ticks,
        "tampered_ticks": tampered_ticks,
    }


def run_chaos_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 40) -> Dict[str, dict]:
    """Chaos-harness gate check on the tiny fixture (tier-1 smoke).

    Runs the full declarative scenario suite from ``scripts/chaos_replay.py``
    — benign sensor faults, malformed-sample ingress policies, the online
    attack campaign, and the full-chaos churn + device-clock mix — with short
    traces and the kNN monitor only, then asserts every chaos gate: no
    unhandled exceptions, zero-config bitwise inertness, bounded false-alarm
    inflation, and attack detection preserved under faults.

    Returns the gates dict; raises AssertionError on the first violation.
    """
    import sys as _sys
    from pathlib import Path as _Path

    scripts_dir = str(_Path(__file__).resolve().parent)
    if scripts_dir not in _sys.path:
        _sys.path.insert(0, scripts_dir)
    import chaos_replay

    report, ok = chaos_replay.run_suite(
        n_ticks, with_madgan=False, verbose=False, fixture=(cohort, zoo)
    )
    gates = report["gates"]
    for name, gate in gates.items():
        assert gate["passed"], f"chaos gate {name!r} failed: {gate}"
    assert ok, f"chaos gates failed: {gates}"
    return gates


def _replay_fingerprint(report) -> dict:
    """Everything a sharded replay must reproduce bitwise, keyed by session."""
    fingerprint = {}
    for session_id in sorted(report.sessions):
        trace = report.sessions[session_id]
        fingerprint[session_id] = {
            "samples": [outcome.sample.tobytes() for outcome in trace.ticks],
            "predictions": [outcome.prediction for outcome in trace.ticks],
            "verdicts": [
                {
                    name: (verdict.warming, verdict.flagged, verdict.score)
                    for name, verdict in outcome.verdicts.items()
                }
                for outcome in trace.ticks
            ],
            "attacked": [outcome.attacked for outcome in trace.ticks],
            "fault": [outcome.fault for outcome in trace.ticks],
            "ingress": [outcome.ingress for outcome in trace.ticks],
            "dropped": [outcome.dropped for outcome in trace.ticks],
            "delivered_at": list(trace.delivered_at),
            # delivered_at/backoff: the device-clock slot and backoff depth
            # stamped on each transition — sharded workers must reproduce
            # them bitwise (the `now` pipe-threading contract).
            "health": [
                (event.tick, str(event.state), event.reason, event.delivered_at, event.backoff)
                for event in trace.health_timeline
            ],
        }
    return fingerprint


def run_shard_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 40) -> Dict[str, float]:
    """Sharded-fabric parity gate (tier-1 smoke).

    Replays the fixture cohort through a personalized (multi-lane) zoo with
    the full production mix active — benign sensor faults, per-device
    clocks, session churn, an online attacker, and health+ingress gating —
    once on a single-process :class:`StreamScheduler` and once per shard
    count in {1, 2, 4} on a :class:`~repro.serving.shard.ShardedScheduler`,
    then asserts the replays are **bitwise identical**: delivered samples,
    predictions, detector verdicts and scores, attack/fault/ingress
    attribution, health timelines, tamper records, and the report rollup.
    Also asserts ``AttackCampaign.run_cohort(n_workers=2)`` reproduces the
    single-process campaign record-for-record on the same multi-lane zoo.

    The gate uses the deterministic kNN detector: MAD-GAN's cold-inversion
    latents come from a detector-level RNG that the shard boundary re-derives
    per worker (see ``repro.serving.shard``), which is reproducible but not
    layout-invariant, so it is exercised by the chaos suite instead.

    Returns a report dict; raises AssertionError on the first violation.
    """
    from repro.attacks.campaign import AttackCampaign
    from repro.detectors import KNNDistanceDetector
    from repro.serving import (
        AttackEpisode,
        DeviceClockConfig,
        HealthConfig,
        IngressConfig,
        IngressPolicy,
        OnlineAttacker,
        SensorFaultConfig,
        SessionChurnConfig,
        ShardedScheduler,
        StreamReplayer,
        StreamScheduler,
    )

    # The gate needs a multi-lane zoo (one lane per patient) so lanes
    # genuinely spread across shard workers — lane placement is the fabric's
    # atomic unit.  A personalized zoo is used as-is; the aggregate-only
    # script fixture gets a tiny personalized sibling trained on the spot.
    records = list(cohort)
    if len({zoo.model_for(record.label).state_hash() for record in records}) > 1:
        lane_zoo = zoo
    else:
        lane_zoo = GlucoseModelZoo(
            predictor_kwargs=dict(epochs=1, hidden_size=8),
            train_personalized=True,
            seed=3,
        )
        lane_zoo.fit(cohort)
    train_windows, _, _ = lane_zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])

    faults = SensorFaultConfig(
        bias_rate=0.05, spike_rate=0.08, malformed_rate=0.05, seed=11
    )
    clocks = DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19)
    churn = SessionChurnConfig(join_stagger=2, disconnect_every=25, reconnect_after=2)
    health = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4)
    ingress = IngressConfig(policy=IngressPolicy.REJECT)
    attacked_label = records[0].label
    # Start past the first segment's warmup, end before its churn disconnect.
    episodes = {attacked_label: [AttackEpisode(start=13, duration=12)]}

    def replay_with(scheduler):
        attacker = OnlineAttacker(episodes)  # fresh: attackers accumulate records
        replayer = StreamReplayer(
            lane_zoo,
            detectors={"knn": (detector, "sample")},
            attacker=attacker,
            scheduler=scheduler,
            clocks=clocks,
            churn=churn,
            faults=faults,
        )
        report = replayer.replay(cohort, split="test", max_ticks=n_ticks)
        tampers = [
            (
                record.session_id,
                record.tick,
                record.benign_cgm,
                record.delivered_cgm,
                record.eligible,
                record.success,
                record.queries,
                record.warm_started,
            )
            for record in attacker.records
        ]
        return report, tampers

    baseline_report, baseline_tampers = replay_with(
        StreamScheduler(health=health, ingress=ingress)
    )
    baseline = _replay_fingerprint(baseline_report)
    baseline_rollup = baseline_report.rollup("knn")
    assert any(
        any(trace["attacked"]) for trace in baseline.values()
    ), "the online attacker never tampered a sample"

    for n_shards in (1, 2, 4):
        fabric = ShardedScheduler(n_shards=n_shards, health=health, ingress=ingress)
        try:
            report, tampers = replay_with(fabric)
        finally:
            fabric.shutdown()
        fingerprint = _replay_fingerprint(report)
        assert fingerprint == baseline, (
            f"sharded replay diverged from single-process at n_shards={n_shards}"
        )
        assert tampers == baseline_tampers, (
            f"tamper records diverged at n_shards={n_shards}"
        )
        rollup = report.rollup("knn")
        assert rollup.keys() == baseline_rollup.keys() and all(
            value == baseline_rollup[key]
            or (np.isnan(value) and np.isnan(baseline_rollup[key]))
            for key, value in rollup.items()
        ), f"report rollup diverged at n_shards={n_shards}"

    campaign = AttackCampaign(lane_zoo, stride=40)
    single = campaign.run_cohort(cohort)
    sharded = campaign.run_cohort(cohort, n_workers=2)
    assert len(single.records) == len(sharded.records) > 0, "campaign record count mismatch"
    for left, right in zip(single.records, sharded.records):
        assert (left.patient_label, left.window_index, left.target_index) == (
            right.patient_label,
            right.window_index,
            right.target_index,
        ), "campaign record attribution diverged under n_workers=2"
        _compare_results([left.result], [right.result])

    return {
        "n_sessions": len(baseline.keys()),
        "n_lanes": len(records),
        "n_ticks": n_ticks,
        "shard_counts": (1, 2, 4),
        "campaign_records": len(single.records),
    }


def run_detector_family_smoke(
    zoo: GlucoseModelZoo, cohort, n_ticks: int = 30
) -> Dict[str, dict]:
    """LSTM-VAE + HMM detector-family parity gate (tier-1 smoke).

    Fits both new window brains on the fixture's training windows with a
    tiny budget, then asserts the two contracts that admit a detector into
    the serving fabric:

    * **Streaming == offline** — driving one test trace sample-by-sample
      through :class:`~repro.detectors.StreamingDetector` produces verdicts
      bitwise identical to the offline ``predict`` on the same sliding
      windows.  HMM scores are bitwise too (broadcast-reduce arithmetic is
      batch-shape independent); LSTM-VAE scores are held to
      :data:`VAE_STREAM_SCORE_TOLERANCE` (BLAS rounds per batch shape).
    * **Sharded == single-process** — a chaos-mix replay (sensor faults,
      device clocks, session churn) over a multi-lane zoo is bitwise
      identical on :class:`~repro.serving.ShardedScheduler` at 1, 2, and
      4 shards.  Both brains are RNG-free at inference, so — unlike
      MAD-GAN — they join the bitwise gate directly.

    Returns a report dict; raises AssertionError on the first violation.
    """
    from repro.detectors import (
        GaussianHMMDetector,
        LSTMVAEDetector,
        StreamingDetector,
    )
    from repro.serving import (
        DeviceClockConfig,
        SensorFaultConfig,
        SessionChurnConfig,
        ShardedScheduler,
        StreamReplayer,
        StreamScheduler,
    )

    records = list(cohort)
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    benign = train_windows[::4]
    family = {
        "lstm_vae": LSTMVAEDetector(
            epochs=1, hidden_size=8, batch_size=16, seed=0
        ).fit(benign),
        "hmm": GaussianHMMDetector(n_states=3, n_iter=3, seed=0).fit(benign),
    }

    # ---- streaming verdicts == offline predict on one live trace
    record = records[0]
    features = record.features("test")[:n_ticks]
    history = family["lstm_vae"].sequence_length
    windows = np.stack(
        [features[start : start + history] for start in range(len(features) - history + 1)]
    )
    report: Dict[str, dict] = {}
    for name, detector in family.items():
        offline_flags = [int(flag) for flag in detector.predict(windows)]
        offline_scores = detector.scores(windows)
        adapter = StreamingDetector(
            detector, unit="window", history=history, include_scores=True
        )
        assert adapter.incremental, f"{name}: incremental streaming not auto-enabled"
        stream_flags, stream_scores = [], []
        for sample in features:
            verdict = adapter.update(sample)
            if not verdict.warming:
                stream_flags.append(int(verdict.flagged))
                stream_scores.append(verdict.score)
        assert stream_flags == offline_flags, (
            f"{name}: streaming verdicts diverged from offline predict"
        )
        score_gap = float(np.abs(np.asarray(stream_scores) - offline_scores).max())
        tolerance = 0.0 if name == "hmm" else VAE_STREAM_SCORE_TOLERANCE
        assert score_gap <= tolerance, (
            f"{name}: streaming scores diverged from offline "
            f"({score_gap:.3e} > {tolerance:g})"
        )
        report[name] = {"stream_score_gap": score_gap, "n_windows": len(windows)}

    # ---- sharded == single-process bitwise under the chaos mix
    if len({zoo.model_for(record.label).state_hash() for record in records}) > 1:
        lane_zoo = zoo
    else:
        lane_zoo = GlucoseModelZoo(
            predictor_kwargs=dict(epochs=1, hidden_size=8),
            train_personalized=True,
            seed=3,
        )
        lane_zoo.fit(cohort)

    def replay_with(scheduler):
        return StreamReplayer(
            lane_zoo,
            detectors={name: (detector, "window") for name, detector in family.items()},
            scheduler=scheduler,
            clocks=DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19),
            churn=SessionChurnConfig(join_stagger=1, disconnect_every=15),
            faults=SensorFaultConfig(bias_rate=0.05, spike_rate=0.08, seed=11),
        ).replay(cohort, split="test", max_ticks=n_ticks)

    baseline = _replay_fingerprint(replay_with(StreamScheduler()))
    for n_shards in (1, 2, 4):
        fabric = ShardedScheduler(n_shards=n_shards)
        try:
            fingerprint = _replay_fingerprint(replay_with(fabric))
        finally:
            fabric.shutdown()
        assert fingerprint == baseline, (
            f"family sharded replay diverged from single-process at "
            f"n_shards={n_shards}"
        )
    report["shard_counts"] = (1, 2, 4)
    return report


def run_obs_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 40) -> Dict[str, float]:
    """Telemetry-spine gates (tier-1 smoke): inertness + merge determinism.

    Replays the same chaos mix as :func:`run_shard_smoke` three ways and
    asserts the two contracts the observability layer pins:

    1. **Inertness** — attaching an :class:`~repro.obs.Observer` never
       perturbs the replay: the instrumented run's fingerprint (predictions,
       verdicts, health timeline with ``delivered_at``/``backoff``, tamper
       records) is bitwise identical to the uninstrumented run's.
    2. **Merge determinism** — the sharded fabric's merged metric snapshot is
       bitwise identical to the single-process snapshot at 1, 2, and 4
       shards for every non-timing series: worker registries ship with tick
       replies and fold into the parent with order-invariant semantics, so
       where a lane ran never shows up in the numbers.

    Returns a report dict; raises AssertionError on the first violation.
    """
    from repro.detectors import KNNDistanceDetector
    from repro.obs import Observer
    from repro.serving import (
        AttackEpisode,
        DeviceClockConfig,
        HealthConfig,
        IngressConfig,
        IngressPolicy,
        OnlineAttacker,
        SensorFaultConfig,
        SessionChurnConfig,
        ShardedScheduler,
        StreamReplayer,
        StreamScheduler,
    )

    records = list(cohort)
    if len({zoo.model_for(record.label).state_hash() for record in records}) > 1:
        lane_zoo = zoo
    else:
        lane_zoo = GlucoseModelZoo(
            predictor_kwargs=dict(epochs=1, hidden_size=8),
            train_personalized=True,
            seed=3,
        )
        lane_zoo.fit(cohort)
    train_windows, _, _ = lane_zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])

    faults = SensorFaultConfig(
        bias_rate=0.05, spike_rate=0.08, malformed_rate=0.05, seed=11
    )
    clocks = DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19)
    churn = SessionChurnConfig(join_stagger=2, disconnect_every=25, reconnect_after=2)
    health = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4)
    ingress = IngressConfig(policy=IngressPolicy.REJECT)
    episodes = {records[0].label: [AttackEpisode(start=13, duration=12)]}

    def replay_with(scheduler, obs):
        attacker = OnlineAttacker(episodes, obs=obs)
        replayer = StreamReplayer(
            lane_zoo,
            detectors={"knn": (detector, "sample")},
            attacker=attacker,
            scheduler=scheduler,
            clocks=clocks,
            churn=churn,
            faults=faults,
            obs=obs,
        )
        return replayer.replay(cohort, split="test", max_ticks=n_ticks)

    plain = _replay_fingerprint(
        replay_with(StreamScheduler(health=health, ingress=ingress), None)
    )
    observer = Observer()
    observed = replay_with(
        StreamScheduler(health=health, ingress=ingress, obs=observer), observer
    )
    assert _replay_fingerprint(observed) == plain, (
        "attaching an Observer perturbed the replay (inertness violation)"
    )
    baseline_series = observer.registry.snapshot()
    assert baseline_series, "instrumented replay recorded no metric series"
    assert observer.spans, "instrumented replay recorded no trace spans"

    span_shards = {}
    for n_shards in (1, 2, 4):
        shard_obs = Observer()
        fabric = ShardedScheduler(
            n_shards=n_shards, health=health, ingress=ingress, obs=shard_obs
        )
        try:
            report = replay_with(fabric, shard_obs)
        finally:
            fabric.shutdown()
        assert _replay_fingerprint(report) == plain, (
            f"instrumented sharded replay diverged at n_shards={n_shards}"
        )
        series = shard_obs.registry.snapshot()
        assert series == baseline_series, (
            f"sharded metric snapshot diverged from single-process at "
            f"n_shards={n_shards}"
        )
        span_shards[n_shards] = {
            span.shard for span in shard_obs.spans if span.shard is not None
        }
        assert span_shards[n_shards], (
            f"no shard-stamped spans shipped back at n_shards={n_shards}"
        )

    return {
        "n_series": sum(len(section) for section in baseline_series.values()),
        "n_spans": len(observer.spans),
        "shard_counts": (1, 2, 4),
        "span_shards": {count: sorted(shards) for count, shards in span_shards.items()},
    }


def run_recovery_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 40) -> Dict[str, float]:
    """Crash-recovery gate (tier-1 smoke): recovery is **bitwise** resume.

    Pins the two halves of the recovery contract (``docs/recovery.md``):

    1. **Snapshot/restore continuation** — a single-process
       :class:`StreamScheduler` ticked partway, snapshotted through the
       :class:`SchedulerCheckpointer` *file* layer (write → read back, so the
       header/checksum path is on the gate), restored, and ticked to the end
       produces samples, predictions, verdicts, and health timelines bitwise
       identical to the uninterrupted scheduler.
    2. **Kill-mix self-healing** — a sharded replay with the full chaos mix
       active (benign faults, device clocks, churn, an online attacker,
       health + ingress gating) and workers SIGKILLed mid-run at 2 and 4
       shards is bitwise identical to the single-process no-kill replay:
       fingerprints, tamper records, and the report rollup.  The supervisor
       must actually respawn (the gate asserts restart counts), so a silent
       "never died" pass is impossible.

    Returns a report dict; raises AssertionError on the first violation.
    """
    import tempfile

    from repro.detectors import KNNDistanceDetector
    from repro.detectors.streaming import StreamingDetector
    from repro.serving import (
        AttackEpisode,
        DeviceClockConfig,
        HealthConfig,
        IngressConfig,
        IngressPolicy,
        OnlineAttacker,
        SchedulerCheckpointer,
        SensorFaultConfig,
        SessionChurnConfig,
        ShardedScheduler,
        StreamReplayer,
        StreamScheduler,
        SupervisorConfig,
    )

    records = list(cohort)
    health = HealthConfig(degrade_after=1, quarantine_after=2, backoff_ticks=4)
    ingress = IngressConfig(policy=IngressPolicy.REJECT)

    # --- Part A: snapshot → checkpoint file → restore continues bitwise.
    train_windows, _, _ = zoo.dataset.from_record(records[0], "train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])

    def build_single():
        scheduler = StreamScheduler(health=health, ingress=ingress)
        for record in records:
            adapters = {
                "knn": StreamingDetector(
                    detector, unit="sample", history=zoo.dataset.history
                )
            }
            scheduler.open_session(
                record.label, zoo.model_for(record.label), detectors=adapters
            )
        return scheduler

    def tick_fingerprint(outcomes):
        return tuple(
            (
                session_id,
                outcome.tick,
                outcome.sample.tobytes(),
                None if outcome.prediction is None else float(outcome.prediction),
                tuple(
                    (name, verdict.warming, verdict.flagged, verdict.score)
                    for name, verdict in sorted(outcome.verdicts.items())
                ),
                outcome.dropped,
                outcome.ingress,
            )
            for session_id, outcome in sorted(outcomes.items())
        )

    split_at = max(4, n_ticks // 3)
    feeds = [
        {record.label: record.features("test")[tick] for record in records}
        for tick in range(n_ticks)
    ]
    original = build_single()
    for tick in range(split_at):
        original.tick(feeds[tick], now=tick)
    snapshot = original.snapshot()
    with tempfile.TemporaryDirectory() as tmp:
        checkpointer = SchedulerCheckpointer(tmp, keep=2)
        path = checkpointer.save(snapshot)
        snapshot_bytes = path.stat().st_size
        snapshot = checkpointer.load()
    restored = StreamScheduler.restore(snapshot)
    assert restored.n_sessions == original.n_sessions, "restore lost sessions"
    assert restored.n_lanes == original.n_lanes, "restore lost lanes"
    for tick in range(split_at, n_ticks):
        live = tick_fingerprint(original.tick(feeds[tick], now=tick))
        resumed = tick_fingerprint(restored.tick(feeds[tick], now=tick))
        assert resumed == live, (
            f"restored scheduler diverged from uninterrupted run at tick {tick}"
        )
    for session_id in sorted(original._sessions):
        timelines = [
            [
                (event.tick, str(event.state), event.reason,
                 event.delivered_at, event.backoff)
                for event in scheduler._sessions[session_id].health.timeline
            ]
            for scheduler in (original, restored)
        ]
        assert timelines[0] == timelines[1], (
            f"health timeline diverged after restore for session {session_id}"
        )

    # --- Part B: kill-mix — SIGKILL workers mid-replay under the full chaos
    # mix; the supervisor's snapshot+journal recovery must keep the replay
    # bitwise identical to a run that never crashed.
    if len({zoo.model_for(record.label).state_hash() for record in records}) > 1:
        lane_zoo = zoo
    else:
        lane_zoo = GlucoseModelZoo(
            predictor_kwargs=dict(epochs=1, hidden_size=8),
            train_personalized=True,
            seed=3,
        )
        lane_zoo.fit(cohort)
    lane_windows, _, _ = lane_zoo.dataset.from_cohort(cohort, split="train")
    chaos_detector = KNNDistanceDetector(n_neighbors=5).fit(
        lane_windows[::4, -1:, :]
    )

    faults = SensorFaultConfig(
        bias_rate=0.05, spike_rate=0.08, malformed_rate=0.05, seed=11
    )
    clocks = DeviceClockConfig(drift=0.05, jitter=0.1, dropout=0.05, seed=19)
    churn = SessionChurnConfig(join_stagger=2, disconnect_every=25, reconnect_after=2)
    episodes = {records[0].label: [AttackEpisode(start=13, duration=12)]}

    class KillSwitch:
        """Passthrough shim that SIGKILLs occupied workers at chosen ticks.

        The replayer drives it exactly like the fabric; only ``tick`` is
        intercepted, so the kill lands between two ticks — the same boundary
        a real mid-run crash is recovered at.
        """

        def __init__(self, fabric, kill_at):
            self._fabric = fabric
            self._kill_at = dict(kill_at)
            self._ticks = 0

        def __getattr__(self, name):
            return getattr(self._fabric, name)

        def tick(self, samples, now=None):
            rank = self._kill_at.get(self._ticks)
            if rank is not None:
                occupied = sorted(
                    {handle.shard for handle in self._fabric._sessions.values()}
                )
                self._fabric.kill_worker(occupied[min(rank, len(occupied) - 1)])
            self._ticks += 1
            return self._fabric.tick(samples, now=now)

    def replay_with(scheduler):
        attacker = OnlineAttacker(episodes)  # fresh: attackers accumulate records
        replayer = StreamReplayer(
            lane_zoo,
            detectors={"knn": (chaos_detector, "sample")},
            attacker=attacker,
            scheduler=scheduler,
            clocks=clocks,
            churn=churn,
            faults=faults,
        )
        report = replayer.replay(cohort, split="test", max_ticks=n_ticks)
        tampers = [
            (
                record.session_id,
                record.tick,
                record.benign_cgm,
                record.delivered_cgm,
                record.eligible,
                record.success,
                record.queries,
                record.warm_started,
            )
            for record in attacker.records
        ]
        return report, tampers

    baseline_report, baseline_tampers = replay_with(
        StreamScheduler(health=health, ingress=ingress)
    )
    baseline = _replay_fingerprint(baseline_report)
    baseline_rollup = baseline_report.rollup("knn")

    respawns = {}
    for n_shards in (2, 4):
        # Kill mid-attack-episode; at 4 shards kill a second worker later so
        # two independent recoveries compose within one replay.
        kill_at = {21: 0} if n_shards == 2 else {21: 0, 29: 1}
        fabric = ShardedScheduler(
            n_shards=n_shards,
            health=health,
            ingress=ingress,
            supervision=SupervisorConfig(snapshot_interval=8, restart_backoff=0.01),
        )
        try:
            report, tampers = replay_with(KillSwitch(fabric, kill_at))
            restarts = sum(shard.restarts for shard in fabric._shards)
        finally:
            fabric.shutdown()
        assert restarts >= len(kill_at), (
            f"expected >= {len(kill_at)} respawns at n_shards={n_shards}, "
            f"got {restarts} — the kill never landed"
        )
        fingerprint = _replay_fingerprint(report)
        assert fingerprint == baseline, (
            f"kill-mix replay diverged from no-kill baseline at n_shards={n_shards}"
        )
        assert tampers == baseline_tampers, (
            f"tamper records diverged under kill-mix at n_shards={n_shards}"
        )
        rollup = report.rollup("knn")
        assert rollup.keys() == baseline_rollup.keys() and all(
            value == baseline_rollup[key]
            or (np.isnan(value) and np.isnan(baseline_rollup[key]))
            for key, value in rollup.items()
        ), f"report rollup diverged under kill-mix at n_shards={n_shards}"
        respawns[n_shards] = restarts

    return {
        "n_sessions": len(baseline),
        "n_ticks": n_ticks,
        "split_at": split_at,
        "snapshot_bytes": snapshot_bytes,
        "shard_counts": (2, 4),
        "respawns": respawns,
    }


def main() -> int:
    print("building tiny fixture...")
    cohort, zoo = build_fixture()
    print("running parity checks (greedy, beam, random x 3 seeds)...")
    try:
        report = run_checks(zoo, cohort)
    except AssertionError as error:
        print(f"PARITY VIOLATION: {error}")
        return 1
    print(f"  max |fast - graph| prediction gap: {report['max_prediction_gap']:.3e}")
    for name in EXPLORER_FACTORIES:
        per_seed = report[name]
        queries = sorted(stats["total_queries"] for stats in per_seed.values())
        print(f"  {name}: parity ok across seeds (query totals {queries})")
    print("running fused-training parity (gradients + fixed-seed loss curves)...")
    try:
        training = run_training_parity(zoo, cohort)
    except AssertionError as error:
        print(f"TRAINING PARITY VIOLATION: {error}")
        return 1
    print(
        f"  gradient gap {training['gradient_gap']:.3e}, loss-curve gaps "
        f"predictor {training['predictor_loss_gap']:.3e} / "
        f"MAD-GAN {training['madgan_loss_gap']:.3e}"
    )
    print("running serving smoke (streamed replay + online attack, 50 ticks)...")
    try:
        serving = run_serving_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"SERVING PARITY VIOLATION: {error}")
        return 1
    print(
        f"  max |stream - offline| prediction gap: {serving['max_stream_gap']:.3e} "
        f"({serving['n_sessions']} sessions, {serving['tampered_ticks']} tampered ticks)"
    )
    print("running chaos smoke (fault mixes + ingress policies + full chaos)...")
    try:
        chaos = run_chaos_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"CHAOS GATE VIOLATION: {error}")
        return 1
    print(f"  all {len(chaos)} chaos gates passed on the tiny fixture")
    print("running shard smoke (sharded fabric bitwise parity at 1/2/4 shards)...")
    try:
        shard = run_shard_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"SHARD PARITY VIOLATION: {error}")
        return 1
    print(
        f"  sharded == single-process bitwise across shard counts "
        f"{shard['shard_counts']} ({shard['n_sessions']} session segments, "
        f"{shard['campaign_records']} campaign records at n_workers=2)"
    )
    print("running detector-family smoke (LSTM-VAE + HMM streaming/shard parity)...")
    try:
        family = run_detector_family_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"DETECTOR FAMILY PARITY VIOLATION: {error}")
        return 1
    print(
        f"  streaming == offline (VAE score gap "
        f"{family['lstm_vae']['stream_score_gap']:.3e}, HMM bitwise); "
        f"sharded bitwise across shard counts {family['shard_counts']}"
    )
    print("running obs smoke (telemetry inertness + metric merge determinism)...")
    try:
        obs = run_obs_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"OBS GATE VIOLATION: {error}")
        return 1
    print(
        f"  observer inert; {obs['n_series']} metric series bitwise identical "
        f"across shard counts {obs['shard_counts']}"
    )
    print("running recovery smoke (snapshot/restore + kill-mix self-healing)...")
    try:
        recovery = run_recovery_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"RECOVERY GATE VIOLATION: {error}")
        return 1
    print(
        f"  restore at tick {recovery['split_at']} continues bitwise "
        f"({recovery['snapshot_bytes']} snapshot bytes); kill-mix respawns "
        f"{recovery['respawns']} bitwise at shard counts {recovery['shard_counts']}"
    )
    print("all parity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
