"""Fast parity smoke check for the batched attack engine and the serving path.

Asserts, on a tiny cohort, that every explorer's lockstep ``search_batch``
reproduces the sequential per-window reference exactly (same eligibility,
success, paths, query counts, and adversarial windows), that the inference
fast path stays within its 1e-10 regression tolerance, and — via
:func:`run_serving_smoke` — that the streaming serving subsystem (scheduler +
incremental recurrent state + online attacker + streaming detectors) matches
the offline fast path on a live replay: per-tick predictions within 1e-10 of
``predict`` on the delivered windows and detector verdicts identical to the
offline ``predict``.  This is the cheap tripwire between "every PR runs the
full benchmark" and "parity silently regresses": it is wired into the tier-1
suite (``tests/test_explorer_parity.py`` imports :func:`run_checks`,
``tests/test_serving.py`` imports :func:`run_serving_smoke`) and can be run
standalone::

    PYTHONPATH=src python scripts/check_parity.py

Exit status is non-zero on any parity violation.
"""

from __future__ import annotations

import sys
from typing import Dict, Sequence

import numpy as np

from repro.attacks import BeamExplorer, EvasionAttack, GreedyExplorer, RandomExplorer
from repro.data import SyntheticOhioT1DM, make_patient_profile
from repro.glucose import GlucoseModelZoo, Scenario

PREDICTION_TOLERANCE = 1e-10

EXPLORER_FACTORIES = {
    "greedy": lambda seed: GreedyExplorer(max_depth=2),
    "beam": lambda seed: BeamExplorer(beam_width=2, max_depth=2),
    "random": lambda seed: RandomExplorer(max_depth=2, n_walks=4, seed=seed),
}


def build_fixture():
    """Two-patient cohort and an aggregate-only zoo, trained with a tiny budget."""
    profiles = [make_patient_profile("A", 5), make_patient_profile("A", 2)]
    cohort = SyntheticOhioT1DM(train_days=1, test_days=1, seed=7, profiles=profiles).generate()
    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=1, hidden_size=8), train_personalized=False, seed=3
    )
    zoo.fit(cohort)
    return cohort, zoo


def _compare_results(batched, sequential) -> None:
    """Raise AssertionError unless two AttackResult lists are equivalent."""
    assert len(batched) == len(sequential), "result count mismatch"
    for left, right in zip(batched, sequential):
        assert left.eligible == right.eligible, "eligibility mismatch"
        assert left.success == right.success, "success mismatch"
        assert left.path == right.path, f"path mismatch: {left.path} != {right.path}"
        assert left.queries == right.queries, (
            f"query-count mismatch: {left.queries} != {right.queries}"
        )
        np.testing.assert_array_equal(left.adversarial_window, right.adversarial_window)
        assert abs(left.adversarial_prediction - right.adversarial_prediction) <= (
            PREDICTION_TOLERANCE
        ), "adversarial prediction drifted beyond tolerance"


def run_checks(
    zoo: GlucoseModelZoo,
    cohort,
    seeds: Sequence[int] = (0, 1, 2),
    stride: int = 10,
    max_windows: int = 8,
) -> Dict[str, dict]:
    """Run every explorer's batched-vs-sequential parity check on real windows.

    Returns a report dict; raises AssertionError on the first violation.
    """
    record = next(iter(cohort))
    windows, _, _ = zoo.dataset.from_record(record, "test")
    windows = windows[::stride][:max_windows]
    if len(windows) == 0:
        raise RuntimeError("fixture produced no test windows")
    scenarios = [
        Scenario.POSTPRANDIAL if index % 2 else Scenario.FASTING
        for index in range(len(windows))
    ]
    predictor = zoo.model_for(record.label)

    fast = predictor.predict(windows)
    graph = predictor.predict_graph(windows)
    max_gap = float(np.abs(fast - graph).max())
    assert max_gap <= PREDICTION_TOLERANCE, (
        f"fast path diverged from the autodiff path: {max_gap:.3e}"
    )

    report: Dict[str, dict] = {"max_prediction_gap": max_gap, "n_windows": len(windows)}
    for name, factory in EXPLORER_FACTORIES.items():
        report[name] = {}
        for seed in seeds:
            batched = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=True
            )
            sequential = EvasionAttack(predictor, explorer=factory(seed)).attack_batch(
                windows, scenarios, batched=False
            )
            _compare_results(batched, sequential)
            report[name][seed] = {
                "n_eligible": sum(result.eligible for result in batched),
                "n_success": sum(result.success for result in batched),
                "total_queries": sum(result.queries for result in batched),
            }
    return report


def run_serving_smoke(zoo: GlucoseModelZoo, cohort, n_ticks: int = 50) -> Dict[str, float]:
    """Streaming-serving parity on a short live replay (tier-1 smoke).

    Replays ``n_ticks`` of every patient's test trace through the
    :class:`~repro.serving.StreamScheduler` with an :class:`OnlineAttacker`
    tampering one stream mid-replay and a kNN-distance detector monitoring
    every stream, then asserts

    * streamed per-tick predictions match the offline fast path (``predict``
      on the delivered sliding windows) within 1e-10, and
    * streaming detector verdicts are identical to the offline ``predict`` on
      the same delivered measurements.

    Returns a report dict; raises AssertionError on the first violation.
    """
    from repro.detectors import KNNDistanceDetector
    from repro.serving import AttackEpisode, OnlineAttacker, StreamReplayer

    records = list(cohort)
    train_windows, _, _ = zoo.dataset.from_cohort(cohort, split="train")
    detector = KNNDistanceDetector(n_neighbors=5).fit(train_windows[::4, -1:, :])
    attacked_label = records[0].label
    attacker = OnlineAttacker(
        {attacked_label: [AttackEpisode(start=n_ticks // 2, duration=max(n_ticks // 5, 3))]}
    )
    replayer = StreamReplayer(
        zoo, detectors={"knn": (detector, "sample")}, attacker=attacker
    )
    report = replayer.replay(cohort, split="test", max_ticks=n_ticks)

    worst_gap = 0.0
    tampered_ticks = 0
    for record in records:
        trace = report.sessions[record.label]
        predictor = zoo.model_for(record.label)
        delivered = np.stack([tick.sample for tick in trace.ticks])
        windows, _, _ = zoo.dataset.windows_from_features(delivered)
        assert len(windows) > 0, "replay too short to form a prediction window"
        offline = predictor.predict(windows)
        history = predictor.history
        streamed = trace.predictions()[history - 1 : history - 1 + len(windows)]
        gap = float(np.abs(streamed - offline).max())
        worst_gap = max(worst_gap, gap)
        assert gap <= PREDICTION_TOLERANCE, (
            f"streamed predictions diverged from the offline fast path for "
            f"{record.label}: {gap:.3e}"
        )
        offline_flags = [bool(flag) for flag in detector.predict(delivered[:, np.newaxis, :])]
        stream_flags = [bool(tick.verdicts["knn"].flagged) for tick in trace.ticks]
        assert stream_flags == offline_flags, (
            f"streaming detector verdicts diverged from offline predict for {record.label}"
        )
        tampered_ticks += len(trace.attacked_ticks)
    assert tampered_ticks > 0, "the online attacker never tampered a sample"
    return {
        "max_stream_gap": worst_gap,
        "n_sessions": len(records),
        "n_ticks": n_ticks,
        "tampered_ticks": tampered_ticks,
    }


def main() -> int:
    print("building tiny fixture...")
    cohort, zoo = build_fixture()
    print("running parity checks (greedy, beam, random x 3 seeds)...")
    try:
        report = run_checks(zoo, cohort)
    except AssertionError as error:
        print(f"PARITY VIOLATION: {error}")
        return 1
    print(f"  max |fast - graph| prediction gap: {report['max_prediction_gap']:.3e}")
    for name in EXPLORER_FACTORIES:
        per_seed = report[name]
        queries = sorted(stats["total_queries"] for stats in per_seed.values())
        print(f"  {name}: parity ok across seeds (query totals {queries})")
    print("running serving smoke (streamed replay + online attack, 50 ticks)...")
    try:
        serving = run_serving_smoke(zoo, cohort)
    except AssertionError as error:
        print(f"SERVING PARITY VIOLATION: {error}")
        return 1
    print(
        f"  max |stream - offline| prediction gap: {serving['max_stream_gap']:.3e} "
        f"({serving['n_sessions']} sessions, {serving['tampered_ticks']} tampered ticks)"
    )
    print("all parity checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
