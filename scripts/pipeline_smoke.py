"""End-to-end pipeline smoke run (small configuration) used during development."""

import time

import numpy as np

from repro.data import generate_cohort
from repro.glucose import GlucoseModelZoo
from repro.attacks import AttackCampaign
from repro.risk import RiskProfilingFramework, SelectionPlanner
from repro.eval import (
    SelectiveTrainingExperiment,
    benign_ratio_by_patient,
    default_detector_factories,
    render_cluster_table,
    render_headline_claims,
    render_metric_figure,
    render_ratio_figure,
)


def main() -> None:
    start = time.time()
    cohort = generate_cohort(train_days=5, test_days=2, seed=7)
    print("cohort", round(time.time() - start, 1), "s")

    zoo = GlucoseModelZoo(
        predictor_kwargs=dict(epochs=5, hidden_size=12), train_personalized=True, seed=3
    )
    zoo.fit(cohort)
    print("zoo", round(time.time() - start, 1), "s")

    framework = RiskProfilingFramework(zoo, campaign=AttackCampaign(zoo, stride=4))
    assessment = framework.assess(cohort, split="train")
    print("assessment", round(time.time() - start, 1), "s")
    print(render_cluster_table(assessment))
    print("less vulnerable:", sorted(assessment.less_vulnerable))
    print(render_ratio_figure(benign_ratio_by_patient(cohort)))

    # Use the paper's Table II grouping for the headline experiment so the
    # detector comparison is not confounded by clustering differences.
    planner = SelectionPlanner(
        all_labels=sorted(r.label for r in cohort),
        less_vulnerable=["A_5", "B_1", "B_2"],
        random_runs=3,
        seed=11,
    )
    selections = planner.plan()

    test_campaign = AttackCampaign(zoo, stride=3).run_cohort(cohort, split="test")
    experiment = SelectiveTrainingExperiment(
        train_campaign=assessment.campaign,
        test_campaign=test_campaign,
        detector_factories=default_detector_factories(madgan_epochs=12, madgan_inversion_steps=40),
    )
    result = experiment.run(selections)
    print("experiment", round(time.time() - start, 1), "s")
    print(render_metric_figure(result, "recall", "Recall"))
    print(render_metric_figure(result, "precision", "Precision"))
    print(render_metric_figure(result, "f1", "F1"))
    print(render_headline_claims(result))


if __name__ == "__main__":
    main()
