"""Synthetic OhioT1DM-like cohort generation.

The real OhioT1DM dataset provides roughly eight weeks of data per patient —
about 10,000 training samples and 2,500 test samples at five-minute cadence.
The synthetic cohort defaults to a smaller number of days so that the full
pipeline runs on a laptop CPU, but the per-day structure (meals, boluses,
exercise, sensor noise) follows the same cadence, and the number of days can
be raised to the paper scale via ``train_days`` / ``test_days``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.events import DailyScheduleGenerator
from repro.data.patient import (
    SUBSET_A,
    SUBSET_B,
    PatientProfile,
    build_cohort_profiles,
)
from repro.data.physiology import GlucoseInsulinSimulator, SimulationResult
from repro.utils.rng import as_random_state

#: Names and order of the multivariate signals exposed to models/detectors.
FEATURE_NAMES: Tuple[str, ...] = ("cgm", "insulin", "carbs", "heart_rate")

#: Column index of the CGM signal inside the feature matrix.
CGM_COLUMN = 0


def build_feature_matrix(result: SimulationResult) -> np.ndarray:
    """Assemble the ``(T, 4)`` feature matrix used throughout the library.

    The four signals mirror the MAD-GAN configuration in the paper's Appendix
    B (``number of signals = 4``): CGM glucose, delivered insulin (basal rate
    plus bolus), carbohydrate intake, and heart rate.
    """
    insulin = result.basal / 12.0 + result.bolus  # basal units per 5-minute bin + bolus
    return np.column_stack([result.cgm, insulin, result.carbs, result.heart_rate])


@dataclass
class PatientRecord:
    """Simulated data for one patient: a train trace and a test trace."""

    profile: PatientProfile
    train: SimulationResult
    test: SimulationResult

    @property
    def label(self) -> str:
        return self.profile.label

    def features(self, split: str = "train") -> np.ndarray:
        """Feature matrix ``(T, 4)`` for the requested split."""
        return build_feature_matrix(self._split(split))

    def cgm(self, split: str = "train") -> np.ndarray:
        """CGM trace for the requested split."""
        return self._split(split).cgm

    def _split(self, split: str) -> SimulationResult:
        if split == "train":
            return self.train
        if split == "test":
            return self.test
        raise ValueError(f"split must be 'train' or 'test', got {split!r}")


@dataclass
class Cohort:
    """A collection of patient records keyed by patient label."""

    records: Dict[str, PatientRecord] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records.values())

    def __getitem__(self, label: str) -> PatientRecord:
        return self.records[label]

    @property
    def labels(self) -> List[str]:
        return list(self.records.keys())

    def subset(self, subset: str) -> "Cohort":
        """Restrict the cohort to Subset A or Subset B."""
        filtered = {
            label: record
            for label, record in self.records.items()
            if record.profile.subset == subset
        }
        return Cohort(records=filtered)

    def select(self, labels: Iterable[str]) -> "Cohort":
        """Restrict the cohort to a set of patient labels."""
        missing = [label for label in labels if label not in self.records]
        if missing:
            raise KeyError(f"unknown patient labels: {missing}")
        return Cohort(records={label: self.records[label] for label in labels})


class SyntheticOhioT1DM:
    """Generator for the synthetic 12-patient cohort.

    Parameters
    ----------
    train_days, test_days:
        Number of simulated days per patient for each split.  The OhioT1DM
        scale corresponds to roughly ``train_days=35`` and ``test_days=9``;
        the defaults are smaller to keep CPU runtimes reasonable.
    seed:
        Root seed; every patient derives an independent stream from it.
    profiles:
        Optional explicit list of profiles (defaults to the 12-patient cohort
        mirroring the paper's Subset A / Subset B structure).
    """

    def __init__(
        self,
        train_days: int = 8,
        test_days: int = 3,
        seed=7,
        profiles: Optional[Sequence[PatientProfile]] = None,
    ):
        if train_days <= 0 or test_days <= 0:
            raise ValueError("train_days and test_days must be positive")
        self.train_days = int(train_days)
        self.test_days = int(test_days)
        self._root_rng = as_random_state(seed)
        self.profiles: List[PatientProfile] = (
            list(profiles) if profiles is not None else build_cohort_profiles()
        )

    def generate_patient(self, profile: PatientProfile) -> PatientRecord:
        """Simulate train and test traces for a single patient."""
        patient_rng = self._root_rng.derive(f"patient-{profile.label}")
        behaviour_rng, physiology_rng_train, physiology_rng_test, behaviour_rng_test = (
            patient_rng.derive("behaviour-train"),
            patient_rng.derive("physiology-train"),
            patient_rng.derive("physiology-test"),
            patient_rng.derive("behaviour-test"),
        )

        train_inputs = DailyScheduleGenerator(profile.behaviour, seed=behaviour_rng).generate(
            self.train_days
        )
        test_inputs = DailyScheduleGenerator(profile.behaviour, seed=behaviour_rng_test).generate(
            self.test_days
        )
        train_result = GlucoseInsulinSimulator(profile.physiology, seed=physiology_rng_train).simulate(
            train_inputs
        )
        test_result = GlucoseInsulinSimulator(profile.physiology, seed=physiology_rng_test).simulate(
            test_inputs
        )
        return PatientRecord(profile=profile, train=train_result, test=test_result)

    def generate(self) -> Cohort:
        """Simulate the full cohort."""
        records = {}
        for profile in self.profiles:
            record = self.generate_patient(profile)
            records[record.label] = record
        return Cohort(records=records)


def generate_cohort(train_days: int = 8, test_days: int = 3, seed=7) -> Cohort:
    """Convenience wrapper: build the default cohort in one call."""
    return SyntheticOhioT1DM(train_days=train_days, test_days=test_days, seed=seed).generate()
