"""Behavioural event generators: meals, insulin boluses, and exercise.

The generators produce minute-resolution exogenous input arrays for the
physiology simulator.  Patient *behaviour* (meal regularity, bolus compliance,
carb-counting accuracy) is what differentiates well-controlled from poorly
controlled patients and therefore drives the heterogeneity in the benign
normal-to-abnormal glucose ratio that the paper's Figure 4 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.physiology import SimulationInputs
from repro.utils.rng import RandomState, as_random_state

MINUTES_PER_DAY = 1440


@dataclass
class MealPlan:
    """Daily meal schedule template.

    Attributes
    ----------
    meal_times:
        Nominal minute-of-day for each meal (e.g. breakfast/lunch/dinner).
    meal_carbs:
        Nominal carbohydrate grams for each meal.
    time_jitter_std:
        Standard deviation (minutes) of the meal-time jitter.
    carb_jitter_std:
        Standard deviation (grams) of the carb-amount jitter.
    snack_probability:
        Daily probability of an extra snack.
    snack_carbs:
        Nominal snack carbohydrate grams.
    skip_probability:
        Probability of skipping any given meal.
    """

    meal_times: Tuple[int, ...] = (7 * 60, 12 * 60 + 30, 18 * 60 + 30)
    meal_carbs: Tuple[float, ...] = (45.0, 60.0, 70.0)
    time_jitter_std: float = 20.0
    carb_jitter_std: float = 8.0
    snack_probability: float = 0.3
    snack_carbs: float = 20.0
    skip_probability: float = 0.05

    def __post_init__(self):
        if len(self.meal_times) != len(self.meal_carbs):
            raise ValueError("meal_times and meal_carbs must have the same length")


@dataclass
class MealEvent:
    """A single carbohydrate intake event."""

    minute: int
    carbs: float
    announced: bool = True


@dataclass
class BolusPolicy:
    """How the patient doses meal boluses and corrections.

    Attributes
    ----------
    carb_ratio:
        Grams of carbohydrate covered by one unit of insulin.
    correction_factor:
        mg/dL of glucose lowered by one unit of insulin.
    target_glucose:
        Correction target in mg/dL.
    compliance:
        Probability that a meal is actually bolused for.
    timing_offset:
        Mean bolus timing relative to the meal in minutes; negative values
        model pre-bolusing, which is typical of well-controlled patients and
        blunts postprandial spikes.
    timing_error_std:
        Standard deviation (minutes) of bolus timing relative to the meal.
    counting_error_std:
        Relative error of carbohydrate counting (fraction of meal carbs).
    correction_probability:
        Daily probability of issuing an extra correction bolus a couple of
        hours after a meal.  Over-corrections are the main source of
        (transient) hypoglycemia in the synthetic traces.
    correction_units:
        Range of correction bolus sizes in insulin units.
    """

    carb_ratio: float = 10.0
    correction_factor: float = 40.0
    target_glucose: float = 110.0
    compliance: float = 0.95
    timing_offset: float = 0.0
    timing_error_std: float = 8.0
    counting_error_std: float = 0.1
    correction_probability: float = 0.35
    correction_units: Tuple[float, float] = (1.0, 2.5)


@dataclass
class ExercisePlan:
    """Daily exercise habits."""

    session_probability: float = 0.35
    start_window: Tuple[int, int] = (16 * 60, 20 * 60)
    duration_minutes: Tuple[int, int] = (20, 60)
    intensity: Tuple[float, float] = (0.3, 0.8)


@dataclass
class BehaviourProfile:
    """Complete behavioural description of a patient."""

    meal_plan: MealPlan = field(default_factory=MealPlan)
    bolus_policy: BolusPolicy = field(default_factory=BolusPolicy)
    exercise_plan: ExercisePlan = field(default_factory=ExercisePlan)
    basal_rate: float = 1.0


class DailyScheduleGenerator:
    """Generate minute-resolution exogenous inputs for a number of days."""

    def __init__(self, behaviour: BehaviourProfile, seed=None):
        self.behaviour = behaviour
        self._rng = as_random_state(seed)

    # ------------------------------------------------------------------ meals
    def _daily_meals(self, rng: RandomState) -> List[MealEvent]:
        plan = self.behaviour.meal_plan
        events: List[MealEvent] = []
        for nominal_minute, nominal_carbs in zip(plan.meal_times, plan.meal_carbs):
            if rng.random() < plan.skip_probability:
                continue
            minute = int(np.clip(rng.normal(nominal_minute, plan.time_jitter_std), 0, 1439))
            carbs = max(5.0, rng.normal(nominal_carbs, plan.carb_jitter_std))
            events.append(MealEvent(minute=minute, carbs=carbs))
        if rng.random() < plan.snack_probability:
            minute = int(rng.uniform(14 * 60, 16 * 60))
            carbs = max(5.0, rng.normal(plan.snack_carbs, 5.0))
            # Snacks are often not announced to the bolus calculator.
            events.append(MealEvent(minute=minute, carbs=carbs, announced=rng.random() < 0.5))
        events.sort(key=lambda event: event.minute)
        return events

    def _bolus_for_meal(self, meal: MealEvent, rng: RandomState) -> Optional[Tuple[int, float]]:
        policy = self.behaviour.bolus_policy
        if not meal.announced or rng.random() > policy.compliance:
            return None
        counted_carbs = meal.carbs * (1.0 + rng.normal(0.0, policy.counting_error_std))
        dose = max(0.0, counted_carbs / policy.carb_ratio)
        minute = int(
            np.clip(
                meal.minute + policy.timing_offset + rng.normal(0.0, policy.timing_error_std),
                0,
                1439,
            )
        )
        return minute, dose

    def _daily_correction(
        self, meals: Sequence[MealEvent], rng: RandomState
    ) -> Optional[Tuple[int, float]]:
        """Occasionally add a post-meal correction bolus (may over-correct)."""
        policy = self.behaviour.bolus_policy
        if not meals or rng.random() > policy.correction_probability:
            return None
        meal = meals[int(rng.integers(0, len(meals)))]
        minute = int(np.clip(meal.minute + rng.uniform(90, 200), 0, 1439))
        dose = float(rng.uniform(*policy.correction_units))
        return minute, dose

    def _daily_exercise(self, rng: RandomState) -> Optional[Tuple[int, int, float]]:
        plan = self.behaviour.exercise_plan
        if rng.random() > plan.session_probability:
            return None
        start = int(rng.uniform(*plan.start_window))
        duration = int(rng.uniform(*plan.duration_minutes))
        intensity = float(rng.uniform(*plan.intensity))
        return start, duration, intensity

    # ------------------------------------------------------------------ driver
    def generate(self, days: int) -> SimulationInputs:
        """Generate exogenous inputs for ``days`` consecutive days."""
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        total_minutes = days * MINUTES_PER_DAY
        carbs = np.zeros(total_minutes)
        bolus = np.zeros(total_minutes)
        basal = np.full(total_minutes, self.behaviour.basal_rate)
        exercise = np.zeros(total_minutes)

        for day in range(days):
            offset = day * MINUTES_PER_DAY
            meals = self._daily_meals(self._rng)
            for meal in meals:
                carbs[offset + meal.minute] += meal.carbs
                bolus_event = self._bolus_for_meal(meal, self._rng)
                if bolus_event is not None:
                    minute, dose = bolus_event
                    bolus[offset + minute] += dose
            correction = self._daily_correction(meals, self._rng)
            if correction is not None:
                minute, dose = correction
                bolus[offset + minute] += dose
            session = self._daily_exercise(self._rng)
            if session is not None:
                start, duration, intensity = session
                end = min(start + duration, MINUTES_PER_DAY)
                exercise[offset + start : offset + end] = intensity

        return SimulationInputs(carbs=carbs, bolus=bolus, basal=basal, exercise=exercise)
