"""Model-facing dataset views: forecasting windows and detection windows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN, Cohort, FEATURE_NAMES, PatientRecord
from repro.utils.timeseries import StandardScaler, sliding_windows
from repro.utils.validation import check_array

#: Default forecasting history: 12 five-minute samples = one hour of context.
DEFAULT_HISTORY = 12

#: Default forecasting horizon: 6 five-minute samples = 30 minutes ahead,
#: the standard prediction horizon for OhioT1DM glucose forecasting.
DEFAULT_HORIZON = 6


@dataclass
class ForecastingSample:
    """A single (window, target) pair with provenance information."""

    patient_label: str
    window: np.ndarray
    target: float
    target_index: int


class ForecastingDataset:
    """Supervised windows for glucose forecasting.

    Builds ``(history, n_features)`` input windows and scalar CGM targets
    ``horizon`` steps ahead, optionally pooled across several patients (this
    is how the paper's *aggregate* model is trained).

    Parameters
    ----------
    history:
        Number of past samples fed to the forecaster.
    horizon:
        Number of steps ahead of the window end that the target lies.
    """

    def __init__(self, history: int = DEFAULT_HISTORY, horizon: int = DEFAULT_HORIZON):
        if history <= 0 or horizon <= 0:
            raise ValueError("history and horizon must be positive")
        self.history = int(history)
        self.horizon = int(horizon)

    def windows_from_features(
        self, features: np.ndarray, patient_label: str = ""
    ) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Build windows/targets/target-indices from a raw feature matrix."""
        features = check_array(features, "features", ndim=2)
        length = features.shape[0]
        last_start = length - self.history - self.horizon
        if last_start < 0:
            return (
                np.empty((0, self.history, features.shape[1])),
                np.empty((0,)),
                [],
            )
        windows = []
        targets = []
        target_indices = []
        for start in range(last_start + 1):
            end = start + self.history
            target_index = end + self.horizon - 1
            windows.append(features[start:end])
            targets.append(features[target_index, CGM_COLUMN])
            target_indices.append(target_index)
        return np.stack(windows), np.asarray(targets), target_indices

    def from_record(
        self, record: PatientRecord, split: str = "train"
    ) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Build windows for a single patient record."""
        return self.windows_from_features(record.features(split), record.label)

    def from_cohort(
        self, cohort: Cohort, split: str = "train"
    ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        """Pool windows from every patient in the cohort (aggregate model)."""
        all_windows = []
        all_targets = []
        labels: List[str] = []
        for record in cohort:
            windows, targets, _ = self.from_record(record, split)
            if len(windows) == 0:
                continue
            all_windows.append(windows)
            all_targets.append(targets)
            labels.extend([record.label] * len(windows))
        if not all_windows:
            return np.empty((0, self.history, len(FEATURE_NAMES))), np.empty((0,)), []
        return np.concatenate(all_windows), np.concatenate(all_targets), labels


class WindowScaler:
    """Fit a feature-wise scaler on flattened windows and apply it to windows.

    The scaler is fit on the training windows only and reused for test and
    adversarial windows, which mirrors deployment (the attacker cannot change
    the model's normalization statistics).
    """

    def __init__(self):
        self._scaler = StandardScaler()
        self.n_features_: Optional[int] = None

    def fit(self, windows: np.ndarray) -> "WindowScaler":
        windows = check_array(windows, "windows", ndim=3)
        self.n_features_ = windows.shape[2]
        flat = windows.reshape(-1, self.n_features_)
        self._scaler.fit(flat)
        return self

    def transform(self, windows: np.ndarray) -> np.ndarray:
        windows = check_array(windows, "windows", ndim=3)
        if self.n_features_ is None:
            raise RuntimeError("WindowScaler is not fitted")
        flat = windows.reshape(-1, self.n_features_)
        return self._scaler.transform(flat).reshape(windows.shape)

    def fit_transform(self, windows: np.ndarray) -> np.ndarray:
        return self.fit(windows).transform(windows)

    def transform_samples(self, samples: np.ndarray) -> np.ndarray:
        """Scale raw ``(n, features)`` samples with the fitted window statistics.

        Window scaling is feature-wise over flattened rows, so scaling a sample
        once at arrival is numerically identical to scaling it inside every
        window it later appears in — the invariant the streaming serving path
        relies on to do O(1) scaling work per tick.
        """
        samples = check_array(samples, "samples", ndim=2)
        if self.n_features_ is None:
            raise RuntimeError("WindowScaler is not fitted")
        if samples.shape[1] != self.n_features_:
            raise ValueError(
                f"samples must have {self.n_features_} features, got {samples.shape[1]}"
            )
        return self._scaler.transform(samples)

    def transform_samples_unchecked(self, samples: np.ndarray) -> np.ndarray:
        """:meth:`transform_samples` minus input validation.

        Bitwise-identical scaling for callers on the per-tick serving hot
        path that have already validated ``samples`` as a float64
        ``(n, n_features)`` array (see ``GlucosePredictor.step_one``).
        """
        return self._scaler.transform_unchecked(samples)

    def signature(self) -> bytes:
        """Bytes fingerprinting the fitted statistics (for model-identity hashing)."""
        if self.n_features_ is None:
            raise RuntimeError("WindowScaler is not fitted")
        return (
            np.ascontiguousarray(self._scaler.mean_).tobytes()
            + np.ascontiguousarray(self._scaler.std_).tobytes()
        )

    @property
    def cgm_mean(self) -> float:
        return float(self._scaler.mean_[CGM_COLUMN])

    @property
    def cgm_std(self) -> float:
        return float(self._scaler.std_[CGM_COLUMN])

    def scale_target(self, targets: np.ndarray) -> np.ndarray:
        """Scale CGM targets with the CGM channel statistics."""
        return (np.asarray(targets, dtype=np.float64) - self.cgm_mean) / (self.cgm_std + 1e-8)

    def unscale_target(self, scaled: np.ndarray) -> np.ndarray:
        """Invert :meth:`scale_target`."""
        return np.asarray(scaled, dtype=np.float64) * (self.cgm_std + 1e-8) + self.cgm_mean


def detection_windows(
    features: np.ndarray, sequence_length: int = 12, step: int = 1
) -> np.ndarray:
    """Sliding multivariate windows for sequence anomaly detectors (MAD-GAN)."""
    features = check_array(features, "features", ndim=2)
    return sliding_windows(features, window=sequence_length, step=step)


def flatten_windows(windows: np.ndarray) -> np.ndarray:
    """Flatten ``(n, T, F)`` windows into ``(n, T*F)`` vectors for kNN/OCSVM."""
    windows = check_array(windows, "windows", ndim=3)
    return windows.reshape(windows.shape[0], -1)
