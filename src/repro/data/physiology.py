"""Glucose–insulin physiology simulator.

This module provides the data substrate that replaces the (licensed, not
redistributable) OhioT1DM dataset.  It implements an extended Bergman minimal
model of glucose–insulin dynamics for a Type-1 diabetes patient:

* plasma glucose ``G`` with endogenous production and insulin-dependent uptake,
* remote insulin action ``X``,
* plasma insulin ``I`` driven by basal and bolus delivery,
* two-compartment gut absorption of carbohydrate meals,
* a circadian modulation of insulin sensitivity (dawn phenomenon),
* exercise-induced sensitivity boosts, and
* CGM sensor noise and drift.

The model is integrated with a fixed-step Euler scheme at one-minute
resolution and sampled every five minutes to mimic CGM cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, as_random_state
from repro.utils.validation import check_positive

#: Number of minutes between consecutive CGM samples (OhioT1DM cadence).
CGM_SAMPLE_MINUTES = 5

#: Physiological ceiling reported in the OhioT1DM dataset (mg/dL).
MAX_SENSOR_GLUCOSE = 499.0

#: Physiological floor for CGM sensors (mg/dL).
MIN_SENSOR_GLUCOSE = 20.0


@dataclass
class PhysiologyParameters:
    """Parameters of the extended Bergman minimal model for one patient.

    Attributes
    ----------
    basal_glucose:
        Steady-state plasma glucose in mg/dL in the absence of meals.
    insulin_sensitivity:
        Scale on the insulin-dependent glucose uptake (``p3`` pathway); larger
        values mean insulin lowers glucose faster.
    glucose_effectiveness:
        ``p1`` — insulin-independent glucose clearance rate (1/min).
    insulin_action_decay:
        ``p2`` — decay rate of remote insulin action (1/min).
    insulin_clearance:
        ``n`` — plasma insulin clearance rate (1/min).
    insulin_potency:
        Conversion from excess plasma insulin to remote insulin action; together
        with ``insulin_sensitivity`` this sets how far one unit of insulin
        lowers glucose (roughly the clinical correction factor).
    carb_bioavailability:
        Fraction of ingested carbohydrate reaching plasma.
    gut_absorption_rate:
        Rate constant of gut-to-plasma glucose absorption (1/min).
    distribution_volume:
        Glucose distribution volume (dL) used to convert absorbed carbs to a
        concentration increment.
    basal_insulin_rate:
        Steady-state basal insulin infusion (units/hour).
    dawn_amplitude:
        Amplitude of the circadian increase of glucose production (mg/dL/min).
    sensor_noise_std:
        Standard deviation of additive CGM noise (mg/dL).
    sensor_drift_std:
        Standard deviation of the slow sensor drift random walk.
    variability:
        Day-to-day multiplicative variability of insulin sensitivity.
    """

    basal_glucose: float = 120.0
    insulin_sensitivity: float = 1.0
    glucose_effectiveness: float = 0.01
    insulin_action_decay: float = 0.02
    insulin_clearance: float = 0.03
    insulin_potency: float = 0.009
    carb_bioavailability: float = 0.8
    gut_absorption_rate: float = 0.03
    distribution_volume: float = 160.0
    basal_insulin_rate: float = 1.0
    dawn_amplitude: float = 0.25
    sensor_noise_std: float = 4.0
    sensor_drift_std: float = 0.4
    variability: float = 0.08

    def validate(self) -> "PhysiologyParameters":
        """Raise ``ValueError`` for non-physiological parameter values."""
        check_positive(self.basal_glucose, "basal_glucose")
        check_positive(self.insulin_sensitivity, "insulin_sensitivity")
        check_positive(self.glucose_effectiveness, "glucose_effectiveness")
        check_positive(self.insulin_action_decay, "insulin_action_decay")
        check_positive(self.insulin_clearance, "insulin_clearance")
        check_positive(self.insulin_potency, "insulin_potency")
        check_positive(self.distribution_volume, "distribution_volume")
        check_positive(self.gut_absorption_rate, "gut_absorption_rate")
        if not 0.0 < self.carb_bioavailability <= 1.0:
            raise ValueError("carb_bioavailability must be in (0, 1]")
        if self.sensor_noise_std < 0 or self.sensor_drift_std < 0:
            raise ValueError("sensor noise parameters must be non-negative")
        return self


@dataclass
class SimulationInputs:
    """Minute-resolution exogenous inputs driving a simulation.

    All arrays share the same length ``T`` (total minutes simulated).

    Attributes
    ----------
    carbs:
        Grams of carbohydrate ingested at each minute (impulse per meal).
    bolus:
        Bolus insulin delivered at each minute (units, impulse).
    basal:
        Basal insulin rate at each minute (units/hour).
    exercise:
        Exercise intensity in [0, 1] at each minute.
    """

    carbs: np.ndarray
    bolus: np.ndarray
    basal: np.ndarray
    exercise: np.ndarray

    def __post_init__(self):
        lengths = {len(self.carbs), len(self.bolus), len(self.basal), len(self.exercise)}
        if len(lengths) != 1:
            raise ValueError(f"all input arrays must share a length, got {sorted(lengths)}")

    @property
    def minutes(self) -> int:
        return len(self.carbs)


@dataclass
class SimulationResult:
    """Output of a physiological simulation sampled at CGM cadence."""

    minutes: np.ndarray
    cgm: np.ndarray
    plasma_glucose: np.ndarray
    plasma_insulin: np.ndarray
    carbs: np.ndarray
    bolus: np.ndarray
    basal: np.ndarray
    heart_rate: np.ndarray
    exercise: np.ndarray
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return len(self.cgm)


class GlucoseInsulinSimulator:
    """Simulate CGM traces for a Type-1 diabetes patient.

    Parameters
    ----------
    parameters:
        Physiological parameters for the simulated patient.
    seed:
        Seed (or :class:`RandomState`) controlling sensor noise, circadian
        phase jitter, and day-to-day variability.
    """

    def __init__(self, parameters: PhysiologyParameters, seed=None):
        self.parameters = parameters.validate()
        self._rng = as_random_state(seed)

    # ------------------------------------------------------------------ dynamics
    def _endogenous_production(self, minute_of_day: float, dawn_phase: float) -> float:
        """Circadian (dawn-phenomenon) endogenous glucose production in mg/dL/min."""
        params = self.parameters
        angle = 2.0 * np.pi * (minute_of_day / 1440.0) + dawn_phase
        return params.dawn_amplitude * max(0.0, np.sin(angle)) ** 2

    def simulate(self, inputs: SimulationInputs) -> SimulationResult:
        """Run the minute-resolution simulation and sample it at CGM cadence."""
        params = self.parameters
        rng = self._rng
        total_minutes = inputs.minutes

        basal_insulin_concentration = (
            params.basal_insulin_rate / 60.0 / params.insulin_clearance
        )

        glucose = params.basal_glucose
        remote_insulin = 0.0
        plasma_insulin = basal_insulin_concentration
        gut_compartment_1 = 0.0
        gut_compartment_2 = 0.0
        sensor_drift = 0.0
        dawn_phase = float(rng.uniform(-0.3, 0.3))
        sensitivity_factor = 1.0

        glucose_trace = np.empty(total_minutes)
        insulin_trace = np.empty(total_minutes)

        for minute in range(total_minutes):
            minute_of_day = minute % 1440
            if minute_of_day == 0:
                # Resample day-level insulin sensitivity variability each midnight.
                sensitivity_factor = float(
                    np.clip(rng.normal(1.0, params.variability), 0.6, 1.4)
                )

            carbs_in = inputs.carbs[minute]
            bolus_in = inputs.bolus[minute]
            basal_rate = inputs.basal[minute]
            exercise_level = inputs.exercise[minute]

            # Gut absorption: two linear compartments.
            gut_compartment_1 += carbs_in * 1000.0 * params.carb_bioavailability
            absorbed_1 = params.gut_absorption_rate * gut_compartment_1
            gut_compartment_1 -= absorbed_1
            gut_compartment_2 += absorbed_1
            rate_of_appearance = params.gut_absorption_rate * gut_compartment_2
            gut_compartment_2 -= rate_of_appearance

            # Insulin kinetics: basal + bolus impulse, first-order clearance.
            insulin_input = basal_rate / 60.0 + bolus_in
            plasma_insulin += (
                -params.insulin_clearance * (plasma_insulin - 0.0) + insulin_input
            )
            plasma_insulin = max(plasma_insulin, 0.0)

            # Remote insulin action.
            effective_sensitivity = (
                params.insulin_sensitivity * sensitivity_factor * (1.0 + 0.5 * exercise_level)
            )
            remote_insulin += (
                -params.insulin_action_decay * remote_insulin
                + params.insulin_action_decay
                * params.insulin_potency
                * effective_sensitivity
                * (plasma_insulin - basal_insulin_concentration)
            )

            # Glucose dynamics.
            production = self._endogenous_production(minute_of_day, dawn_phase)
            uptake = params.glucose_effectiveness * (glucose - params.basal_glucose)
            insulin_effect = remote_insulin * glucose
            meal_effect = rate_of_appearance / params.distribution_volume
            exercise_uptake = 0.5 * exercise_level
            glucose += production - uptake - insulin_effect + meal_effect - exercise_uptake
            glucose = float(np.clip(glucose, 30.0, 600.0))

            glucose_trace[minute] = glucose
            insulin_trace[minute] = plasma_insulin

        # Sample at CGM cadence and add sensor noise / drift.
        sample_indices = np.arange(0, total_minutes, CGM_SAMPLE_MINUTES)
        cgm = np.empty(len(sample_indices))
        for position, index in enumerate(sample_indices):
            sensor_drift += rng.normal(0.0, params.sensor_drift_std)
            sensor_drift *= 0.98
            noise = rng.normal(0.0, params.sensor_noise_std)
            cgm[position] = np.clip(
                glucose_trace[index] + sensor_drift + noise,
                MIN_SENSOR_GLUCOSE,
                MAX_SENSOR_GLUCOSE,
            )

        heart_rate = self._heart_rate(inputs, sample_indices)
        carbs_sampled = _sum_bins(inputs.carbs, sample_indices, CGM_SAMPLE_MINUTES)
        bolus_sampled = _sum_bins(inputs.bolus, sample_indices, CGM_SAMPLE_MINUTES)
        basal_sampled = inputs.basal[sample_indices]
        exercise_sampled = inputs.exercise[sample_indices]

        return SimulationResult(
            minutes=sample_indices.astype(np.float64),
            cgm=cgm,
            plasma_glucose=glucose_trace[sample_indices],
            plasma_insulin=insulin_trace[sample_indices],
            carbs=carbs_sampled,
            bolus=bolus_sampled,
            basal=basal_sampled,
            heart_rate=heart_rate,
            exercise=exercise_sampled,
            meta={"dawn_phase": dawn_phase},
        )

    def _heart_rate(self, inputs: SimulationInputs, sample_indices: np.ndarray) -> np.ndarray:
        """Derive a plausible heart-rate trace from exercise and circadian rhythm."""
        rng = self._rng
        base = 62.0 + rng.normal(0.0, 3.0)
        heart_rate = np.empty(len(sample_indices))
        for position, index in enumerate(sample_indices):
            minute_of_day = index % 1440
            circadian = 8.0 * np.sin(2.0 * np.pi * (minute_of_day - 300.0) / 1440.0)
            exercise_component = 55.0 * inputs.exercise[index]
            noise = rng.normal(0.0, 2.5)
            heart_rate[position] = np.clip(base + circadian + exercise_component + noise, 40, 190)
        return heart_rate


def _sum_bins(values: np.ndarray, sample_indices: np.ndarray, width: int) -> np.ndarray:
    """Aggregate minute-level impulses into per-sample bins."""
    result = np.zeros(len(sample_indices))
    for position, index in enumerate(sample_indices):
        result[position] = values[index : index + width].sum()
    return result


def steady_state_glucose(parameters: PhysiologyParameters) -> float:
    """Return the no-meal steady-state glucose implied by the parameters."""
    return parameters.basal_glucose
