"""Synthetic OhioT1DM-like data substrate.

Replaces the licensed OhioT1DM dataset with a physiological glucose–insulin
simulator and a 12-patient cohort whose per-patient heterogeneity mirrors the
vulnerability structure the paper reports (see ``DESIGN.md`` for the
substitution rationale).
"""

from repro.data.physiology import (
    CGM_SAMPLE_MINUTES,
    MAX_SENSOR_GLUCOSE,
    MIN_SENSOR_GLUCOSE,
    GlucoseInsulinSimulator,
    PhysiologyParameters,
    SimulationInputs,
    SimulationResult,
)
from repro.data.events import (
    BehaviourProfile,
    BolusPolicy,
    DailyScheduleGenerator,
    ExercisePlan,
    MealEvent,
    MealPlan,
)
from repro.data.patient import (
    SUBSET_A,
    SUBSET_B,
    PatientProfile,
    build_cohort_profiles,
    expected_less_vulnerable_labels,
    expected_more_vulnerable_labels,
    make_patient_profile,
)
from repro.data.cohort import (
    CGM_COLUMN,
    FEATURE_NAMES,
    Cohort,
    PatientRecord,
    SyntheticOhioT1DM,
    build_feature_matrix,
    generate_cohort,
)
from repro.data.dataset import (
    DEFAULT_HISTORY,
    DEFAULT_HORIZON,
    ForecastingDataset,
    WindowScaler,
    detection_windows,
    flatten_windows,
)

__all__ = [
    "CGM_SAMPLE_MINUTES",
    "MAX_SENSOR_GLUCOSE",
    "MIN_SENSOR_GLUCOSE",
    "GlucoseInsulinSimulator",
    "PhysiologyParameters",
    "SimulationInputs",
    "SimulationResult",
    "BehaviourProfile",
    "BolusPolicy",
    "DailyScheduleGenerator",
    "ExercisePlan",
    "MealEvent",
    "MealPlan",
    "SUBSET_A",
    "SUBSET_B",
    "PatientProfile",
    "build_cohort_profiles",
    "expected_less_vulnerable_labels",
    "expected_more_vulnerable_labels",
    "make_patient_profile",
    "CGM_COLUMN",
    "FEATURE_NAMES",
    "Cohort",
    "PatientRecord",
    "SyntheticOhioT1DM",
    "build_feature_matrix",
    "generate_cohort",
    "DEFAULT_HISTORY",
    "DEFAULT_HORIZON",
    "ForecastingDataset",
    "WindowScaler",
    "detection_windows",
    "flatten_windows",
]
