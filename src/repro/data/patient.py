"""Patient profiles for the synthetic OhioT1DM-like cohort.

The OhioT1DM dataset contains 12 Type-1 diabetes patients — six released in
2018 (the paper's *Subset A*) and six in 2020 (*Subset B*).  The paper's
clustering places patient 5 of Subset A and patients 1 and 2 of Subset B in
the "less vulnerable" cluster; those patients exhibit the highest benign
normal-to-abnormal glucose ratio (paper Fig. 4).

The synthetic cohort mirrors that structure: "well-controlled" profiles use
high bolus compliance, accurate carbohydrate counting, and low day-to-day
variability, which yields mostly-normal benign traces; "poorly-controlled"
profiles have the opposite and spend much more time in hyper/hypoglycemia.
The concrete glucose values come from the physiology simulator, not from the
real dataset, so only the qualitative heterogeneity is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.data.events import BehaviourProfile, BolusPolicy, ExercisePlan, MealPlan
from repro.data.physiology import PhysiologyParameters

#: Subset identifiers used throughout the library.
SUBSET_A = "A"
SUBSET_B = "B"

#: Degree of glycemic control; drives both physiology and behaviour presets.
CONTROL_LEVELS = ("excellent", "good", "fair", "poor", "very_poor")


@dataclass
class PatientProfile:
    """Full description of one synthetic patient.

    Attributes
    ----------
    patient_id:
        Index within the subset (0-5), matching the paper's ``p0`` ... ``p5``.
    subset:
        ``"A"`` (2018 cohort) or ``"B"`` (2020 cohort).
    control_level:
        Qualitative degree of glycemic control used to derive the presets.
    physiology:
        Parameters of the glucose–insulin simulator.
    behaviour:
        Meal / bolus / exercise behaviour.
    seed_offset:
        Per-patient offset mixed into the cohort seed for reproducibility.
    """

    patient_id: int
    subset: str
    control_level: str
    physiology: PhysiologyParameters
    behaviour: BehaviourProfile
    seed_offset: int = 0

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"A_5"``."""
        return f"{self.subset}_{self.patient_id}"

    def __post_init__(self):
        if self.subset not in (SUBSET_A, SUBSET_B):
            raise ValueError(f"subset must be 'A' or 'B', got {self.subset!r}")
        if not 0 <= self.patient_id <= 11:
            raise ValueError(f"patient_id must be in [0, 11], got {self.patient_id}")
        if self.control_level not in CONTROL_LEVELS:
            raise ValueError(
                f"control_level must be one of {CONTROL_LEVELS}, got {self.control_level!r}"
            )


def _physiology_for(control_level: str) -> PhysiologyParameters:
    """Physiological presets per control level.

    Better-controlled patients sit closer to normoglycemia and respond more
    predictably to insulin; poorly controlled patients have elevated basal
    glucose, blunted insulin sensitivity, and larger variability.
    """
    presets = {
        "excellent": PhysiologyParameters(
            basal_glucose=105.0,
            insulin_sensitivity=1.35,
            variability=0.05,
            sensor_noise_std=3.5,
            dawn_amplitude=0.18,
            gut_absorption_rate=0.02,
        ),
        "good": PhysiologyParameters(
            basal_glucose=112.0,
            insulin_sensitivity=1.28,
            variability=0.06,
            sensor_noise_std=4.0,
            dawn_amplitude=0.2,
            gut_absorption_rate=0.02,
        ),
        "fair": PhysiologyParameters(
            basal_glucose=138.0,
            insulin_sensitivity=0.95,
            variability=0.1,
            sensor_noise_std=4.5,
            dawn_amplitude=0.28,
        ),
        "poor": PhysiologyParameters(
            basal_glucose=148.0,
            insulin_sensitivity=0.85,
            variability=0.13,
            sensor_noise_std=5.0,
            dawn_amplitude=0.3,
        ),
        "very_poor": PhysiologyParameters(
            basal_glucose=160.0,
            insulin_sensitivity=0.75,
            variability=0.16,
            sensor_noise_std=5.5,
            dawn_amplitude=0.34,
        ),
    }
    return presets[control_level]


def _behaviour_for(control_level: str) -> BehaviourProfile:
    """Behavioural presets per control level."""
    presets = {
        "excellent": BehaviourProfile(
            meal_plan=MealPlan(
                meal_carbs=(35.0, 45.0, 55.0),
                time_jitter_std=12.0,
                carb_jitter_std=5.0,
                snack_probability=0.2,
            ),
            bolus_policy=BolusPolicy(
                compliance=0.98,
                counting_error_std=0.05,
                timing_offset=-20.0,
                timing_error_std=5.0,
                correction_probability=0.6,
                correction_units=(2.0, 3.5),
            ),
            exercise_plan=ExercisePlan(session_probability=0.5),
            basal_rate=1.05,
        ),
        "good": BehaviourProfile(
            meal_plan=MealPlan(
                meal_carbs=(38.0, 48.0, 58.0),
                time_jitter_std=18.0,
                carb_jitter_std=6.0,
                snack_probability=0.25,
            ),
            bolus_policy=BolusPolicy(
                compliance=0.93,
                counting_error_std=0.08,
                timing_offset=-18.0,
                timing_error_std=7.0,
                correction_probability=0.55,
                correction_units=(2.0, 3.5),
            ),
            exercise_plan=ExercisePlan(session_probability=0.4),
            basal_rate=1.0,
        ),
        "fair": BehaviourProfile(
            meal_plan=MealPlan(time_jitter_std=25.0, carb_jitter_std=10.0, snack_probability=0.4),
            bolus_policy=BolusPolicy(
                compliance=0.85,
                counting_error_std=0.15,
                timing_error_std=12.0,
                correction_probability=0.4,
                correction_units=(1.0, 3.0),
            ),
            exercise_plan=ExercisePlan(session_probability=0.3),
            basal_rate=0.95,
        ),
        "poor": BehaviourProfile(
            meal_plan=MealPlan(
                time_jitter_std=35.0,
                carb_jitter_std=14.0,
                snack_probability=0.55,
                skip_probability=0.1,
            ),
            bolus_policy=BolusPolicy(
                compliance=0.72,
                counting_error_std=0.22,
                timing_error_std=18.0,
                correction_probability=0.3,
                correction_units=(1.0, 3.5),
            ),
            exercise_plan=ExercisePlan(session_probability=0.2),
            basal_rate=0.9,
        ),
        "very_poor": BehaviourProfile(
            meal_plan=MealPlan(
                time_jitter_std=45.0,
                carb_jitter_std=18.0,
                snack_probability=0.65,
                skip_probability=0.15,
            ),
            bolus_policy=BolusPolicy(
                compliance=0.7,
                counting_error_std=0.28,
                timing_error_std=25.0,
                correction_probability=0.25,
                correction_units=(1.0, 4.0),
            ),
            exercise_plan=ExercisePlan(session_probability=0.15),
            basal_rate=0.85,
        ),
    }
    return presets[control_level]


#: Control level per patient, chosen so the vulnerability structure matches the
#: paper's Table II (A_5, B_1, B_2 are the least vulnerable patients).
_COHORT_CONTROL_LEVELS: Dict[Tuple[str, int], str] = {
    (SUBSET_A, 0): "fair",
    (SUBSET_A, 1): "poor",
    (SUBSET_A, 2): "very_poor",
    (SUBSET_A, 3): "fair",
    (SUBSET_A, 4): "poor",
    (SUBSET_A, 5): "excellent",
    (SUBSET_B, 0): "poor",
    (SUBSET_B, 1): "good",
    (SUBSET_B, 2): "excellent",
    (SUBSET_B, 3): "fair",
    (SUBSET_B, 4): "poor",
    (SUBSET_B, 5): "very_poor",
}


def make_patient_profile(subset: str, patient_id: int, control_level: Optional[str] = None) -> PatientProfile:
    """Create a single patient profile.

    Parameters
    ----------
    subset:
        ``"A"`` or ``"B"``.
    patient_id:
        Patient index within the subset (0-5).
    control_level:
        Override the default control level for this (subset, patient) pair.
    """
    key = (subset, patient_id)
    if control_level is None:
        if key not in _COHORT_CONTROL_LEVELS:
            raise ValueError(f"no default control level for patient {subset}_{patient_id}")
        control_level = _COHORT_CONTROL_LEVELS[key]
    if control_level not in CONTROL_LEVELS:
        raise ValueError(
            f"control_level must be one of {CONTROL_LEVELS}, got {control_level!r}"
        )
    seed_offset = (0 if subset == SUBSET_A else 6) + patient_id
    return PatientProfile(
        patient_id=patient_id,
        subset=subset,
        control_level=control_level,
        physiology=_physiology_for(control_level),
        behaviour=_behaviour_for(control_level),
        seed_offset=seed_offset,
    )


def build_cohort_profiles(subsets: Tuple[str, ...] = (SUBSET_A, SUBSET_B)) -> List[PatientProfile]:
    """Build the default 12-patient cohort (or a single subset of six)."""
    profiles = []
    for subset in subsets:
        if subset not in (SUBSET_A, SUBSET_B):
            raise ValueError(f"unknown subset {subset!r}")
        for patient_id in range(6):
            profiles.append(make_patient_profile(subset, patient_id))
    return profiles


def expected_less_vulnerable_labels() -> List[str]:
    """Patient labels the paper identifies as less vulnerable (Table II)."""
    return ["A_5", "B_1", "B_2"]


def expected_more_vulnerable_labels() -> List[str]:
    """Patient labels the paper identifies as more vulnerable (Table II)."""
    return ["A_0", "A_1", "A_2", "A_3", "A_4", "B_0", "B_3", "B_4", "B_5"]
