"""Severity coefficients for glucose state transitions (paper Table I).

The severity coefficient ``S`` weighs how dangerous it is for the prediction
to transition from the benign state to the adversarial state.  The paper uses
exponential coefficients because the clinical impact of state transitions is
strongly non-linear — a hypoglycemic patient diagnosed as hyperglycemic would
receive a large insulin dose on top of already-low glucose, the worst case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.glucose.states import GlucoseState, StateTransition

#: The paper's Table I: severity per (benign, adversarial) state transition.
PAPER_SEVERITY_TABLE: Dict[Tuple[GlucoseState, GlucoseState], float] = {
    (GlucoseState.HYPO, GlucoseState.HYPER): 64.0,
    (GlucoseState.NORMAL, GlucoseState.HYPER): 32.0,
    (GlucoseState.HYPO, GlucoseState.NORMAL): 16.0,
    (GlucoseState.HYPER, GlucoseState.HYPO): 8.0,
    (GlucoseState.HYPER, GlucoseState.NORMAL): 4.0,
    (GlucoseState.NORMAL, GlucoseState.HYPO): 2.0,
}


@dataclass
class SeverityMatrix:
    """Mapping from state transitions to severity coefficients.

    Attributes
    ----------
    table:
        Coefficients per (benign, adversarial) state pair.  Pairs that do not
        change the state fall back to ``same_state_severity``.
    same_state_severity:
        Coefficient applied when the adversarial prediction stays in the
        benign state (no misdiagnosis); the paper treats such manipulations as
        low-risk.
    """

    table: Dict[Tuple[GlucoseState, GlucoseState], float] = field(
        default_factory=lambda: dict(PAPER_SEVERITY_TABLE)
    )
    same_state_severity: float = 1.0

    def __post_init__(self):
        for key, value in self.table.items():
            if value < 0:
                raise ValueError(f"severity for {key} must be non-negative, got {value}")
        if self.same_state_severity < 0:
            raise ValueError("same_state_severity must be non-negative")

    def coefficient(self, transition: StateTransition) -> float:
        """Severity coefficient for a transition."""
        if not transition.is_misdiagnosis:
            return self.same_state_severity
        return self.table.get((transition.benign, transition.adversarial), self.same_state_severity)

    def coefficient_for(self, benign: GlucoseState, adversarial: GlucoseState) -> float:
        """Severity coefficient for an explicit (benign, adversarial) pair."""
        return self.coefficient(StateTransition(benign=benign, adversarial=adversarial))

    def as_rows(self) -> List[Tuple[str, str, float]]:
        """Rows of Table I, ordered by decreasing severity."""
        rows = [
            (benign.value, adversarial.value, severity)
            for (benign, adversarial), severity in self.table.items()
        ]
        return sorted(rows, key=lambda row: -row[2])

    # ----------------------------------------------------------- alternatives
    @classmethod
    def paper_exponential(cls) -> "SeverityMatrix":
        """The paper's exponential coefficients (Table I)."""
        return cls()

    @classmethod
    def linear(cls) -> "SeverityMatrix":
        """A linear alternative (6, 5, 4, 3, 2, 1) used by the sensitivity ablation."""
        ordered = [
            (GlucoseState.HYPO, GlucoseState.HYPER),
            (GlucoseState.NORMAL, GlucoseState.HYPER),
            (GlucoseState.HYPO, GlucoseState.NORMAL),
            (GlucoseState.HYPER, GlucoseState.HYPO),
            (GlucoseState.HYPER, GlucoseState.NORMAL),
            (GlucoseState.NORMAL, GlucoseState.HYPO),
        ]
        return cls(table={pair: float(len(ordered) - index) for index, pair in enumerate(ordered)})

    @classmethod
    def uniform(cls, value: float = 1.0) -> "SeverityMatrix":
        """Severity-agnostic weighting (every misdiagnosis counts the same)."""
        return cls(table={pair: float(value) for pair in PAPER_SEVERITY_TABLE})
