"""Risk profiling framework: the paper's core contribution."""

from repro.risk.severity import PAPER_SEVERITY_TABLE, SeverityMatrix
from repro.risk.quantify import RiskQuantifier, RiskSample
from repro.risk.profile import RiskProfile, RiskProfileBuilder, profile_matrix
from repro.risk.clustering import (
    ClusteringOutcome,
    DendrogramNode,
    HierarchicalClustering,
    MergeStep,
    cluster_profiles,
    pairwise_euclidean,
)
from repro.risk.selection import (
    ALL_STRATEGIES,
    STRATEGY_ALL,
    STRATEGY_LESS_VULNERABLE,
    STRATEGY_MORE_VULNERABLE,
    STRATEGY_RANDOM,
    SelectionPlanner,
    TrainingSelection,
)
from repro.risk.framework import RiskProfilingFramework, VulnerabilityAssessment

__all__ = [
    "PAPER_SEVERITY_TABLE",
    "SeverityMatrix",
    "RiskQuantifier",
    "RiskSample",
    "RiskProfile",
    "RiskProfileBuilder",
    "profile_matrix",
    "ClusteringOutcome",
    "DendrogramNode",
    "HierarchicalClustering",
    "MergeStep",
    "cluster_profiles",
    "pairwise_euclidean",
    "ALL_STRATEGIES",
    "STRATEGY_ALL",
    "STRATEGY_LESS_VULNERABLE",
    "STRATEGY_MORE_VULNERABLE",
    "STRATEGY_RANDOM",
    "SelectionPlanner",
    "TrainingSelection",
    "RiskProfilingFramework",
    "VulnerabilityAssessment",
]
