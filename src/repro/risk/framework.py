"""The five-step risk profiling framework (the paper's core contribution).

Step 1  Simulate the evasion attack against the deployed glucose forecasters.
Step 2  Quantify instantaneous risk ``R_t = S * Z_t`` per timestamp.
Step 3  Construct a continuous time-series risk profile per victim.
Step 4  Hierarchically cluster the risk profiles into vulnerability groups.
Step 5  Select the less-vulnerable cluster to train static anomaly detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.campaign import AttackCampaign, CampaignResult
from repro.data.cohort import Cohort
from repro.glucose.models import GlucoseModelZoo
from repro.risk.clustering import ClusteringOutcome, cluster_profiles
from repro.risk.profile import RiskProfile, RiskProfileBuilder, profile_matrix
from repro.risk.quantify import RiskQuantifier
from repro.risk.selection import SelectionPlanner
from repro.risk.severity import SeverityMatrix


@dataclass
class VulnerabilityAssessment:
    """Output of the risk profiling framework for one cohort.

    Attributes
    ----------
    profiles:
        Per-patient risk profiles (step 3).
    clustering:
        Hierarchical clustering outcome over the profiles (step 4).
    cluster_success_rates:
        Mean attack success (misclassification) rate per cluster, used to
        label clusters.
    less_vulnerable / more_vulnerable:
        Patient labels per vulnerability group (step 4's labelling).
    campaign:
        The raw attack campaign the assessment was derived from (step 1).
    """

    profiles: Dict[str, RiskProfile]
    clustering: ClusteringOutcome
    cluster_success_rates: Dict[int, float]
    less_vulnerable: List[str]
    more_vulnerable: List[str]
    campaign: CampaignResult

    @property
    def patient_success_rates(self) -> Dict[str, float]:
        """Attack success rate per patient (NaN when no window was eligible)."""
        return {
            label: summary.success_rate
            for label, summary in self.campaign.summaries().items()
        }

    def cluster_of(self, patient_label: str) -> int:
        return self.clustering.as_dict()[patient_label]


class RiskProfilingFramework:
    """Orchestrates the five framework steps over a cohort.

    Parameters
    ----------
    zoo:
        Trained glucose forecasters (the "main DNN" under attack).
    severity:
        Severity matrix (defaults to the paper's Table I).
    campaign:
        Attack campaign configuration; defaults to attacking every other
        window of each patient's training split with the greedy explorer.
    linkage:
        Hierarchical clustering linkage.
    n_clusters:
        Number of vulnerability clusters (2 in the paper); ``None`` selects
        the count with the largest-gap rule.
    profile_representation / profile_length:
        How risk profiles are embedded for clustering (see
        :func:`repro.risk.profile.profile_matrix`).
    """

    def __init__(
        self,
        zoo: GlucoseModelZoo,
        severity: Optional[SeverityMatrix] = None,
        campaign: Optional[AttackCampaign] = None,
        linkage: str = "average",
        n_clusters: Optional[int] = 2,
        profile_representation: str = "summary",
        profile_length: int = 64,
    ):
        self.zoo = zoo
        self.severity = severity or SeverityMatrix.paper_exponential()
        self.campaign = campaign or AttackCampaign(zoo, stride=2)
        self.linkage = linkage
        self.n_clusters = n_clusters
        self.profile_representation = profile_representation
        self.profile_length = profile_length
        self.quantifier = RiskQuantifier(self.severity)
        self.profile_builder = RiskProfileBuilder(self.quantifier)

    # ------------------------------------------------------------------ steps
    def simulate_attack(self, cohort: Cohort, split: str = "train") -> CampaignResult:
        """Step 1: simulate the evasion attack over the cohort."""
        return self.campaign.run_cohort(cohort, split=split)

    def build_profiles(self, campaign_result: CampaignResult) -> Dict[str, RiskProfile]:
        """Steps 2 and 3: quantify instantaneous risks and build profiles."""
        return self.profile_builder.from_campaign(campaign_result)

    def cluster(self, profiles: Dict[str, RiskProfile]) -> ClusteringOutcome:
        """Step 4: hierarchically cluster the risk profiles."""
        labels, matrix = profile_matrix(
            profiles,
            representation=self.profile_representation,
            length=self.profile_length,
        )
        return cluster_profiles(
            labels, matrix, linkage=self.linkage, n_clusters=self.n_clusters
        )

    def label_clusters(
        self, clustering: ClusteringOutcome, campaign_result: CampaignResult
    ) -> Dict[int, float]:
        """Label clusters with their mean attack success (misclassification) rate.

        The cluster with the lowest mean success rate is the *less vulnerable*
        one, mirroring how the paper cross-checks its clusters against the
        per-patient misclassification percentages.
        """
        summaries = campaign_result.summaries()
        cluster_rates: Dict[int, float] = {}
        for cluster_index in range(clustering.n_clusters):
            members = clustering.members(cluster_index)
            rates = [
                summaries[label].success_rate
                for label in members
                if label in summaries and not np.isnan(summaries[label].success_rate)
            ]
            cluster_rates[cluster_index] = float(np.mean(rates)) if rates else float("nan")
        return cluster_rates

    # ------------------------------------------------------------------ driver
    def assess(self, cohort: Cohort, split: str = "train") -> VulnerabilityAssessment:
        """Run steps 1-4 and label the clusters."""
        campaign_result = self.simulate_attack(cohort, split=split)
        profiles = self.build_profiles(campaign_result)
        clustering = self.cluster(profiles)
        cluster_rates = self.label_clusters(clustering, campaign_result)

        valid = {
            index: rate for index, rate in cluster_rates.items() if not np.isnan(rate)
        }
        if valid:
            less_vulnerable_cluster = min(valid, key=valid.get)
        else:  # pragma: no cover - degenerate campaign with no eligible windows
            less_vulnerable_cluster = 0
        less_vulnerable = clustering.members(less_vulnerable_cluster)
        more_vulnerable = [
            label for label in clustering.labels if label not in set(less_vulnerable)
        ]
        return VulnerabilityAssessment(
            profiles=profiles,
            clustering=clustering,
            cluster_success_rates=cluster_rates,
            less_vulnerable=less_vulnerable,
            more_vulnerable=more_vulnerable,
            campaign=campaign_result,
        )

    def selection_planner(
        self,
        assessment: VulnerabilityAssessment,
        random_runs: int = 10,
        seed=0,
    ) -> SelectionPlanner:
        """Step 5: build the training-set selection planner from an assessment."""
        return SelectionPlanner(
            all_labels=assessment.clustering.labels,
            less_vulnerable=assessment.less_vulnerable,
            random_runs=random_runs,
            seed=seed,
        )
