"""Step 5 of the framework: training-set selection strategies.

The paper compares four ways of choosing which patients' data to train the
static anomaly detectors on:

* **Less Vulnerable** — the cluster the risk profiling framework labels as
  least vulnerable to the attack (the paper's proposal),
* **More Vulnerable** — the complementary cluster,
* **Random Samples** — three patients drawn at random, repeated over several
  runs and averaged (a baseline controlling for training-set size), and
* **All Patients** — indiscriminate training on the entire cohort (the
  conventional baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.utils.rng import as_random_state

#: Canonical strategy names used across experiments and reports.
STRATEGY_LESS_VULNERABLE = "Less Vulnerable"
STRATEGY_MORE_VULNERABLE = "More Vulnerable"
STRATEGY_RANDOM = "Random Samples"
STRATEGY_ALL = "All Patients"

ALL_STRATEGIES = (
    STRATEGY_LESS_VULNERABLE,
    STRATEGY_MORE_VULNERABLE,
    STRATEGY_RANDOM,
    STRATEGY_ALL,
)


@dataclass
class TrainingSelection:
    """A named selection strategy resolved into one or more patient sets.

    ``runs`` holds one list of patient labels per experiment run; deterministic
    strategies have a single run, the random baseline has several.
    """

    strategy: str
    runs: List[List[str]]

    def __post_init__(self):
        if not self.runs:
            raise ValueError("a selection needs at least one run")
        for run in self.runs:
            if not run:
                raise ValueError("every selection run must contain at least one patient")

    @property
    def n_runs(self) -> int:
        return len(self.runs)


class SelectionPlanner:
    """Resolve the paper's four training strategies into patient label sets.

    Parameters
    ----------
    all_labels:
        Every patient label in the cohort.
    less_vulnerable:
        Labels in the less-vulnerable cluster (from the risk profiling
        framework or from the paper's Table II).
    random_set_size:
        Number of patients per random draw (the paper uses three, matching
        the size of its less-vulnerable cluster).
    random_runs:
        Number of random draws to average over (the paper uses ten).
    seed:
        Seed for the random baseline.
    """

    def __init__(
        self,
        all_labels: Sequence[str],
        less_vulnerable: Sequence[str],
        random_set_size: Optional[int] = None,
        random_runs: int = 10,
        seed=0,
    ):
        self.all_labels = list(all_labels)
        self.less_vulnerable = [label for label in all_labels if label in set(less_vulnerable)]
        if not self.all_labels:
            raise ValueError("all_labels must not be empty")
        if not self.less_vulnerable:
            raise ValueError("less_vulnerable must contain at least one known patient label")
        unknown = set(less_vulnerable) - set(all_labels)
        if unknown:
            raise ValueError(f"unknown less-vulnerable labels: {sorted(unknown)}")
        self.more_vulnerable = [
            label for label in self.all_labels if label not in set(self.less_vulnerable)
        ]
        if not self.more_vulnerable:
            raise ValueError("at least one patient must be outside the less-vulnerable cluster")
        self.random_set_size = int(random_set_size or len(self.less_vulnerable))
        if not 1 <= self.random_set_size <= len(self.all_labels):
            raise ValueError("random_set_size must be within the cohort size")
        self.random_runs = int(random_runs)
        if self.random_runs <= 0:
            raise ValueError("random_runs must be positive")
        self._rng = as_random_state(seed)

    # ----------------------------------------------------------------- planning
    def less_vulnerable_selection(self) -> TrainingSelection:
        return TrainingSelection(STRATEGY_LESS_VULNERABLE, [list(self.less_vulnerable)])

    def more_vulnerable_selection(self) -> TrainingSelection:
        return TrainingSelection(STRATEGY_MORE_VULNERABLE, [list(self.more_vulnerable)])

    def all_patients_selection(self) -> TrainingSelection:
        return TrainingSelection(STRATEGY_ALL, [list(self.all_labels)])

    def random_selection(self) -> TrainingSelection:
        runs = []
        for _ in range(self.random_runs):
            draw = self._rng.choice(
                self.all_labels, size=self.random_set_size, replace=False
            )
            runs.append(sorted(str(label) for label in draw))
        return TrainingSelection(STRATEGY_RANDOM, runs)

    def plan(self, strategies: Sequence[str] = ALL_STRATEGIES) -> Dict[str, TrainingSelection]:
        """Resolve the requested strategies into selections."""
        resolvers = {
            STRATEGY_LESS_VULNERABLE: self.less_vulnerable_selection,
            STRATEGY_MORE_VULNERABLE: self.more_vulnerable_selection,
            STRATEGY_RANDOM: self.random_selection,
            STRATEGY_ALL: self.all_patients_selection,
        }
        unknown = set(strategies) - set(resolvers)
        if unknown:
            raise ValueError(f"unknown strategies: {sorted(unknown)}")
        return {strategy: resolvers[strategy]() for strategy in strategies}

    # ------------------------------------------------------------------ extras
    def training_set_reduction(self) -> float:
        """Fractional reduction in patients when training on the less-vulnerable
        cluster instead of the whole cohort (the paper reports 75% for
        MAD-GAN: 3 of 12 patients)."""
        return 1.0 - len(self.less_vulnerable) / len(self.all_labels)
