"""Step 2 of the framework: instantaneous risk quantification.

The instantaneous risk of manipulating the input at time ``t`` is

    R_t = S * Z_t        with     Z_t = (y_t - f(x_t))^2

where ``y_t`` is the benign model prediction, ``f(x_t)`` the prediction under
attack, and ``S`` the severity coefficient of the induced state transition
(paper Equations 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.campaign import WindowAttackRecord
from repro.attacks.uret import AttackResult
from repro.glucose.states import Scenario, StateTransition, transition_between
from repro.risk.severity import SeverityMatrix


@dataclass
class RiskSample:
    """Instantaneous risk at one timestamp."""

    target_index: int
    benign_prediction: float
    adversarial_prediction: float
    severity: float
    magnitude: float
    risk: float
    transition: StateTransition


class RiskQuantifier:
    """Compute instantaneous risk values from attack outcomes."""

    def __init__(self, severity: Optional[SeverityMatrix] = None):
        self.severity = severity or SeverityMatrix.paper_exponential()

    def magnitude(self, benign_prediction: float, adversarial_prediction: float) -> float:
        """``Z_t``: squared deviation between benign and adversarial predictions."""
        deviation = float(benign_prediction) - float(adversarial_prediction)
        return deviation * deviation

    def risk_of(
        self,
        benign_prediction: float,
        adversarial_prediction: float,
        scenario: Scenario = Scenario.POSTPRANDIAL,
    ) -> float:
        """``R_t = S * Z_t`` for a single pair of predictions."""
        transition = transition_between(benign_prediction, adversarial_prediction, scenario)
        severity = self.severity.coefficient(transition)
        return severity * self.magnitude(benign_prediction, adversarial_prediction)

    def from_attack_result(self, result: AttackResult, target_index: int = -1) -> RiskSample:
        """Risk sample for one attack outcome.

        Ineligible windows (benign prediction already hyperglycemic) carry no
        manipulation, so their deviation — and therefore their risk — is zero.
        """
        if not result.eligible:
            transition = transition_between(
                result.benign_prediction, result.benign_prediction, result.scenario
            )
            return RiskSample(
                target_index=target_index,
                benign_prediction=result.benign_prediction,
                adversarial_prediction=result.benign_prediction,
                severity=self.severity.coefficient(transition),
                magnitude=0.0,
                risk=0.0,
                transition=transition,
            )
        transition = transition_between(
            result.benign_prediction, result.adversarial_prediction, result.scenario
        )
        severity = self.severity.coefficient(transition)
        magnitude = self.magnitude(result.benign_prediction, result.adversarial_prediction)
        return RiskSample(
            target_index=target_index,
            benign_prediction=result.benign_prediction,
            adversarial_prediction=result.adversarial_prediction,
            severity=severity,
            magnitude=magnitude,
            risk=severity * magnitude,
            transition=transition,
        )

    def from_records(self, records: Sequence[WindowAttackRecord]) -> List[RiskSample]:
        """Risk samples for a sequence of campaign records (one patient)."""
        samples = [
            self.from_attack_result(record.result, target_index=record.target_index)
            for record in records
        ]
        samples.sort(key=lambda sample: sample.target_index)
        return samples
