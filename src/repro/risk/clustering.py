"""Step 4 of the framework: hierarchical clustering of risk profiles.

Implements agglomerative clustering from scratch (no scipy dependency): a
distance-matrix-based Lance–Williams update supporting single, complete,
average, and Ward linkage, a scipy-compatible linkage matrix, flat-cluster
extraction by cluster count or by the largest merge-distance gap, and a plain
text dendrogram rendering (the library has no plotting dependency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_array

LINKAGES = ("single", "complete", "average", "ward")


def pairwise_euclidean(matrix: np.ndarray) -> np.ndarray:
    """Dense symmetric matrix of Euclidean distances between rows."""
    matrix = check_array(matrix, "matrix", ndim=2, min_samples=1)
    norms = np.sum(matrix**2, axis=1)
    squared = norms[:, np.newaxis] + norms[np.newaxis, :] - 2.0 * matrix @ matrix.T
    return np.sqrt(np.maximum(squared, 0.0))


@dataclass
class MergeStep:
    """One merge of the agglomeration: which clusters merged and at what distance."""

    left: int
    right: int
    distance: float
    size: int


@dataclass
class DendrogramNode:
    """A node of the dendrogram tree."""

    cluster_id: int
    distance: float = 0.0
    members: List[int] = field(default_factory=list)
    left: Optional["DendrogramNode"] = None
    right: Optional["DendrogramNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class HierarchicalClustering:
    """Agglomerative hierarchical clustering over row vectors.

    Parameters
    ----------
    linkage:
        ``single``, ``complete``, ``average``, or ``ward``.
    """

    def __init__(self, linkage: str = "average"):
        if linkage not in LINKAGES:
            raise ValueError(f"linkage must be one of {LINKAGES}, got {linkage!r}")
        self.linkage = linkage
        self.merges_: Optional[List[MergeStep]] = None
        self.n_samples_: Optional[int] = None

    # ------------------------------------------------------------------ fitting
    def fit(self, matrix: np.ndarray) -> "HierarchicalClustering":
        matrix = check_array(matrix, "matrix", ndim=2, min_samples=2)
        n_samples = matrix.shape[0]
        distances = pairwise_euclidean(matrix)
        if self.linkage == "ward":
            # Ward operates on squared Euclidean distances internally.
            distances = distances**2

        active = {index: [index] for index in range(n_samples)}
        cluster_ids = {index: index for index in range(n_samples)}
        current_distance = {  # condensed view as a dict of dicts
            (i, j): distances[i, j] for i in range(n_samples) for j in range(i + 1, n_samples)
        }
        merges: List[MergeStep] = []
        next_id = n_samples

        while len(active) > 1:
            (best_i, best_j), best_distance = min(
                current_distance.items(), key=lambda item: item[1]
            )
            members_i, members_j = active[best_i], active[best_j]
            merged_members = members_i + members_j
            reported = np.sqrt(best_distance) if self.linkage == "ward" else best_distance
            merges.append(
                MergeStep(
                    left=cluster_ids[best_i],
                    right=cluster_ids[best_j],
                    distance=float(reported),
                    size=len(merged_members),
                )
            )

            # Lance-Williams update of distances from the merged cluster to others.
            new_distances = {}
            for other in active:
                if other in (best_i, best_j):
                    continue
                d_io = current_distance[tuple(sorted((best_i, other)))]
                d_jo = current_distance[tuple(sorted((best_j, other)))]
                if self.linkage == "single":
                    distance = min(d_io, d_jo)
                elif self.linkage == "complete":
                    distance = max(d_io, d_jo)
                elif self.linkage == "average":
                    size_i, size_j = len(members_i), len(members_j)
                    distance = (size_i * d_io + size_j * d_jo) / (size_i + size_j)
                else:  # ward
                    size_i, size_j = len(members_i), len(members_j)
                    size_o = len(active[other])
                    d_ij = best_distance
                    total = size_i + size_j + size_o
                    distance = (
                        (size_i + size_o) * d_io + (size_j + size_o) * d_jo - size_o * d_ij
                    ) / total
                new_distances[other] = distance

            # Remove the two merged clusters and register the new one.
            del active[best_j]
            del active[best_i]
            for key in list(current_distance):
                if best_i in key or best_j in key:
                    del current_distance[key]
            new_key = best_i  # reuse the smaller slot index for the merged cluster
            active[new_key] = merged_members
            cluster_ids[new_key] = next_id
            next_id += 1
            for other, distance in new_distances.items():
                current_distance[tuple(sorted((new_key, other)))] = distance

        self.merges_ = merges
        self.n_samples_ = n_samples
        return self

    # ------------------------------------------------------------------ outputs
    def linkage_matrix(self) -> np.ndarray:
        """A scipy-style ``(n-1, 4)`` linkage matrix."""
        self._check_fitted()
        return np.array(
            [[merge.left, merge.right, merge.distance, merge.size] for merge in self.merges_]
        )

    def _check_fitted(self) -> None:
        if self.merges_ is None:
            raise RuntimeError("HierarchicalClustering is not fitted")

    def _members_by_cluster_id(self) -> Dict[int, List[int]]:
        members: Dict[int, List[int]] = {index: [index] for index in range(self.n_samples_)}
        for offset, merge in enumerate(self.merges_):
            members[self.n_samples_ + offset] = members[merge.left] + members[merge.right]
        return members

    def cut(self, n_clusters: int) -> np.ndarray:
        """Flat cluster labels for a requested number of clusters."""
        self._check_fitted()
        if not 1 <= n_clusters <= self.n_samples_:
            raise ValueError(f"n_clusters must be in [1, {self.n_samples_}], got {n_clusters}")
        members = self._members_by_cluster_id()
        # Undo the last (n_clusters - 1) merges.
        surviving = set(range(self.n_samples_)) | {
            self.n_samples_ + offset for offset in range(len(self.merges_))
        }
        consumed = set()
        for offset, merge in enumerate(self.merges_):
            consumed.add(merge.left)
            consumed.add(merge.right)
        roots = sorted(surviving - consumed)
        # Start from the tree root(s) and split until we reach n_clusters.
        clusters = list(roots)
        merge_by_id = {
            self.n_samples_ + offset: merge for offset, merge in enumerate(self.merges_)
        }
        while len(clusters) < n_clusters:
            # Split the cluster whose merge distance is largest.
            splittable = [cid for cid in clusters if cid in merge_by_id]
            if not splittable:
                break
            to_split = max(splittable, key=lambda cid: merge_by_id[cid].distance)
            clusters.remove(to_split)
            clusters.extend([merge_by_id[to_split].left, merge_by_id[to_split].right])
        labels = np.empty(self.n_samples_, dtype=int)
        for cluster_index, cluster_id in enumerate(sorted(clusters)):
            for member in members[cluster_id]:
                labels[member] = cluster_index
        return labels

    def cut_by_largest_gap(self, max_clusters: int = 4) -> np.ndarray:
        """Choose the cluster count at the largest gap between merge distances.

        Mirrors the paper's procedure of pruning the dendrogram "based on the
        maximum distance between clusters".
        """
        self._check_fitted()
        distances = np.array([merge.distance for merge in self.merges_])
        if len(distances) == 1:
            return self.cut(2)
        gaps = np.diff(distances)
        # Gap after merge k implies cutting into (n_merges - k) clusters.
        candidate_counts = len(self.merges_) - np.arange(len(gaps))
        valid = candidate_counts <= max_clusters
        if not np.any(valid):
            return self.cut(2)
        best_gap_index = int(np.argmax(np.where(valid, gaps, -np.inf)))
        n_clusters = int(candidate_counts[best_gap_index])
        n_clusters = max(2, min(n_clusters, max_clusters))
        return self.cut(n_clusters)

    # --------------------------------------------------------------- dendrogram
    def dendrogram_tree(self) -> DendrogramNode:
        """Root node of the dendrogram tree."""
        self._check_fitted()
        nodes: Dict[int, DendrogramNode] = {
            index: DendrogramNode(cluster_id=index, members=[index])
            for index in range(self.n_samples_)
        }
        for offset, merge in enumerate(self.merges_):
            node_id = self.n_samples_ + offset
            left, right = nodes[merge.left], nodes[merge.right]
            nodes[node_id] = DendrogramNode(
                cluster_id=node_id,
                distance=merge.distance,
                members=left.members + right.members,
                left=left,
                right=right,
            )
        return nodes[self.n_samples_ + len(self.merges_) - 1]

    def render_dendrogram(self, labels: Optional[Sequence[str]] = None) -> str:
        """ASCII rendering of the dendrogram (merge order and distances)."""
        self._check_fitted()
        if labels is None:
            labels = [f"item_{index}" for index in range(self.n_samples_)]
        if len(labels) != self.n_samples_:
            raise ValueError("labels length must match the number of clustered items")

        def describe(node: DendrogramNode, indent: int = 0) -> List[str]:
            prefix = "  " * indent
            if node.is_leaf:
                return [f"{prefix}- {labels[node.cluster_id]}"]
            lines = [f"{prefix}+ merge @ {node.distance:.2f}"]
            lines.extend(describe(node.left, indent + 1))
            lines.extend(describe(node.right, indent + 1))
            return lines

        return "\n".join(describe(self.dendrogram_tree()))


@dataclass
class ClusteringOutcome:
    """Flat clustering of labelled items plus the fitted model."""

    labels: List[str]
    assignments: np.ndarray
    model: HierarchicalClustering

    def members(self, cluster_index: int) -> List[str]:
        return [
            label
            for label, assignment in zip(self.labels, self.assignments)
            if assignment == cluster_index
        ]

    @property
    def n_clusters(self) -> int:
        return int(len(np.unique(self.assignments)))

    def as_dict(self) -> Dict[str, int]:
        return {label: int(assignment) for label, assignment in zip(self.labels, self.assignments)}


def cluster_profiles(
    labels: Sequence[str],
    matrix: np.ndarray,
    linkage: str = "average",
    n_clusters: Optional[int] = 2,
    max_clusters: int = 4,
) -> ClusteringOutcome:
    """Cluster profile row-vectors and return labelled assignments.

    Setting ``n_clusters=None`` selects the count via the largest-gap rule.
    """
    matrix = check_array(matrix, "matrix", ndim=2, min_samples=2)
    if len(labels) != matrix.shape[0]:
        raise ValueError("labels length must match matrix rows")
    model = HierarchicalClustering(linkage=linkage).fit(matrix)
    if n_clusters is None:
        assignments = model.cut_by_largest_gap(max_clusters=max_clusters)
    else:
        assignments = model.cut(n_clusters)
    return ClusteringOutcome(labels=list(labels), assignments=assignments, model=model)
