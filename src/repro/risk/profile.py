"""Step 3 of the framework: continuous time-series risk profiles per victim."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.campaign import CampaignResult
from repro.risk.quantify import RiskQuantifier, RiskSample
from repro.utils.timeseries import exponential_moving_average, resample_series
from repro.utils.validation import check_array


@dataclass
class RiskProfile:
    """A victim's time-series risk profile.

    Attributes
    ----------
    patient_label:
        Which victim the profile belongs to.
    target_indices:
        Sample indices (within the trace) where the risk was evaluated.
    risks:
        Instantaneous risk values ``R_t`` at those indices.
    samples:
        The full per-timestamp risk samples (predictions, severities, ...).
    """

    patient_label: str
    target_indices: np.ndarray
    risks: np.ndarray
    samples: List[RiskSample] = field(default_factory=list)

    def __post_init__(self):
        self.target_indices = np.asarray(self.target_indices, dtype=int)
        self.risks = np.asarray(self.risks, dtype=np.float64)
        if len(self.target_indices) != len(self.risks):
            raise ValueError("target_indices and risks must have the same length")

    def __len__(self) -> int:
        return len(self.risks)

    # ------------------------------------------------------------------ summary
    @property
    def mean_risk(self) -> float:
        return float(self.risks.mean()) if len(self.risks) else 0.0

    @property
    def peak_risk(self) -> float:
        return float(self.risks.max()) if len(self.risks) else 0.0

    @property
    def risk_exposure_fraction(self) -> float:
        """Fraction of timestamps with a non-zero risk."""
        if len(self.risks) == 0:
            return 0.0
        return float(np.mean(self.risks > 0.0))

    def smoothed(self, alpha: float = 0.3) -> np.ndarray:
        """Exponentially smoothed risk profile (for plotting/clustering)."""
        if len(self.risks) == 0:
            return self.risks.copy()
        return exponential_moving_average(self.risks, alpha=alpha)

    def resampled(self, length: int, smooth_alpha: Optional[float] = 0.3) -> np.ndarray:
        """Resample the (optionally smoothed) profile to a common length."""
        values = self.smoothed(smooth_alpha) if smooth_alpha is not None else self.risks
        if len(values) == 0:
            return np.zeros(length)
        return resample_series(values, length)

    def feature_vector(self) -> np.ndarray:
        """Summary statistics used as an alternative clustering representation."""
        if len(self.risks) == 0:
            return np.zeros(6)
        log_risks = np.log1p(self.risks)
        return np.array(
            [
                float(np.mean(log_risks)),
                float(np.std(log_risks)),
                float(np.max(log_risks)),
                float(np.median(log_risks)),
                self.risk_exposure_fraction,
                float(np.mean(self.risks > np.mean(self.risks))) if np.any(self.risks) else 0.0,
            ]
        )


class RiskProfileBuilder:
    """Build per-patient risk profiles from an attack campaign."""

    def __init__(self, quantifier: Optional[RiskQuantifier] = None):
        self.quantifier = quantifier or RiskQuantifier()

    def from_campaign(self, campaign: CampaignResult) -> Dict[str, RiskProfile]:
        """One :class:`RiskProfile` per patient present in the campaign."""
        profiles: Dict[str, RiskProfile] = {}
        for patient_label in campaign.patient_labels:
            records = campaign.for_patient(patient_label)
            samples = self.quantifier.from_records(records)
            profiles[patient_label] = RiskProfile(
                patient_label=patient_label,
                target_indices=np.array([sample.target_index for sample in samples], dtype=int),
                risks=np.array([sample.risk for sample in samples], dtype=np.float64),
                samples=samples,
            )
        return profiles


def profile_matrix(
    profiles: Dict[str, RiskProfile],
    representation: str = "resampled",
    length: int = 64,
    log_scale: bool = True,
) -> "tuple[list[str], np.ndarray]":
    """Stack risk profiles into a matrix for clustering.

    Parameters
    ----------
    profiles:
        Mapping of patient label to profile.
    representation:
        ``"resampled"`` uses the smoothed, length-normalized time series;
        ``"summary"`` uses the summary-statistics feature vector.
    length:
        Target length for the resampled representation.
    log_scale:
        Apply ``log1p`` to resampled risk values (risks span several orders of
        magnitude because of the squared deviation term).
    """
    if not profiles:
        raise ValueError("profiles must not be empty")
    labels = sorted(profiles)
    rows = []
    for label in labels:
        profile = profiles[label]
        if representation == "resampled":
            row = profile.resampled(length)
            if log_scale:
                row = np.log1p(row)
        elif representation == "summary":
            row = profile.feature_vector()
        else:
            raise ValueError("representation must be 'resampled' or 'summary'")
        rows.append(row)
    return labels, np.vstack(rows)
