"""Plain-text report rendering for every paper table and figure.

The library has no plotting dependency, so figures are rendered as aligned
text tables / bar charts that carry the same information (who wins, by how
much, where the crossovers are).  Benchmarks print these reports so that the
regenerated numbers sit next to the paper's claims in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.eval.experiments import AttackSuccessReport, QuadrantCounts, SelectiveTrainingResult
from repro.eval.metrics import percentage_change
from repro.risk.clustering import ClusteringOutcome
from repro.risk.framework import VulnerabilityAssessment
from repro.risk.selection import STRATEGY_ALL, STRATEGY_LESS_VULNERABLE
from repro.risk.severity import SeverityMatrix


def _format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _format_rate(value: float) -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "n/a"
    return f"{100.0 * value:5.1f}%"


def render_severity_table(severity: Optional[SeverityMatrix] = None) -> str:
    """Table I: severity coefficients for state transitions."""
    severity = severity or SeverityMatrix.paper_exponential()
    rows = [
        (benign, adversarial, f"{coefficient:g}")
        for benign, adversarial, coefficient in severity.as_rows()
    ]
    return _format_table(("Benign", "Adversarial", "Severity (S)"), rows)


def render_cluster_table(assessment: VulnerabilityAssessment) -> str:
    """Table II: patient vulnerability clusters."""
    rows = []
    for cluster_index in range(assessment.clustering.n_clusters):
        members = assessment.clustering.members(cluster_index)
        rate = assessment.cluster_success_rates.get(cluster_index, float("nan"))
        label = (
            "Less Vulnerable"
            if set(members) == set(assessment.less_vulnerable)
            else "More Vulnerable"
        )
        rows.append((label, ", ".join(sorted(members)), _format_rate(rate)))
    return _format_table(("Cluster", "Patients", "Mean attack success"), rows)


def render_dendrogram(clustering: ClusteringOutcome) -> str:
    """Figure 3: dendrogram of the risk-profile clustering."""
    return clustering.model.render_dendrogram(clustering.labels)


def render_ratio_figure(ratios: Mapping[str, float], cap: float = 50.0) -> str:
    """Figure 4: benign normal-to-abnormal ratio per patient (text bar chart)."""
    lines = ["Benign normal-to-abnormal ratio per patient"]
    for label in sorted(ratios):
        ratio = ratios[label]
        display = min(ratio, cap)
        bar = "#" * max(1, int(round(display)))
        value = f">{cap:g}" if ratio > cap else f"{ratio:.2f}"
        lines.append(f"  {label}: {value:>7} {bar}")
    return "\n".join(lines)


def render_quadrants(counts: QuadrantCounts) -> str:
    """Figure 6: four-quadrant breakdown of samples."""
    rows = [
        ("benign", "normal", counts.benign_normal),
        ("benign", "abnormal", counts.benign_abnormal),
        ("malicious", "normal", counts.malicious_normal),
        ("malicious", "abnormal", counts.malicious_abnormal),
    ]
    return _format_table(("Origin", "Glucose state", "Count"), rows)


def render_metric_figure(
    result: SelectiveTrainingResult, metric: str = "recall", title: Optional[str] = None
) -> str:
    """Figures 7, 8, and 11: a metric per detector and training strategy."""
    table = result.metric_table(metric)
    strategies = result.strategies
    rows = []
    for detector, per_strategy in table.items():
        rows.append([detector] + [f"{per_strategy[strategy]:.3f}" for strategy in strategies])
    rendered = _format_table([title or metric.capitalize()] + list(strategies), rows)
    return rendered


def render_headline_claims(result: SelectiveTrainingResult) -> str:
    """Compare the paper's headline claims against the regenerated numbers."""
    lines = ["Headline comparison (Less Vulnerable vs All Patients)"]
    for detector in result.detectors:
        less = result.outcome(detector, STRATEGY_LESS_VULNERABLE)
        baseline = result.outcome(detector, STRATEGY_ALL)
        recall_gain = percentage_change(less.recall, baseline.recall)
        precision_gain = percentage_change(less.precision, baseline.precision)
        f1_gain = percentage_change(less.f1, baseline.f1)
        lines.append(
            f"  {detector}: recall {baseline.recall:.3f} -> {less.recall:.3f} "
            f"({recall_gain:+.1f}%), precision {baseline.precision:.3f} -> {less.precision:.3f} "
            f"({precision_gain:+.1f}%), F1 {baseline.f1:.3f} -> {less.f1:.3f} ({f1_gain:+.1f}%)"
        )
    return "\n".join(lines)


def render_attack_success(report: AttackSuccessReport, transition: str = "normal_to_hyper") -> str:
    """Figures 9 and 10: misdiagnosis percentage per patient."""
    if transition == "normal_to_hyper":
        data = report.normal_to_hyper
        title = "Originally normal instances misdiagnosed as hyperglycemic"
    elif transition == "hypo_to_hyper":
        data = report.hypo_to_hyper
        title = "Originally hypoglycemic instances misdiagnosed as hyperglycemic"
    else:
        raise ValueError("transition must be 'normal_to_hyper' or 'hypo_to_hyper'")
    lines = [title]
    for label in sorted(data):
        lines.append(f"  {label}: {_format_rate(data[label])}")
    average = (
        report.average_normal_to_hyper
        if transition == "normal_to_hyper"
        else report.average_hypo_to_hyper
    )
    lines.append(f"  Average: {_format_rate(average)}")
    return "\n".join(lines)


def render_false_negative_rates(rates: Mapping[str, float]) -> str:
    """Figure 5's message: per-patient false-negative rate of a detector."""
    rows = [(label, _format_rate(rate)) for label, rate in sorted(rates.items())]
    return _format_table(("Patient", "False negative rate"), rows)
