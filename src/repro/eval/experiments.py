"""Experiment harness reproducing the paper's evaluation.

The central experiment (Figures 7, 8, and 11) compares anomaly detectors
trained under the four selection strategies and evaluates them on benign and
adversarial windows from every patient.  Smaller experiments reproduce the
benign normal-to-abnormal ratios (Figure 4), the per-trace true-positive /
false-negative breakdown (Figure 5), the four-quadrant sample taxonomy
(Figure 6), and the per-model attack success rates (Appendix A, Figures 9
and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.campaign import CampaignResult, WindowAttackRecord
from repro.data.cohort import CGM_COLUMN, Cohort
from repro.detectors.base import AnomalyDetector
from repro.detectors.hmm import GaussianHMMDetector
from repro.detectors.knn import KNNClassifierDetector
from repro.detectors.lstm_vae import LSTMVAEDetector
from repro.detectors.madgan import MADGANDetector
from repro.detectors.ocsvm import OneClassSVMDetector
from repro.eval.metrics import ConfusionMatrix, confusion_matrix
from repro.glucose.states import (
    GlucoseState,
    Scenario,
    classify_glucose,
    normal_to_abnormal_ratio,
    scenario_for_samples,
)
from repro.risk.selection import TrainingSelection

#: Factory type: builds a fresh (unfitted) detector for one training run.
DetectorFactory = Callable[[], AnomalyDetector]


@dataclass
class DetectorSpec:
    """A detector factory plus the detection unit it operates on.

    ``unit`` is ``"sample"`` for point detectors that inspect individual
    glucose measurements (kNN, OneClassSVM) and ``"window"`` for sequence
    detectors that inspect whole multivariate windows (MAD-GAN).
    """

    factory: DetectorFactory
    unit: str = "sample"

    def __post_init__(self):
        if self.unit not in ("sample", "window"):
            raise ValueError("unit must be 'sample' or 'window'")


def default_detector_factories(
    madgan_epochs: int = 10,
    madgan_inversion_steps: int = 30,
    ocsvm_kernel: str = "rbf",
    ocsvm_nu: float = 0.1,
    vae_epochs: int = 10,
    hmm_iterations: int = 10,
    seed: int = 0,
) -> Dict[str, DetectorSpec]:
    """The paper's three detectors plus the LSTM-VAE / HMM family.

    kNN keeps the paper's Appendix-B configuration exactly.  The paper's
    OneClassSVM settings (sigmoid kernel, ``coef0=10``, ``ν=0.5``) degenerate
    on standardized features — the kernel saturates and half of the benign
    data is rejected by construction — so the default here is an RBF kernel
    with a smaller ν; the paper configuration remains available through
    :class:`repro.detectors.OneClassSVMDetector` and the ablation benchmark.
    MAD-GAN follows Appendix B (4 signals, sequence length 12) with a smaller
    epoch budget suited to CPU runs.  The LSTM-VAE (reconstruction
    negative log-likelihood) and the Gaussian-emission HMM (window
    log-likelihood) extend the comparison with the detector family named in
    the ROADMAP; both share MAD-GAN's window geometry so every selection
    strategy and attack campaign applies unchanged.
    """
    return {
        "kNN": DetectorSpec(
            factory=lambda: KNNClassifierDetector(n_neighbors=7, p=2.0, weights="uniform"),
            unit="sample",
        ),
        "OneClassSVM": DetectorSpec(
            factory=lambda: OneClassSVMDetector(
                kernel=ocsvm_kernel, gamma="scale", nu=ocsvm_nu, seed=seed
            ),
            unit="sample",
        ),
        "MAD-GAN": DetectorSpec(
            factory=lambda: MADGANDetector(
                epochs=madgan_epochs,
                inversion_steps=madgan_inversion_steps,
                seed=seed,
            ),
            unit="window",
        ),
        "LSTM-VAE": DetectorSpec(
            factory=lambda: LSTMVAEDetector(epochs=vae_epochs, seed=seed),
            unit="window",
        ),
        "HMM": DetectorSpec(
            factory=lambda: GaussianHMMDetector(n_iter=hmm_iterations, seed=seed),
            unit="window",
        ),
    }


@dataclass
class StrategyOutcome:
    """Averaged detection metrics for one (detector, strategy) pair."""

    detector: str
    strategy: str
    precision: float
    recall: float
    f1: float
    false_negative_rate: float
    per_run: List[ConfusionMatrix] = field(default_factory=list)
    training_windows: int = 0

    @property
    def n_runs(self) -> int:
        return len(self.per_run)


@dataclass
class SelectiveTrainingResult:
    """All (detector, strategy) outcomes of the selective-training experiment."""

    outcomes: Dict[str, Dict[str, StrategyOutcome]] = field(default_factory=dict)

    def outcome(self, detector: str, strategy: str) -> StrategyOutcome:
        return self.outcomes[detector][strategy]

    def metric_table(self, metric: str) -> Dict[str, Dict[str, float]]:
        """``{detector: {strategy: value}}`` for one metric name."""
        table: Dict[str, Dict[str, float]] = {}
        for detector, per_strategy in self.outcomes.items():
            table[detector] = {
                strategy: getattr(outcome, metric) for strategy, outcome in per_strategy.items()
            }
        return table

    @property
    def detectors(self) -> List[str]:
        return list(self.outcomes)

    @property
    def strategies(self) -> List[str]:
        first = next(iter(self.outcomes.values()), {})
        return list(first)


class SelectiveTrainingExperiment:
    """Train detectors under each selection strategy and evaluate them.

    Parameters
    ----------
    train_campaign:
        Attack campaign over the cohort's *training* split; supplies the
        malicious samples used to train the supervised kNN classifier and the
        benign windows per patient.
    test_campaign:
        Attack campaign over the cohort's *test* split; supplies the benign
        and malicious windows every detector is evaluated on (all patients).
    detector_factories:
        ``{name: factory}`` of detectors to compare.
    include_failed_attacks:
        Whether unsuccessful adversarial windows also count as malicious
        samples (default False: only successful evasions are labelled
        malicious, as those are the ones that would harm the patient).
    """

    def __init__(
        self,
        train_campaign: CampaignResult,
        test_campaign: CampaignResult,
        detector_factories: Optional[Dict[str, "DetectorSpec"]] = None,
        include_failed_attacks: bool = False,
    ):
        self.train_campaign = train_campaign
        self.test_campaign = test_campaign
        self.detector_factories = detector_factories or default_detector_factories()
        self.include_failed_attacks = bool(include_failed_attacks)
        self._test_data = {
            "window": test_campaign.detection_dataset(include_failed=self.include_failed_attacks)[:2],
            "sample": test_campaign.sample_dataset(include_failed=self.include_failed_attacks)[:2],
        }
        if len(self._test_data["window"][0]) == 0:
            raise ValueError("the test campaign produced no evaluation windows")

    # ------------------------------------------------------------------ running
    def _training_data(self, patient_labels: Sequence[str], unit: str) -> Tuple[np.ndarray, np.ndarray]:
        if unit == "sample":
            windows, labels, _ = self.train_campaign.sample_dataset(
                patient_labels=list(patient_labels), include_failed=self.include_failed_attacks
            )
        else:
            windows, labels, _ = self.train_campaign.detection_dataset(
                patient_labels=list(patient_labels), include_failed=self.include_failed_attacks
            )
        if len(windows) == 0:
            raise ValueError(f"no training windows for patients {list(patient_labels)}")
        return windows, labels

    def evaluate_detector(self, detector: AnomalyDetector, unit: str = "window") -> ConfusionMatrix:
        """Confusion matrix of a fitted detector on the shared test set."""
        test_windows, test_labels = self._test_data[unit]
        predictions = detector.predict(test_windows)
        return confusion_matrix(test_labels, predictions)

    def run_strategy(
        self, spec: "DetectorSpec", selection: TrainingSelection, detector_name: str = ""
    ) -> StrategyOutcome:
        """Fit/evaluate one detector under one strategy (averaged over runs)."""
        matrices: List[ConfusionMatrix] = []
        total_training_windows = 0
        for run_labels in selection.runs:
            train_windows, train_labels = self._training_data(run_labels, spec.unit)
            detector = spec.factory()
            detector.fit(train_windows, train_labels)
            matrices.append(self.evaluate_detector(detector, spec.unit))
            total_training_windows += len(train_windows)
        return StrategyOutcome(
            detector=detector_name,
            strategy=selection.strategy,
            precision=float(np.mean([matrix.precision for matrix in matrices])),
            recall=float(np.mean([matrix.recall for matrix in matrices])),
            f1=float(np.mean([matrix.f1 for matrix in matrices])),
            false_negative_rate=float(
                np.mean([matrix.false_negative_rate for matrix in matrices])
            ),
            per_run=matrices,
            training_windows=total_training_windows // max(len(selection.runs), 1),
        )

    def run(self, selections: Dict[str, TrainingSelection]) -> SelectiveTrainingResult:
        """Run every detector under every strategy."""
        result = SelectiveTrainingResult()
        for detector_name, spec in self.detector_factories.items():
            result.outcomes[detector_name] = {}
            for strategy_name, selection in selections.items():
                outcome = self.run_strategy(spec, selection, detector_name)
                result.outcomes[detector_name][strategy_name] = outcome
        return result


# --------------------------------------------------------------------- figures
def benign_ratio_by_patient(cohort: Cohort, split: str = "train") -> Dict[str, float]:
    """Figure 4: benign normal-to-abnormal ratio per patient.

    Ratios are computed with per-sample scenarios (fasting vs postprandial)
    derived from the carbohydrate trace, and capped at the cohort size when a
    patient has no abnormal samples at all.
    """
    ratios: Dict[str, float] = {}
    for record in cohort:
        features = record.features(split)
        scenarios = scenario_for_samples(features[:, 2])
        ratio = normal_to_abnormal_ratio(features[:, CGM_COLUMN], scenarios)
        ratios[record.label] = ratio
    return ratios


@dataclass
class QuadrantCounts:
    """Figure 6: the four quadrants of glucose samples."""

    benign_normal: int = 0
    benign_abnormal: int = 0
    malicious_normal: int = 0
    malicious_abnormal: int = 0

    @property
    def total(self) -> int:
        return (
            self.benign_normal
            + self.benign_abnormal
            + self.malicious_normal
            + self.malicious_abnormal
        )


def quadrant_breakdown(campaign: CampaignResult, patient_label: Optional[str] = None) -> QuadrantCounts:
    """Count benign/malicious x normal/abnormal samples in a campaign.

    A sample's normal/abnormal status is judged from the final CGM value of
    the (benign or manipulated) window under the window's scenario.
    """
    counts = QuadrantCounts()
    for record in campaign.records:
        if patient_label is not None and record.patient_label != patient_label:
            continue
        result = record.result
        scenario = result.scenario
        benign_state = classify_glucose(result.benign_window[-1, CGM_COLUMN], scenario)
        if benign_state == GlucoseState.NORMAL:
            counts.benign_normal += 1
        else:
            counts.benign_abnormal += 1
        if result.eligible and result.success:
            malicious_state = classify_glucose(
                result.adversarial_window[-1, CGM_COLUMN], scenario
            )
            if malicious_state == GlucoseState.NORMAL:
                counts.malicious_normal += 1
            else:
                counts.malicious_abnormal += 1
    return counts


@dataclass
class TraceDetectionSample:
    """One evaluated window of the Figure 5 trace plot."""

    patient_label: str
    target_index: int
    scenario: Scenario
    cgm_value: float
    is_malicious: bool
    flagged: bool

    @property
    def is_true_positive(self) -> bool:
        return self.is_malicious and self.flagged

    @property
    def is_false_negative(self) -> bool:
        return self.is_malicious and not self.flagged


def trace_detection(
    detector: AnomalyDetector,
    campaign: CampaignResult,
    patient_label: str,
    unit: str = "sample",
) -> List[TraceDetectionSample]:
    """Figure 5: per-measurement detection outcomes along one patient's trace.

    ``unit`` selects what the detector inspects: ``"sample"`` feeds it the
    final (possibly manipulated) measurement of each window, matching the
    paper's per-measurement kNN flags; ``"window"`` feeds it whole windows
    (for sequence detectors such as MAD-GAN).
    """
    if unit not in ("sample", "window"):
        raise ValueError("unit must be 'sample' or 'window'")
    # Collect every window first so the detector is queried ONCE with the
    # whole batch instead of once per window.  Deterministic detectors (kNN,
    # OneClassSVM) flag identically either way; MAD-GAN's inversion draws
    # per-call latents, so batching changes its stochastic reconstruction the
    # same way the batched evaluate_detector/ detection_experiment paths do.
    views: List[np.ndarray] = []
    annotated: List[Tuple[WindowAttackRecord, np.ndarray, bool]] = []
    for record in campaign.for_patient(patient_label):
        result = record.result
        windows = [(result.benign_window, False)]
        if result.eligible and result.success:
            windows.append((result.adversarial_window, True))
        for window, is_malicious in windows:
            views.append(window[-1:] if unit == "sample" else window)
            annotated.append((record, window, is_malicious))
    if not views:
        return []
    flags = detector.predict(np.stack(views))
    samples: List[TraceDetectionSample] = []
    for (record, window, is_malicious), flag in zip(annotated, flags):
        samples.append(
            TraceDetectionSample(
                patient_label=patient_label,
                target_index=record.target_index,
                scenario=record.result.scenario,
                cgm_value=float(window[-1, CGM_COLUMN]),
                is_malicious=is_malicious,
                flagged=bool(flag),
            )
        )
    return samples


def false_negative_rate_by_patient(
    detector: AnomalyDetector, campaign: CampaignResult, unit: str = "sample"
) -> Dict[str, float]:
    """Per-patient false-negative rate of a fitted detector (Figure 5's message)."""
    rates: Dict[str, float] = {}
    for label in campaign.patient_labels:
        samples = trace_detection(detector, campaign, label, unit=unit)
        malicious = [sample for sample in samples if sample.is_malicious]
        if not malicious:
            rates[label] = float("nan")
            continue
        misses = sum(1 for sample in malicious if sample.is_false_negative)
        rates[label] = misses / len(malicious)
    return rates


@dataclass
class AttackSuccessReport:
    """Appendix A (Figures 9 and 10): attack success per patient and transition."""

    normal_to_hyper: Dict[str, float] = field(default_factory=dict)
    hypo_to_hyper: Dict[str, float] = field(default_factory=dict)

    @property
    def average_normal_to_hyper(self) -> float:
        values = [value for value in self.normal_to_hyper.values() if not np.isnan(value)]
        return float(np.mean(values)) if values else float("nan")

    @property
    def average_hypo_to_hyper(self) -> float:
        values = [value for value in self.hypo_to_hyper.values() if not np.isnan(value)]
        return float(np.mean(values)) if values else float("nan")


def attack_success_report(campaign: CampaignResult) -> AttackSuccessReport:
    """Summarise misdiagnosis rates per patient from an attack campaign."""
    report = AttackSuccessReport()
    for label, summary in campaign.summaries().items():
        report.normal_to_hyper[label] = summary.normal_to_hyper_rate
        report.hypo_to_hyper[label] = summary.hypo_to_hyper_rate
    return report
