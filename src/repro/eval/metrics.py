"""Detection metrics: confusion matrix, precision, recall, F1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.utils.validation import check_array, check_consistent_length


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion matrix for malicious-sample detection.

    Positive class = malicious/anomalous (label 1).
    """

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
        )

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def false_negative_rate(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.false_negatives / denominator if denominator else 0.0

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        return (self.true_positives + self.true_negatives) / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "false_negative_rate": self.false_negative_rate,
            "false_positive_rate": self.false_positive_rate,
            "accuracy": self.accuracy,
            "true_positives": float(self.true_positives),
            "false_positives": float(self.false_positives),
            "true_negatives": float(self.true_negatives),
            "false_negatives": float(self.false_negatives),
        }


def confusion_matrix(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> ConfusionMatrix:
    """Build a binary confusion matrix (positive class = 1)."""
    true_labels = check_array(true_labels, "true_labels", dtype=None, ndim=1)
    predicted_labels = check_array(predicted_labels, "predicted_labels", dtype=None, ndim=1)
    check_consistent_length(true_labels, predicted_labels)
    true_labels = np.asarray(true_labels).astype(int)
    predicted_labels = np.asarray(predicted_labels).astype(int)
    if not set(np.unique(true_labels)) <= {0, 1} or not set(np.unique(predicted_labels)) <= {0, 1}:
        raise ValueError("labels must be binary (0/1)")
    return ConfusionMatrix(
        true_positives=int(np.sum((true_labels == 1) & (predicted_labels == 1))),
        false_positives=int(np.sum((true_labels == 0) & (predicted_labels == 1))),
        true_negatives=int(np.sum((true_labels == 0) & (predicted_labels == 0))),
        false_negatives=int(np.sum((true_labels == 1) & (predicted_labels == 0))),
    )


def precision_score(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Precision of the malicious class."""
    return confusion_matrix(true_labels, predicted_labels).precision


def recall_score(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Recall of the malicious class (1 - false negative rate)."""
    return confusion_matrix(true_labels, predicted_labels).recall


def f1_score(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Harmonic mean of precision and recall."""
    return confusion_matrix(true_labels, predicted_labels).f1


def percentage_change(new_value: float, reference_value: float) -> float:
    """Relative change in percent, e.g. +27.5 for the paper's recall claim."""
    if reference_value == 0:
        return float("inf") if new_value > 0 else 0.0
    return 100.0 * (new_value - reference_value) / reference_value
