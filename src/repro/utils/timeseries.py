"""Time-series helpers: scaling, windowing, resampling, and splitting."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_array, check_fitted, ensure_2d


class StandardScaler:
    """Feature-wise standardization to zero mean and unit variance."""

    def __init__(self, epsilon: float = 1e-8):
        self.epsilon = float(epsilon)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, data) -> "StandardScaler":
        matrix = ensure_2d(data, "data")
        self.mean_ = matrix.mean(axis=0)
        self.std_ = matrix.std(axis=0)
        return self

    def transform(self, data) -> np.ndarray:
        check_fitted(self, ("mean_", "std_"))
        return self.transform_unchecked(ensure_2d(data, "data"))

    def transform_unchecked(self, matrix: np.ndarray) -> np.ndarray:
        """:meth:`transform` minus validation, for trusted hot-path callers.

        ``matrix`` must already be a fitted-width 2-D float array.  Kept next
        to :meth:`transform` so there is exactly one scaling formula — the
        serving fast path's bitwise-parity guarantee depends on that.
        """
        return (matrix - self.mean_) / (self.std_ + self.epsilon)

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data) -> np.ndarray:
        check_fitted(self, ("mean_", "std_"))
        matrix = ensure_2d(data, "data")
        return matrix * (self.std_ + self.epsilon) + self.mean_


class MinMaxScaler:
    """Feature-wise rescaling into a target range (default ``[0, 1]``)."""

    def __init__(self, feature_range: Tuple[float, float] = (0.0, 1.0), epsilon: float = 1e-12):
        if feature_range[1] <= feature_range[0]:
            raise ValueError("feature_range upper bound must exceed lower bound")
        self.feature_range = (float(feature_range[0]), float(feature_range[1]))
        self.epsilon = float(epsilon)
        self.min_: Optional[np.ndarray] = None
        self.max_: Optional[np.ndarray] = None

    def fit(self, data) -> "MinMaxScaler":
        matrix = ensure_2d(data, "data")
        self.min_ = matrix.min(axis=0)
        self.max_ = matrix.max(axis=0)
        return self

    def transform(self, data) -> np.ndarray:
        check_fitted(self, ("min_", "max_"))
        matrix = ensure_2d(data, "data")
        low, high = self.feature_range
        span = np.maximum(self.max_ - self.min_, self.epsilon)
        scaled = (matrix - self.min_) / span
        return scaled * (high - low) + low

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data) -> np.ndarray:
        check_fitted(self, ("min_", "max_"))
        matrix = ensure_2d(data, "data")
        low, high = self.feature_range
        span = np.maximum(self.max_ - self.min_, self.epsilon)
        unit = (matrix - low) / (high - low)
        return unit * span + self.min_


class SampleRing:
    """Fixed-capacity ring of the most recent samples of one stream.

    The O(1)-memory building block of the streaming serving layer: pushing a
    sample overwrites the oldest entry, and :meth:`window` returns the
    buffered history in time order.  The feature width is taken from the
    first pushed sample.
    """

    __slots__ = ("capacity", "_buffer", "_cursor", "_count")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._buffer: Optional[np.ndarray] = None
        self._cursor = 0
        self._count = 0

    @property
    def count(self) -> int:
        """Number of valid buffered samples (at most ``capacity``)."""
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    def push(self, sample: np.ndarray) -> None:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 1:
            raise ValueError(f"sample must be a 1-D feature vector, got shape {sample.shape}")
        if self._buffer is None:
            self._buffer = np.zeros((self.capacity, len(sample)))
        self._buffer[self._cursor] = sample
        self._cursor = (self._cursor + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)

    def _ordered(self, length: int) -> np.ndarray:
        start = self._cursor + self.capacity - length
        order = (start + np.arange(length)) % self.capacity
        return self._buffer[order]

    def window(self) -> Optional[np.ndarray]:
        """The full ``(capacity, features)`` history in time order, or None."""
        if not self.full:
            return None
        return self._ordered(self.capacity).copy()

    def tail_with(self, incoming: np.ndarray) -> Optional[np.ndarray]:
        """The window formed by the last ``capacity - 1`` samples plus ``incoming``.

        None until ``capacity - 1`` samples have been buffered.
        """
        if self._count < self.capacity - 1:
            return None
        incoming = np.asarray(incoming, dtype=np.float64)
        if self.capacity == 1:
            return incoming[np.newaxis].copy()
        return np.vstack([self._ordered(self.capacity - 1), incoming[np.newaxis]])

    def reset(self) -> None:
        self._buffer = None
        self._cursor = 0
        self._count = 0


def sliding_windows(series, window: int, step: int = 1) -> np.ndarray:
    """Extract overlapping windows from a (possibly multivariate) series.

    Parameters
    ----------
    series:
        Array of shape ``(T,)`` or ``(T, F)``.
    window:
        Window length.
    step:
        Stride between consecutive window starts.

    Returns
    -------
    Array of shape ``(n_windows, window)`` or ``(n_windows, window, F)``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    array = np.asarray(series, dtype=np.float64)
    length = array.shape[0]
    if length < window:
        empty_shape = (0, window) if array.ndim == 1 else (0, window) + array.shape[1:]
        return np.empty(empty_shape, dtype=np.float64)
    starts = range(0, length - window + 1, step)
    return np.stack([array[start : start + window] for start in starts])


def supervised_windows(
    series,
    history: int,
    horizon: int = 1,
    step: int = 1,
    target_column: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (input window, future target) pairs for forecasting.

    Parameters
    ----------
    series:
        Array of shape ``(T,)`` or ``(T, F)``.
    history:
        Number of past steps fed to the model.
    horizon:
        How many steps ahead the target lies (>= 1).
    step:
        Stride between consecutive samples.
    target_column:
        For multivariate input, which column to forecast.

    Returns
    -------
    inputs:
        ``(n, history)`` or ``(n, history, F)``.
    targets:
        ``(n,)`` values ``horizon`` steps after each window.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    array = np.asarray(series, dtype=np.float64)
    length = array.shape[0]
    last_start = length - history - horizon
    if last_start < 0:
        empty_x = (
            np.empty((0, history))
            if array.ndim == 1
            else np.empty((0, history) + array.shape[1:])
        )
        return empty_x, np.empty((0,))
    inputs = []
    targets = []
    for start in range(0, last_start + 1, step):
        inputs.append(array[start : start + history])
        target_index = start + history + horizon - 1
        if array.ndim == 1:
            targets.append(array[target_index])
        else:
            targets.append(array[target_index, target_column])
    return np.stack(inputs), np.asarray(targets, dtype=np.float64)


def train_test_split_sequential(data, test_fraction: float = 0.2) -> Tuple[np.ndarray, np.ndarray]:
    """Split a series chronologically into train and test segments."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    array = np.asarray(data)
    split = int(round(len(array) * (1.0 - test_fraction)))
    split = max(1, min(split, len(array) - 1)) if len(array) > 1 else len(array)
    return array[:split], array[split:]


def exponential_moving_average(series, alpha: float = 0.3) -> np.ndarray:
    """Smooth a 1-D series with an exponential moving average."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    values = check_array(series, "series", ndim=1)
    if values.size == 0:
        return values
    smoothed = np.empty_like(values)
    smoothed[0] = values[0]
    for index in range(1, len(values)):
        smoothed[index] = alpha * values[index] + (1.0 - alpha) * smoothed[index - 1]
    return smoothed


def resample_series(series, target_length: int) -> np.ndarray:
    """Linearly resample a 1-D series to ``target_length`` points."""
    if target_length <= 0:
        raise ValueError(f"target_length must be positive, got {target_length}")
    values = check_array(series, "series", ndim=1, allow_empty=False)
    if len(values) == 1:
        return np.full(target_length, values[0])
    source_positions = np.linspace(0.0, 1.0, num=len(values))
    target_positions = np.linspace(0.0, 1.0, num=target_length)
    return np.interp(target_positions, source_positions, values)


def autocorrelation(series, max_lag: int) -> np.ndarray:
    """Sample autocorrelation of a 1-D series up to ``max_lag`` (inclusive)."""
    values = check_array(series, "series", ndim=1, allow_empty=False)
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    centered = values - values.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0.0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        if lag == 0:
            result[lag] = 1.0
        else:
            result[lag] = float(np.dot(centered[:-lag], centered[lag:])) / denominator
    return result
