"""Shared utilities: seeded randomness, validation, and time-series helpers."""

from repro.utils.rng import RandomState, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_finite,
    check_positive,
    check_probability,
    ensure_2d,
)
from repro.utils.timeseries import (
    StandardScaler,
    MinMaxScaler,
    SampleRing,
    sliding_windows,
    supervised_windows,
    train_test_split_sequential,
    exponential_moving_average,
    resample_series,
)

__all__ = [
    "RandomState",
    "spawn_rngs",
    "check_array",
    "check_finite",
    "check_positive",
    "check_probability",
    "ensure_2d",
    "StandardScaler",
    "MinMaxScaler",
    "SampleRing",
    "sliding_windows",
    "supervised_windows",
    "train_test_split_sequential",
    "exponential_moving_average",
    "resample_series",
]
