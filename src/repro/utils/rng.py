"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed or a
:class:`RandomState`.  Components never touch the global numpy RNG, so any
experiment can be replayed exactly from its seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, "RandomState", np.random.Generator, None]


class RandomState:
    """A thin, seedable wrapper around :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Integer seed, ``None`` for an OS-entropy seed, an existing
        ``RandomState`` (shared, not copied), or a raw numpy ``Generator``.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, RandomState):
            self._generator = seed._generator
            self._seed = seed._seed
        elif isinstance(seed, np.random.Generator):
            self._generator = seed
            self._seed = None
        else:
            self._seed = seed
            self._generator = np.random.default_rng(seed)

    @property
    def seed(self) -> Optional[int]:
        """The seed this state was created from (``None`` if unknown)."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    # -- convenience passthroughs -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._generator.normal(loc, scale, size)

    def integers(self, low: int, high: Optional[int] = None, size=None):
        return self._generator.integers(low, high, size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._generator.permutation(x)

    def shuffle(self, x) -> None:
        self._generator.shuffle(x)

    def random(self, size=None):
        return self._generator.random(size)

    def exponential(self, scale: float = 1.0, size=None):
        return self._generator.exponential(scale, size)

    def poisson(self, lam: float = 1.0, size=None):
        return self._generator.poisson(lam, size)

    def spawn(self, n: int) -> List["RandomState"]:
        """Derive ``n`` statistically independent child states."""
        children = self._generator.spawn(n)
        return [RandomState(child) for child in children]

    def fork(self) -> "RandomState":
        """An explicitly independent child for state that crosses a process
        or pickle boundary.

        ``RandomState(existing)`` *shares* the underlying generator by
        design — two configs built from one state interleave draws from a
        single stream.  That sharing does not survive pickling: each
        separately pickled copy rehydrates its own generator frozen at the
        shared stream's state, so the copies silently re-draw the *same*
        values instead of interleaving (``tests/test_utils_rng.py`` pins the
        divergence).  Any state that is about to be shipped to a worker must
        therefore stop sharing *explicitly*: call :meth:`fork` (or
        :meth:`derive` with a stable per-worker tag) and ship the child.

        Successive forks of one parent yield distinct, reproducible children
        (numpy's seed-sequence spawning); the parent's own stream is not
        advanced.
        """
        return RandomState(self._generator.spawn(1)[0])

    def derive(self, tag: str) -> "RandomState":
        """Derive a child state deterministically from a string tag.

        Unlike :meth:`spawn`, deriving the same tag twice from states built
        with the same seed yields identical child streams, which makes the
        per-subsystem seeding reproducible regardless of call order.
        """
        if self._seed is None:
            return self.spawn(1)[0]
        tag_hash = abs(hash_string(tag)) % (2**31)
        return RandomState((int(self._seed) * 1_000_003 + tag_hash) % (2**63 - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomState(seed={self._seed!r})"


def hash_string(text: str) -> int:
    """A stable (non-salted) string hash usable for seed derivation."""
    value = 2166136261
    for char in text.encode("utf-8"):
        value ^= char
        value = (value * 16777619) % (2**64)
    return value


def as_random_state(seed: SeedLike) -> RandomState:
    """Coerce a seed-like value into a :class:`RandomState`."""
    if isinstance(seed, RandomState):
        return seed
    return RandomState(seed)


def spawn_rngs(seed: SeedLike, tags: Sequence[str]) -> dict:
    """Create a dict of independent named RNGs from a single seed.

    Parameters
    ----------
    seed:
        Root seed.
    tags:
        Names for each derived stream.
    """
    root = as_random_state(seed)
    return {tag: root.derive(tag) for tag in tags}


def check_iterable_of_ints(values: Iterable[int]) -> List[int]:
    """Validate that ``values`` contains only integers and return them as a list."""
    result = []
    for value in values:
        if not isinstance(value, (int, np.integer)):
            raise TypeError(f"expected an integer, got {type(value).__name__}")
        result.append(int(value))
    return result
