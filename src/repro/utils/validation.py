"""Input validation helpers used across the library.

These helpers fail loudly with actionable error messages instead of letting
malformed arrays propagate into numerical code.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def check_array(
    value,
    name: str = "array",
    dtype=np.float64,
    ndim: Optional[int] = None,
    min_samples: int = 0,
    allow_empty: bool = True,
) -> np.ndarray:
    """Convert ``value`` to a numpy array and validate its shape.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Name used in error messages.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    ndim:
        Required number of dimensions, if any.
    min_samples:
        Minimum length along the first axis.
    allow_empty:
        Whether zero-length arrays are acceptable.
    """
    array = np.asarray(value, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {array.ndim}")
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if array.ndim >= 1 and array.shape[0] < min_samples:
        raise ValueError(
            f"{name} must contain at least {min_samples} samples, got {array.shape[0]}"
        )
    return array


def check_finite(value, name: str = "array") -> np.ndarray:
    """Raise if ``value`` contains NaN or infinity."""
    array = np.asarray(value, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        bad = int(np.sum(~np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite values")
    return array


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Raise unless ``value`` is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Raise unless ``value`` lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Raise unless ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    value = float(value)
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {value}")
    return value


def ensure_2d(value, name: str = "array") -> np.ndarray:
    """Coerce a 1-D array into a column matrix, keep 2-D arrays unchanged."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 1:
        return array.reshape(-1, 1)
    if array.ndim == 2:
        return array
    raise ValueError(f"{name} must be 1-D or 2-D, got {array.ndim} dimensions")


def check_consistent_length(*arrays: Sequence) -> int:
    """Verify all arrays share the same first-axis length and return it."""
    lengths = {len(array) for array in arrays if array is not None}
    if len(lengths) > 1:
        raise ValueError(f"inconsistent sample counts: {sorted(lengths)}")
    if not lengths:
        raise ValueError("at least one array is required")
    return lengths.pop()


def check_fitted(obj, attributes: Tuple[str, ...]) -> None:
    """Raise ``RuntimeError`` unless every attribute in ``attributes`` is set."""
    missing = [attr for attr in attributes if getattr(obj, attr, None) is None]
    if missing:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted; call fit() before using it "
            f"(missing: {', '.join(missing)})"
        )
