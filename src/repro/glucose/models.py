"""Personalized and aggregate glucose prediction models.

Rubin-Falcone et al. (the paper's target model) train two kinds of
forecasters:

* a *personalized* model per patient, fit only on that patient's data, and
* an *aggregate* model fit on the pooled data of all patients.

The paper's attack simulation (its Appendix A, Figures 9 and 10) evaluates
the evasion attack against both kinds.  :class:`GlucoseModelZoo` manages this
collection for a cohort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.data.cohort import Cohort, PatientRecord
from repro.data.dataset import ForecastingDataset
from repro.glucose.predictor import GlucosePredictor
from repro.utils.rng import as_random_state

#: Key under which the aggregate (all-patients) model is stored.
AGGREGATE_KEY = "all_patients"


@dataclass
class ZooEvaluation:
    """Held-out accuracy of every model in the zoo."""

    rmse: Dict[str, float] = field(default_factory=dict)
    mae: Dict[str, float] = field(default_factory=dict)


class GlucoseModelZoo:
    """Train and serve personalized + aggregate glucose forecasters.

    Parameters
    ----------
    dataset:
        Windowing configuration shared by every model.
    predictor_kwargs:
        Keyword arguments forwarded to each :class:`GlucosePredictor`.
    train_personalized:
        When False only the aggregate model is trained (cheaper; useful for
        quick experiments and tests).
    seed:
        Root seed; each model derives an independent stream.
    """

    def __init__(
        self,
        dataset: Optional[ForecastingDataset] = None,
        predictor_kwargs: Optional[dict] = None,
        train_personalized: bool = True,
        seed=0,
    ):
        self.dataset = dataset or ForecastingDataset()
        self.predictor_kwargs = dict(predictor_kwargs or {})
        self.train_personalized = bool(train_personalized)
        self._rng = as_random_state(seed)
        self.models: Dict[str, GlucosePredictor] = {}

    # ------------------------------------------------------------------ training
    def _new_predictor(self, tag: str) -> GlucosePredictor:
        kwargs = dict(self.predictor_kwargs)
        kwargs.setdefault("history", self.dataset.history)
        kwargs.setdefault("horizon", self.dataset.horizon)
        kwargs["seed"] = self._rng.derive(tag)
        return GlucosePredictor(**kwargs)

    def fit(self, cohort: Cohort) -> "GlucoseModelZoo":
        """Train the aggregate model and (optionally) one model per patient."""
        windows, targets, _ = self.dataset.from_cohort(cohort, split="train")
        if len(windows) == 0:
            raise ValueError("cohort produced no training windows")
        aggregate = self._new_predictor(AGGREGATE_KEY)
        aggregate.fit(windows, targets)
        self.models[AGGREGATE_KEY] = aggregate

        if self.train_personalized:
            for record in cohort:
                patient_windows, patient_targets, _ = self.dataset.from_record(record, "train")
                if len(patient_windows) == 0:
                    continue
                predictor = self._new_predictor(record.label)
                predictor.fit(patient_windows, patient_targets)
                self.models[record.label] = predictor
        return self

    # ----------------------------------------------------------------- retrieval
    @property
    def aggregate(self) -> GlucosePredictor:
        """The all-patients aggregate model."""
        if AGGREGATE_KEY not in self.models:
            raise RuntimeError("the zoo has not been fitted")
        return self.models[AGGREGATE_KEY]

    def model_for(self, patient_label: str) -> GlucosePredictor:
        """The personalized model for a patient, falling back to the aggregate."""
        if patient_label in self.models:
            return self.models[patient_label]
        return self.aggregate

    def available_models(self) -> List[str]:
        return sorted(self.models)

    # ---------------------------------------------------------------- evaluation
    def evaluate(self, cohort: Cohort, split: str = "test") -> ZooEvaluation:
        """Evaluate every model on its own patient's held-out data."""
        evaluation = ZooEvaluation()
        for record in cohort:
            windows, targets, _ = self.dataset.from_record(record, split)
            if len(windows) == 0:
                continue
            model = self.model_for(record.label)
            metrics = model.evaluate(windows, targets)
            evaluation.rmse[record.label] = metrics["rmse"]
            evaluation.mae[record.label] = metrics["mae"]
        aggregate_windows, aggregate_targets, _ = self.dataset.from_cohort(cohort, split)
        if len(aggregate_windows):
            metrics = self.aggregate.evaluate(aggregate_windows, aggregate_targets)
            evaluation.rmse[AGGREGATE_KEY] = metrics["rmse"]
            evaluation.mae[AGGREGATE_KEY] = metrics["mae"]
        return evaluation
