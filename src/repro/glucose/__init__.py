"""Target glucose prediction model and glucose-state logic."""

from repro.glucose.states import (
    FASTING_HYPER_THRESHOLD,
    HYPOGLYCEMIA_THRESHOLD,
    MAX_PLAUSIBLE_GLUCOSE,
    POSTPRANDIAL_HYPER_THRESHOLD,
    POSTPRANDIAL_WINDOW_SAMPLES,
    GlucoseState,
    Scenario,
    StateTransition,
    classify_glucose,
    classify_series,
    hyperglycemia_threshold,
    is_abnormal,
    normal_to_abnormal_ratio,
    scenario_for_samples,
    transition_between,
)
from repro.glucose.predictor import GlucosePredictor, TrainingHistory
from repro.glucose.models import AGGREGATE_KEY, GlucoseModelZoo, ZooEvaluation

__all__ = [
    "FASTING_HYPER_THRESHOLD",
    "HYPOGLYCEMIA_THRESHOLD",
    "MAX_PLAUSIBLE_GLUCOSE",
    "POSTPRANDIAL_HYPER_THRESHOLD",
    "POSTPRANDIAL_WINDOW_SAMPLES",
    "GlucoseState",
    "Scenario",
    "StateTransition",
    "classify_glucose",
    "classify_series",
    "hyperglycemia_threshold",
    "is_abnormal",
    "normal_to_abnormal_ratio",
    "scenario_for_samples",
    "transition_between",
    "GlucosePredictor",
    "TrainingHistory",
    "AGGREGATE_KEY",
    "GlucoseModelZoo",
    "ZooEvaluation",
]
