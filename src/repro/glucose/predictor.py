"""The target glucose prediction DNN.

The paper approximates the (confidential) commercial glucose prediction
algorithm with the bidirectional-LSTM time-series forecaster of Rubin-Falcone
et al.  This module implements the same architecture class on top of the
:mod:`repro.nn` substrate: a BiLSTM encoder over the last hour of multivariate
CGM data followed by a dense regression head that predicts the CGM value 30
minutes ahead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.dataset import DEFAULT_HISTORY, DEFAULT_HORIZON, WindowScaler
from repro.nn import (
    Adam,
    BatchIterator,
    BiLSTM,
    BiLSTMStreamState,
    Dense,
    FusedTrainer,
    Sequential,
    Tensor,
    mse_loss,
)
from repro.utils.rng import as_random_state
from repro.utils.validation import check_array, check_consistent_length, check_fitted


@dataclass
class TrainingHistory:
    """Loss curve recorded during :meth:`GlucosePredictor.fit`."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs were recorded")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        """True when the final loss is lower than the first epoch's loss."""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


class GlucosePredictor:
    """Bidirectional-LSTM glucose forecaster.

    Parameters
    ----------
    history:
        Number of past five-minute samples in the input window.
    horizon:
        Forecast horizon in five-minute steps (6 = 30 minutes).
    hidden_size:
        Width of each LSTM direction.
    epochs, batch_size, learning_rate:
        Training hyper-parameters.
    gradient_clip:
        Maximum global gradient norm during training.
    input_clip_std:
        Inputs are standardized per feature and clamped to this many standard
        deviations of the training distribution before entering the network
        (``None`` disables clamping).  This models the sensor-calibration
        clamp of a deployed medical forecaster: readings far outside the range
        the model was calibrated on are not trusted verbatim.  It also ties a
        patient's resilience to the spread of their benign data — patients
        with tight glucose control leave an adversary much less headroom,
        which is the resilience mechanism the paper describes.
    use_fast_path:
        When True (the default) :meth:`predict` runs the graph-free batched
        inference engine (:meth:`Module.predict`) and :meth:`fit` trains
        through the fused training engine (:class:`~repro.nn.FusedTrainer`:
        hand-written BPTT, no autodiff graph).  Set False to force every
        query through the autodiff graph (:meth:`predict_graph`) and every
        training step through ``loss.backward()`` — only useful for
        regression testing and benchmarking: predictions agree within 1e-10,
        fused gradients within 1e-8, and fixed-seed loss curves match
        step-for-step (``scripts/bench_train.py``).
    seed:
        Seed controlling weight initialization and batch shuffling.
    """

    def __init__(
        self,
        history: int = DEFAULT_HISTORY,
        horizon: int = DEFAULT_HORIZON,
        n_features: int = 4,
        hidden_size: int = 16,
        epochs: int = 12,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        gradient_clip: float = 5.0,
        input_clip_std: Optional[float] = 3.0,
        use_fast_path: bool = True,
        seed=0,
    ):
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if input_clip_std is not None and input_clip_std <= 0:
            raise ValueError("input_clip_std must be positive or None")
        self.history = int(history)
        self.horizon = int(horizon)
        self.n_features = int(n_features)
        self.hidden_size = int(hidden_size)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.gradient_clip = float(gradient_clip)
        self.input_clip_std = None if input_clip_std is None else float(input_clip_std)
        self.use_fast_path = bool(use_fast_path)
        self._rng = as_random_state(seed)

        model_seed, shuffle_seed = self._rng.spawn(2)
        self._shuffle_seed = shuffle_seed
        self.model = Sequential(
            BiLSTM(self.n_features, self.hidden_size, seed=model_seed),
            Dense(2 * self.hidden_size, self.hidden_size, activation="tanh", seed=model_seed.derive("head1")),
            Dense(self.hidden_size, 1, seed=model_seed.derive("head2")),
        )
        self.scaler: Optional[WindowScaler] = None
        self.history_: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ training
    def fit(self, windows: np.ndarray, targets: np.ndarray) -> "GlucosePredictor":
        """Train the forecaster on raw (unscaled) windows and CGM targets.

        With ``use_fast_path`` (the default) every training step runs the
        fused engine — hand-written BPTT through the BiLSTM and dense head,
        no autodiff graph (:class:`~repro.nn.FusedTrainer`).  The graph loop
        is kept as the reference twin (``use_fast_path=False``): same
        optimizer, same shuffling, same clipping, with per-step losses
        matching the fused path step-for-step under a fixed seed
        (``tests/test_nn_fused.py``, ``scripts/bench_train.py``).
        """
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        targets = check_array(targets, "targets", ndim=1)
        check_consistent_length(windows, targets)
        if windows.shape[1] != self.history or windows.shape[2] != self.n_features:
            raise ValueError(
                f"windows must have shape (n, {self.history}, {self.n_features}), got {windows.shape}"
            )

        self.scaler = WindowScaler().fit(windows)
        scaled_windows = self._clip_scaled(self.scaler.transform(windows))
        scaled_targets = self.scaler.scale_target(targets).reshape(-1, 1)

        optimizer = Adam(self.model.parameters(), learning_rate=self.learning_rate)
        iterator = BatchIterator(
            scaled_windows,
            scaled_targets,
            batch_size=self.batch_size,
            shuffle=True,
            seed=self._shuffle_seed,
        )
        trainer = (
            FusedTrainer(
                self.model, optimizer, loss="mse", gradient_clip=self.gradient_clip
            )
            if self.use_fast_path
            else None
        )
        history = TrainingHistory()
        self.model.train()
        for _ in range(self.epochs):
            epoch_losses = []
            for batch_inputs, batch_targets in iterator:
                if trainer is not None:
                    epoch_losses.append(trainer.step(batch_inputs, batch_targets))
                    continue
                optimizer.zero_grad()
                predictions = self.model(Tensor(batch_inputs))
                loss = mse_loss(predictions, Tensor(batch_targets))
                loss.backward()
                optimizer.clip_gradients(self.gradient_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            history.epoch_losses.append(float(np.mean(epoch_losses)))
        self.model.eval()
        self.history_ = history
        return self

    # ----------------------------------------------------------------- inference
    def _clip_scaled(self, scaled_windows: np.ndarray) -> np.ndarray:
        """Clamp standardized inputs to the calibrated training range."""
        if self.input_clip_std is None:
            return scaled_windows
        return np.clip(scaled_windows, -self.input_clip_std, self.input_clip_std)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Predict future CGM values (mg/dL) for raw input windows.

        This is the attack hot path: by default it runs the graph-free
        batched inference engine, which computes the BiLSTM forward with
        fused gate matmuls and no autodiff bookkeeping.  One call with a
        large batch is far cheaper than many single-window calls.
        """
        if not self.use_fast_path:
            return self.predict_graph(windows)
        scaled = self._prepare(windows)
        return self.scaler.unscale_target(self.model.predict(scaled).reshape(-1))

    def predict_graph(self, windows: np.ndarray) -> np.ndarray:
        """Predict through the full autodiff graph (reference/benchmark path).

        Numerically equivalent to :meth:`predict` within 1e-10; kept so the
        fast path's regression guarantee stays checkable forever.
        """
        scaled = self._prepare(windows)
        outputs = self.model(Tensor(scaled)).numpy(copy=True).reshape(-1)
        return self.scaler.unscale_target(outputs)

    def _prepare(self, windows: np.ndarray) -> np.ndarray:
        """Shared validation + scaling so both inference paths see identical inputs."""
        check_fitted(self, ("scaler",))
        windows = check_array(windows, "windows", ndim=3, min_samples=1)
        return self._clip_scaled(self.scaler.transform(windows))

    def predict_one(self, window: np.ndarray) -> float:
        """Predict for a single ``(history, n_features)`` window."""
        window = check_array(window, "window", ndim=2)
        return float(self.predict(window[np.newaxis])[0])

    # ----------------------------------------------------------------- streaming
    def stream_state(self, n_streams: int = 1) -> BiLSTMStreamState:
        """Incremental serving state for ``n_streams`` concurrent CGM streams.

        The state ring-buffers the fused BiLSTM input projections of each
        stream's last ``history`` samples, so :meth:`step_stream` pays one
        scaling pass and one input projection per *new sample* instead of
        re-preparing the whole window — and serves every stream with one
        stacked recurrence per tick.
        """
        check_fitted(self, ("scaler",))
        encoder = self.model[0]
        if not isinstance(encoder, BiLSTM):
            raise TypeError(
                "streaming inference expects the model to start with a BiLSTM "
                f"encoder, found {type(encoder).__name__}"
            )
        return encoder.stream_state(n_streams, capacity=self.history)

    def step_stream(
        self,
        samples: np.ndarray,
        state: BiLSTMStreamState,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance selected streams by one raw CGM sample each.

        Parameters
        ----------
        samples:
            ``(k, n_features)`` raw (unscaled) samples, one per stream ticked.
        state:
            State from :meth:`stream_state`.
        rows:
            Stream slots receiving a sample this tick (default ``arange(k)``).

        Returns
        -------
        ``(k,)`` predictions in mg/dL.  A stream that has not yet seen a full
        ``history`` window returns NaN (warm-up).  Once warm, the prediction
        matches :meth:`predict` on the same sliding window within 1e-10 —
        pinned by ``tests/test_serving.py`` and ``scripts/check_parity.py``.
        """
        check_fitted(self, ("scaler",))
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != self.n_features:
            raise ValueError(
                f"samples must have shape (k, {self.n_features}), got {samples.shape}"
            )
        scaled = self._clip_scaled(self.scaler.transform_samples(samples))
        encoded = self.model[0].step(scaled, state, rows=rows)
        predictions = np.full(len(samples), np.nan)
        warm = ~np.isnan(encoded[:, 0])
        if np.any(warm):
            output = encoded[warm]
            for layer in self.model.layers[1:]:
                output = layer.fast_forward(output)
            predictions[warm] = self.scaler.unscale_target(output.reshape(-1))
        return predictions

    def step_one(
        self, sample: np.ndarray, state: BiLSTMStreamState, row: int = 0
    ) -> Optional[float]:
        """Single-stream twin of :meth:`step_stream` for one slot.

        Advances slot ``row`` of ``state`` with one ``(n_features,)`` raw
        sample and returns the prediction in mg/dL, or None while the slot's
        window is warming up (fewer than ``history`` samples seen).  The
        arithmetic is identical to :meth:`step_stream` on a one-row batch,
        so the two produce bitwise-equal predictions; this path only skips
        the per-call validation and batch bookkeeping (the serving
        scheduler's single-session fast path — inputs are assumed validated
        by the caller).
        """
        scaled = self._clip_scaled(
            self.scaler.transform_samples_unchecked(sample[np.newaxis])
        )
        encoded = self.model[0].step_one(scaled[0], state, row)
        if encoded is None:
            return None
        output = encoded
        for layer in self.model.layers[1:]:
            output = layer.fast_forward(output)
        return float(self.scaler.unscale_target(output.reshape(-1))[0])

    def predict_stream(self, features: np.ndarray) -> np.ndarray:
        """Stream a whole ``(T, n_features)`` trace one tick at a time.

        Returns a ``(T,)`` array: entry ``t`` is the prediction for the window
        ending at sample ``t`` (NaN for the first ``history - 1`` warm-up
        ticks), computed incrementally with O(1) work per tick beyond the
        window recurrence.  Equivalent to ``predict`` over the trace's sliding
        windows within 1e-10.
        """
        features = check_array(features, "features", ndim=2)
        state = self.stream_state(1)
        predictions = np.full(len(features), np.nan)
        for tick, sample in enumerate(features):
            predictions[tick] = self.step_stream(sample[np.newaxis], state)[0]
        return predictions

    def evaluate(self, windows: np.ndarray, targets: np.ndarray) -> Dict[str, float]:
        """Compute RMSE and MAE (mg/dL) on a held-out split."""
        targets = check_array(targets, "targets", ndim=1)
        predictions = self.predict(windows)
        check_consistent_length(predictions, targets)
        errors = predictions - targets
        return {
            "rmse": float(np.sqrt(np.mean(errors**2))),
            "mae": float(np.mean(np.abs(errors))),
        }

    # -------------------------------------------------------------- persistence
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Model weights (the scaler is not included)."""
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)

    def state_hash(self) -> str:
        """Fingerprint of everything :meth:`predict` depends on.

        Hashes the weight ``state_dict`` plus the fitted scaler statistics,
        the input clamp, and the window geometry — two predictors with equal
        hashes produce identical predictions for identical inputs, even when
        they are separately constructed objects (e.g. the same checkpoint
        loaded twice).  Both the attack campaign's cohort batching and the
        serving scheduler's lane assignment group by this hash instead of
        object identity.
        """
        digest = hashlib.sha256(self.model.state_hash().encode())
        digest.update(
            f"|{self.history}|{self.horizon}|{self.n_features}|{self.input_clip_std}"
            # use_fast_path selects the inference engine; the two paths agree
            # only within 1e-10, so mixed configurations must not merge.
            f"|{self.use_fast_path}".encode()
        )
        if self.scaler is not None:
            digest.update(self.scaler.signature())
        return digest.hexdigest()
