"""Glucose state classification (hypoglycemia / normal / hyperglycemia).

The thresholds follow the paper's threat model:

* hypoglycemia below 70 mg/dL,
* hyperglycemia above 125 mg/dL in a *fasting* state,
* hyperglycemia above 180 mg/dL in a *postprandial* state (within two hours
  after a meal).

The attacker's goal is to push the predicted glucose into the hyperglycemic
range while the true state is normal or hypoglycemic, so these thresholds
drive both the attack's target condition and the severity-weighted risk
quantification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Sequence

import numpy as np

#: Glucose below this value is hypoglycemic in every scenario (mg/dL).
HYPOGLYCEMIA_THRESHOLD = 70.0

#: Fasting hyperglycemia threshold (mg/dL).
FASTING_HYPER_THRESHOLD = 125.0

#: Postprandial (two hours after a meal) hyperglycemia threshold (mg/dL).
POSTPRANDIAL_HYPER_THRESHOLD = 180.0

#: Highest glucose value reported in the OhioT1DM dataset (mg/dL); adversarial
#: manipulations must stay below this bound to remain plausible.
MAX_PLAUSIBLE_GLUCOSE = 499.0

#: Number of five-minute samples that count as "postprandial" after a meal.
POSTPRANDIAL_WINDOW_SAMPLES = 24  # two hours


class GlucoseState(str, Enum):
    """Clinical glucose state."""

    HYPO = "hypo"
    NORMAL = "normal"
    HYPER = "hyper"


class Scenario(str, Enum):
    """Measurement scenario, which selects the hyperglycemia threshold."""

    FASTING = "fasting"
    POSTPRANDIAL = "postprandial"


def hyperglycemia_threshold(scenario: Scenario) -> float:
    """The hyperglycemia threshold for a scenario."""
    if scenario == Scenario.FASTING:
        return FASTING_HYPER_THRESHOLD
    if scenario == Scenario.POSTPRANDIAL:
        return POSTPRANDIAL_HYPER_THRESHOLD
    raise ValueError(f"unknown scenario {scenario!r}")


def classify_glucose(value: float, scenario: Scenario = Scenario.POSTPRANDIAL) -> GlucoseState:
    """Classify a single glucose value into hypo / normal / hyper."""
    value = float(value)
    if value < HYPOGLYCEMIA_THRESHOLD:
        return GlucoseState.HYPO
    if value > hyperglycemia_threshold(scenario):
        return GlucoseState.HYPER
    return GlucoseState.NORMAL


def classify_series(values: Sequence[float], scenario: Scenario = Scenario.POSTPRANDIAL) -> List[GlucoseState]:
    """Classify every value of a glucose series."""
    return [classify_glucose(value, scenario) for value in np.asarray(values, dtype=np.float64)]


def scenario_for_samples(carbs: Sequence[float], window: int = POSTPRANDIAL_WINDOW_SAMPLES) -> List[Scenario]:
    """Derive the per-sample scenario from the carbohydrate intake series.

    A sample is postprandial if any carbohydrate was ingested within the
    preceding ``window`` samples (two hours at CGM cadence); otherwise it is
    treated as fasting.
    """
    carbs = np.asarray(carbs, dtype=np.float64)
    scenarios: List[Scenario] = []
    for index in range(len(carbs)):
        start = max(0, index - window + 1)
        recent_carbs = carbs[start : index + 1].sum()
        scenarios.append(Scenario.POSTPRANDIAL if recent_carbs > 0 else Scenario.FASTING)
    return scenarios


def is_abnormal(value: float, scenario: Scenario = Scenario.POSTPRANDIAL) -> bool:
    """True when the value is hypo- or hyperglycemic for the scenario."""
    return classify_glucose(value, scenario) != GlucoseState.NORMAL


def normal_to_abnormal_ratio(values: Sequence[float], scenarios: Sequence[Scenario] = None) -> float:
    """Ratio of normal to abnormal samples in a benign trace (paper Fig. 4).

    Returns ``inf`` when the trace contains no abnormal samples.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("values must not be empty")
    if scenarios is None:
        scenarios = [Scenario.POSTPRANDIAL] * len(values)
    if len(scenarios) != len(values):
        raise ValueError("scenarios must align with values")
    states = [classify_glucose(value, scenario) for value, scenario in zip(values, scenarios)]
    normal = sum(1 for state in states if state == GlucoseState.NORMAL)
    abnormal = len(states) - normal
    if abnormal == 0:
        return float("inf")
    return normal / abnormal


@dataclass
class StateTransition:
    """A transition between the benign state and the adversarial state."""

    benign: GlucoseState
    adversarial: GlucoseState

    @property
    def is_misdiagnosis(self) -> bool:
        """True when the adversarial prediction changes the diagnosed state."""
        return self.benign != self.adversarial

    def __str__(self) -> str:
        return f"{self.benign.value}->{self.adversarial.value}"


def transition_between(
    benign_value: float, adversarial_value: float, scenario: Scenario = Scenario.POSTPRANDIAL
) -> StateTransition:
    """Build the state transition induced by an adversarial prediction."""
    return StateTransition(
        benign=classify_glucose(benign_value, scenario),
        adversarial=classify_glucose(adversarial_value, scenario),
    )
