"""The evasion attack engine (URET-style).

The adversary's goal, following the paper's threat model, is to make the
glucose forecaster predict hyperglycemia while the patient's true state is
normal or hypoglycemic, by manipulating only the CGM measurements and keeping
them within a plausible hyperglycemic range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.constraints import Constraint, constraint_for_scenario
from repro.attacks.explorers import Explorer, GreedyExplorer
from repro.attacks.transformers import Transformer, default_transformers
from repro.glucose.predictor import GlucosePredictor
from repro.glucose.states import (
    GlucoseState,
    Scenario,
    classify_glucose,
    hyperglycemia_threshold,
)


@dataclass
class AttackResult:
    """Outcome of attacking a single input window.

    ``queries`` counts every model query spent on this window, including the
    initial benign/eligibility screen (so an ineligible window costs exactly
    one query).  ``benign_window`` and ``adversarial_window`` are independent
    copies — never views into the caller's trace arrays — so downstream
    consumers can stash them without aliasing hazards.  ``warm_started`` is
    True when the window was resolved by replaying a caller-provided seed
    path (see :meth:`EvasionAttack.attack_batch`) instead of a fresh search.
    """

    eligible: bool
    success: bool
    scenario: Scenario
    benign_window: np.ndarray
    adversarial_window: np.ndarray
    benign_prediction: float
    adversarial_prediction: float
    benign_state: GlucoseState
    adversarial_state: GlucoseState
    queries: int = 0
    path: List[str] = field(default_factory=list)
    warm_started: bool = False

    @property
    def perturbation_norm(self) -> float:
        """L2 norm of the CGM perturbation (mg/dL)."""
        return float(np.linalg.norm(self.adversarial_window - self.benign_window))


def replay_transformation_path(
    window: np.ndarray,
    path: Sequence[str],
    transformers: Sequence[Transformer],
    constraint: Constraint,
) -> Optional[np.ndarray]:
    """Re-apply a recorded transformation path to a (possibly new) window.

    Follows the explorers' expand → project → admissibility discipline edge
    by edge, matching each step of ``path`` against the current window's
    candidate descriptions.  No model queries are issued.  Returns the
    resulting window, or None when any step no longer applies (its
    description is absent or the constraint rejects the projected edge) —
    the caller should fall back to a cold search.

    This is the engine behind attack warm-starting: an online attacker's
    consecutive context windows overlap in all but one sample, so the path
    that succeeded at tick ``t`` usually still reaches the goal at
    ``t + 1``; replaying it costs one model query instead of a search.
    """
    original = np.asarray(window, dtype=np.float64)
    current = original
    for description in path:
        advanced: Optional[np.ndarray] = None
        for transformer in transformers:
            matched = False
            for edge in transformer.candidates(current):
                if edge.description == description:
                    matched = True
                    projected = constraint.project(edge.window, original)
                    if constraint.is_satisfied(projected, original):
                        advanced = projected
                    break
            if matched:
                break
        if advanced is None:
            return None
        current = advanced
    return current


class EvasionAttack:
    """Search-based evasion attack against a glucose forecaster.

    Parameters
    ----------
    predictor:
        The target model (personalized or aggregate forecaster).
    transformers:
        Transformation set defining the search graph; defaults to the paper's
        CGM-only manipulation set.
    explorer:
        Search strategy (greedy by default).
    """

    def __init__(
        self,
        predictor: GlucosePredictor,
        transformers: Optional[Sequence[Transformer]] = None,
        explorer: Optional[Explorer] = None,
    ):
        self.predictor = predictor
        self.transformers = list(transformers) if transformers is not None else default_transformers()
        self.explorer = explorer or GreedyExplorer()

    # ------------------------------------------------------------------ helpers
    def _explorer_supports_seeds(self) -> bool:
        """True when the explorer's ``search_batch`` can honor ``seed_entries``.

        The base :class:`~repro.attacks.explorers.Explorer` loop rejects
        seeds (they are a lockstep-only feature), so an explorer qualifies
        only when it *overrides* ``search_batch`` AND the override accepts
        the keyword.
        """
        import inspect

        method = type(self.explorer).search_batch
        if method is Explorer.search_batch:
            return False
        try:
            return "seed_entries" in inspect.signature(method).parameters
        except (TypeError, ValueError):  # builtins / exotic callables
            return False

    def _score_function(self):
        def score(batch: np.ndarray) -> np.ndarray:
            return self.predictor.predict(batch)

        return score

    def _goal_function(self, scenario: Scenario):
        threshold = hyperglycemia_threshold(scenario)

        def goal(window: np.ndarray, score: float) -> bool:
            return score > threshold

        return goal

    # ------------------------------------------------------------------- attack
    def attack_window(
        self,
        window: np.ndarray,
        scenario: Scenario = Scenario.POSTPRANDIAL,
        constraint: Optional[Constraint] = None,
    ) -> AttackResult:
        """Attack one ``(history, n_features)`` window.

        A window is *eligible* when the benign prediction is not already
        hyperglycemic — attacking an already-hyper prediction would not change
        the diagnosis.  Ineligible windows are returned unmodified with
        ``eligible=False``.

        The benign prediction is passed to the explorer as ``initial_score``,
        so the starting window is scored exactly once and ``queries`` equals
        the actual number of model queries.
        """
        window = np.array(window, dtype=np.float64, copy=True)
        constraint = constraint or constraint_for_scenario(scenario)
        benign_prediction = self.predictor.predict_one(window)
        benign_state = classify_glucose(benign_prediction, scenario)

        if benign_state == GlucoseState.HYPER:
            return AttackResult(
                eligible=False,
                success=False,
                scenario=scenario,
                benign_window=window,
                adversarial_window=window.copy(),
                benign_prediction=benign_prediction,
                adversarial_prediction=benign_prediction,
                benign_state=benign_state,
                adversarial_state=benign_state,
                queries=1,
            )

        result = self.explorer.search(
            original=window,
            transformers=self.transformers,
            constraint=constraint,
            score_function=self._score_function(),
            goal_function=self._goal_function(scenario),
            initial_score=benign_prediction,
        )
        return self._result_from_exploration(
            window, scenario, benign_prediction, benign_state, result
        )

    def _result_from_exploration(
        self,
        window: np.ndarray,
        scenario: Scenario,
        benign_prediction: float,
        benign_state: GlucoseState,
        result,
    ) -> AttackResult:
        """Assemble an :class:`AttackResult` for one explored (eligible) window."""
        adversarial_state = classify_glucose(result.score, scenario)
        return AttackResult(
            eligible=True,
            success=bool(result.success),
            scenario=scenario,
            benign_window=window,
            adversarial_window=result.window,
            benign_prediction=benign_prediction,
            adversarial_prediction=float(result.score),
            benign_state=benign_state,
            adversarial_state=adversarial_state,
            # +1 for the eligibility screen the explorer did not repeat.
            queries=result.queries + 1,
            path=list(result.path),
        )

    def attack_batch(
        self,
        windows: np.ndarray,
        scenarios: Sequence[Scenario],
        constraint: Optional[Constraint] = None,
        batched: bool = True,
        seed_paths: Optional[Sequence[Optional[Sequence[str]]]] = None,
        seed_beam: bool = False,
    ) -> List[AttackResult]:
        """Attack a batch of windows, one scenario per window.

        With ``batched=True`` (the default) the whole batch runs through the
        batched inference engine: eligibility screening is ONE model call
        over all windows, and the explorer's lockstep mode advances every
        still-active window together, issuing one large model query per
        search depth instead of one small query per window.  Every shipped
        explorer (greedy, beam, random) has a true lockstep mode pinned to
        its sequential reference by ``tests/test_explorer_parity.py``.  Set
        ``batched=False`` to fall back to the sequential per-window loop
        (identical results, many more model calls).

        ``seed_paths`` (one optional transformation path per window, aligned
        by position; requires ``batched=True``) warm-starts the search: each
        eligible window's seed path is replayed on the window
        (:func:`replay_transformation_path`, no model queries) and all
        surviving endpoints are scored in one extra batched call.  Endpoints
        that reach the goal resolve their window immediately —
        ``queries == 2`` (screen + endpoint), ``warm_started=True`` — and
        skip the explorer; the rest fall back to the normal search with the
        one warm query added to their count, so query accounting stays
        exact.  This is how :class:`repro.serving.OnlineAttacker` reuses the
        previous tick's surviving path instead of re-searching every tick.

        ``seed_beam`` (requires ``seed_paths``) upgrades warm *misses*: a
        replayed endpoint that fails the goal is not discarded — it is handed
        to the explorer as a pre-scored starting-beam seed
        (``search_batch(seed_entries=...)``), so the fallback search resumes
        from the best known adversarial point instead of restarting at the
        benign window.  No extra model queries: the seed reuses the score the
        warm evaluation already paid for (still the usual +1 on warm-miss
        windows), which is what cuts queries on warm-miss ticks.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) != len(scenarios):
            raise ValueError("windows and scenarios must have the same length")
        if seed_paths is not None and len(seed_paths) != len(windows):
            raise ValueError("seed_paths must align with windows")
        if seed_beam and seed_paths is None:
            raise ValueError("seed_beam requires seed_paths")
        if len(windows) == 0:
            return []
        if not batched:
            if seed_paths is not None:
                raise ValueError("seed_paths requires batched=True")
            return [
                self.attack_window(window, scenario, constraint)
                for window, scenario in zip(windows, scenarios)
            ]

        # One batched query screens every window for eligibility.
        benign_predictions = self.predictor.predict(windows)
        results: List[Optional[AttackResult]] = [None] * len(windows)
        eligible_indices: List[int] = []
        for index, scenario in enumerate(scenarios):
            benign_prediction = float(benign_predictions[index])
            benign_state = classify_glucose(benign_prediction, scenario)
            if benign_state == GlucoseState.HYPER:
                window = windows[index].copy()
                results[index] = AttackResult(
                    eligible=False,
                    success=False,
                    scenario=scenario,
                    benign_window=window,
                    adversarial_window=window.copy(),
                    benign_prediction=benign_prediction,
                    adversarial_prediction=benign_prediction,
                    benign_state=benign_state,
                    adversarial_state=benign_state,
                    queries=1,
                )
            else:
                eligible_indices.append(index)

        # Warm start: replay seed paths (no model queries), score all surviving
        # endpoints in one batched call, and resolve the ones that reach the
        # goal without ever entering the explorer.
        warm_failures: List[int] = []
        # index -> (endpoint, warm score) for warm misses, kept when
        # seed_beam upgrades them into explorer starting-beam seeds.
        warm_miss_endpoints = {}
        if seed_paths is not None and eligible_indices:
            replayed: List[Tuple[int, np.ndarray]] = []
            for index in eligible_indices:
                path = seed_paths[index]
                if not path:
                    continue
                endpoint = replay_transformation_path(
                    windows[index],
                    path,
                    self.transformers,
                    constraint or constraint_for_scenario(scenarios[index]),
                )
                if endpoint is not None:
                    replayed.append((index, endpoint))
            if replayed:
                warm_scores = self.predictor.predict(
                    np.stack([endpoint for _, endpoint in replayed])
                )
                resolved = set()
                for (index, endpoint), warm_score in zip(replayed, warm_scores):
                    warm_score = float(warm_score)
                    scenario = scenarios[index]
                    if not self._goal_function(scenario)(endpoint, warm_score):
                        warm_failures.append(index)
                        if seed_beam:
                            warm_miss_endpoints[index] = (endpoint, warm_score)
                        continue
                    benign_prediction = float(benign_predictions[index])
                    results[index] = AttackResult(
                        eligible=True,
                        success=True,
                        scenario=scenario,
                        benign_window=windows[index].copy(),
                        adversarial_window=endpoint.copy(),
                        benign_prediction=benign_prediction,
                        adversarial_prediction=warm_score,
                        benign_state=classify_glucose(benign_prediction, scenario),
                        adversarial_state=classify_glucose(warm_score, scenario),
                        queries=2,  # eligibility screen + warm endpoint
                        path=list(seed_paths[index]),
                        warm_started=True,
                    )
                    resolved.add(index)
                if resolved:
                    eligible_indices = [
                        index for index in eligible_indices if index not in resolved
                    ]

        if eligible_indices:
            # Seeds are passed only to explorers that can honor them (a
            # lockstep override accepting the kwarg) — bring-your-own
            # explorers without seed support keep working un-seeded, on
            # every tick, instead of crashing at the first warm miss.
            explorer_kwargs = {}
            if warm_miss_endpoints and self._explorer_supports_seeds():
                explorer_kwargs["seed_entries"] = [
                    (
                        warm_miss_endpoints[index][0],
                        warm_miss_endpoints[index][1],
                        list(seed_paths[index]),
                    )
                    if index in warm_miss_endpoints
                    else None
                    for index in eligible_indices
                ]
            explorations = self.explorer.search_batch(
                originals=[windows[index] for index in eligible_indices],
                transformers=self.transformers,
                constraints=[
                    constraint or constraint_for_scenario(scenarios[index])
                    for index in eligible_indices
                ],
                score_function=self._score_function(),
                goal_functions=[
                    self._goal_function(scenarios[index]) for index in eligible_indices
                ],
                initial_scores=[float(benign_predictions[index]) for index in eligible_indices],
                **explorer_kwargs,
            )
            for index, exploration in zip(eligible_indices, explorations):
                benign_prediction = float(benign_predictions[index])
                results[index] = self._result_from_exploration(
                    windows[index].copy(),
                    scenarios[index],
                    benign_prediction,
                    classify_glucose(benign_prediction, scenarios[index]),
                    exploration,
                )
        for index in warm_failures:
            # The failed warm-endpoint evaluation was a real model query.
            results[index].queries += 1
        return results  # type: ignore[return-value]
