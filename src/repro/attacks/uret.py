"""The evasion attack engine (URET-style).

The adversary's goal, following the paper's threat model, is to make the
glucose forecaster predict hyperglycemia while the patient's true state is
normal or hypoglycemic, by manipulating only the CGM measurements and keeping
them within a plausible hyperglycemic range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.constraints import Constraint, constraint_for_scenario
from repro.attacks.explorers import Explorer, GreedyExplorer
from repro.attacks.transformers import Transformer, default_transformers
from repro.glucose.predictor import GlucosePredictor
from repro.glucose.states import (
    GlucoseState,
    Scenario,
    classify_glucose,
    hyperglycemia_threshold,
)


@dataclass
class AttackResult:
    """Outcome of attacking a single input window.

    ``queries`` counts every model query spent on this window, including the
    initial benign/eligibility screen (so an ineligible window costs exactly
    one query).  ``benign_window`` and ``adversarial_window`` are independent
    copies — never views into the caller's trace arrays — so downstream
    consumers can stash them without aliasing hazards.
    """

    eligible: bool
    success: bool
    scenario: Scenario
    benign_window: np.ndarray
    adversarial_window: np.ndarray
    benign_prediction: float
    adversarial_prediction: float
    benign_state: GlucoseState
    adversarial_state: GlucoseState
    queries: int = 0
    path: List[str] = field(default_factory=list)

    @property
    def perturbation_norm(self) -> float:
        """L2 norm of the CGM perturbation (mg/dL)."""
        return float(np.linalg.norm(self.adversarial_window - self.benign_window))


class EvasionAttack:
    """Search-based evasion attack against a glucose forecaster.

    Parameters
    ----------
    predictor:
        The target model (personalized or aggregate forecaster).
    transformers:
        Transformation set defining the search graph; defaults to the paper's
        CGM-only manipulation set.
    explorer:
        Search strategy (greedy by default).
    """

    def __init__(
        self,
        predictor: GlucosePredictor,
        transformers: Optional[Sequence[Transformer]] = None,
        explorer: Optional[Explorer] = None,
    ):
        self.predictor = predictor
        self.transformers = list(transformers) if transformers is not None else default_transformers()
        self.explorer = explorer or GreedyExplorer()

    # ------------------------------------------------------------------ helpers
    def _score_function(self):
        def score(batch: np.ndarray) -> np.ndarray:
            return self.predictor.predict(batch)

        return score

    def _goal_function(self, scenario: Scenario):
        threshold = hyperglycemia_threshold(scenario)

        def goal(window: np.ndarray, score: float) -> bool:
            return score > threshold

        return goal

    # ------------------------------------------------------------------- attack
    def attack_window(
        self,
        window: np.ndarray,
        scenario: Scenario = Scenario.POSTPRANDIAL,
        constraint: Optional[Constraint] = None,
    ) -> AttackResult:
        """Attack one ``(history, n_features)`` window.

        A window is *eligible* when the benign prediction is not already
        hyperglycemic — attacking an already-hyper prediction would not change
        the diagnosis.  Ineligible windows are returned unmodified with
        ``eligible=False``.

        The benign prediction is passed to the explorer as ``initial_score``,
        so the starting window is scored exactly once and ``queries`` equals
        the actual number of model queries.
        """
        window = np.array(window, dtype=np.float64, copy=True)
        constraint = constraint or constraint_for_scenario(scenario)
        benign_prediction = self.predictor.predict_one(window)
        benign_state = classify_glucose(benign_prediction, scenario)

        if benign_state == GlucoseState.HYPER:
            return AttackResult(
                eligible=False,
                success=False,
                scenario=scenario,
                benign_window=window,
                adversarial_window=window.copy(),
                benign_prediction=benign_prediction,
                adversarial_prediction=benign_prediction,
                benign_state=benign_state,
                adversarial_state=benign_state,
                queries=1,
            )

        result = self.explorer.search(
            original=window,
            transformers=self.transformers,
            constraint=constraint,
            score_function=self._score_function(),
            goal_function=self._goal_function(scenario),
            initial_score=benign_prediction,
        )
        return self._result_from_exploration(
            window, scenario, benign_prediction, benign_state, result
        )

    def _result_from_exploration(
        self,
        window: np.ndarray,
        scenario: Scenario,
        benign_prediction: float,
        benign_state: GlucoseState,
        result,
    ) -> AttackResult:
        """Assemble an :class:`AttackResult` for one explored (eligible) window."""
        adversarial_state = classify_glucose(result.score, scenario)
        return AttackResult(
            eligible=True,
            success=bool(result.success),
            scenario=scenario,
            benign_window=window,
            adversarial_window=result.window,
            benign_prediction=benign_prediction,
            adversarial_prediction=float(result.score),
            benign_state=benign_state,
            adversarial_state=adversarial_state,
            # +1 for the eligibility screen the explorer did not repeat.
            queries=result.queries + 1,
            path=list(result.path),
        )

    def attack_batch(
        self,
        windows: np.ndarray,
        scenarios: Sequence[Scenario],
        constraint: Optional[Constraint] = None,
        batched: bool = True,
    ) -> List[AttackResult]:
        """Attack a batch of windows, one scenario per window.

        With ``batched=True`` (the default) the whole batch runs through the
        batched inference engine: eligibility screening is ONE model call
        over all windows, and the explorer's lockstep mode advances every
        still-active window together, issuing one large model query per
        search depth instead of one small query per window.  Every shipped
        explorer (greedy, beam, random) has a true lockstep mode pinned to
        its sequential reference by ``tests/test_explorer_parity.py``.  Set
        ``batched=False`` to fall back to the sequential per-window loop
        (identical results, many more model calls).
        """
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) != len(scenarios):
            raise ValueError("windows and scenarios must have the same length")
        if len(windows) == 0:
            return []
        if not batched:
            return [
                self.attack_window(window, scenario, constraint)
                for window, scenario in zip(windows, scenarios)
            ]

        # One batched query screens every window for eligibility.
        benign_predictions = self.predictor.predict(windows)
        results: List[Optional[AttackResult]] = [None] * len(windows)
        eligible_indices: List[int] = []
        for index, scenario in enumerate(scenarios):
            benign_prediction = float(benign_predictions[index])
            benign_state = classify_glucose(benign_prediction, scenario)
            if benign_state == GlucoseState.HYPER:
                window = windows[index].copy()
                results[index] = AttackResult(
                    eligible=False,
                    success=False,
                    scenario=scenario,
                    benign_window=window,
                    adversarial_window=window.copy(),
                    benign_prediction=benign_prediction,
                    adversarial_prediction=benign_prediction,
                    benign_state=benign_state,
                    adversarial_state=benign_state,
                    queries=1,
                )
            else:
                eligible_indices.append(index)

        if eligible_indices:
            explorations = self.explorer.search_batch(
                originals=[windows[index] for index in eligible_indices],
                transformers=self.transformers,
                constraints=[
                    constraint or constraint_for_scenario(scenarios[index])
                    for index in eligible_indices
                ],
                score_function=self._score_function(),
                goal_functions=[
                    self._goal_function(scenarios[index]) for index in eligible_indices
                ],
                initial_scores=[float(benign_predictions[index]) for index in eligible_indices],
            )
            for index, exploration in zip(eligible_indices, explorations):
                benign_prediction = float(benign_predictions[index])
                results[index] = self._result_from_exploration(
                    windows[index].copy(),
                    scenarios[index],
                    benign_prediction,
                    classify_glucose(benign_prediction, scenarios[index]),
                    exploration,
                )
        return results  # type: ignore[return-value]
