"""Attack campaigns: run the evasion attack across patients and splits.

A campaign attacks (a subsample of) every eligible window of a patient trace
and collects per-window :class:`~repro.attacks.uret.AttackResult` objects.
Campaign results feed three downstream consumers:

* attack success-rate figures (paper Appendix A, Figures 9 and 10),
* the risk profiling framework (step 1: attack simulation), and
* labeled benign/malicious window sets for training and evaluating the
  anomaly detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.uret import AttackResult, EvasionAttack
from repro.data.cohort import Cohort, PatientRecord
from repro.data.dataset import ForecastingDataset
from repro.glucose.models import GlucoseModelZoo
from repro.glucose.states import GlucoseState, Scenario, scenario_for_samples


@dataclass
class WindowAttackRecord:
    """An attack result annotated with its provenance inside the trace."""

    patient_label: str
    split: str
    window_index: int
    target_index: int
    result: AttackResult


@dataclass
class CampaignSummary:
    """Aggregate statistics of one campaign run for one patient/split."""

    patient_label: str
    split: str
    n_windows: int
    n_eligible: int
    n_success: int
    success_rate: float
    normal_to_hyper_rate: float
    hypo_to_hyper_rate: float
    n_normal_eligible: int
    n_hypo_eligible: int
    mean_queries: float


@dataclass
class CampaignResult:
    """All attack records of a campaign plus per-patient summaries."""

    records: List[WindowAttackRecord] = field(default_factory=list)

    def for_patient(self, patient_label: str) -> List[WindowAttackRecord]:
        return [record for record in self.records if record.patient_label == patient_label]

    @property
    def patient_labels(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.patient_label not in seen:
                seen.append(record.patient_label)
        return seen

    def summary(self, patient_label: str) -> CampaignSummary:
        """Success-rate summary for one patient."""
        records = self.for_patient(patient_label)
        if not records:
            raise KeyError(f"no campaign records for patient {patient_label!r}")
        results = [record.result for record in records]
        eligible = [result for result in results if result.eligible]
        successes = [result for result in eligible if result.success]

        normal_eligible = [r for r in eligible if r.benign_state == GlucoseState.NORMAL]
        hypo_eligible = [r for r in eligible if r.benign_state == GlucoseState.HYPO]
        normal_success = [r for r in normal_eligible if r.success]
        hypo_success = [r for r in hypo_eligible if r.success]

        def rate(successes_list, eligible_list) -> float:
            return len(successes_list) / len(eligible_list) if eligible_list else float("nan")

        return CampaignSummary(
            patient_label=patient_label,
            split=records[0].split,
            n_windows=len(results),
            n_eligible=len(eligible),
            n_success=len(successes),
            success_rate=rate(successes, eligible),
            normal_to_hyper_rate=rate(normal_success, normal_eligible),
            hypo_to_hyper_rate=rate(hypo_success, hypo_eligible),
            n_normal_eligible=len(normal_eligible),
            n_hypo_eligible=len(hypo_eligible),
            mean_queries=float(np.mean([result.queries for result in results])) if results else 0.0,
        )

    def summaries(self) -> Dict[str, CampaignSummary]:
        return {label: self.summary(label) for label in self.patient_labels}

    # --------------------------------------------------------- detector datasets
    def detection_dataset(
        self,
        patient_labels: Optional[Sequence[str]] = None,
        include_failed: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        """Assemble a labeled window dataset for anomaly detectors.

        Returns
        -------
        windows:
            Array ``(n, history, features)`` of benign and adversarial windows.
        labels:
            1 for adversarial (manipulated) windows, 0 for benign windows.
        provenance:
            Patient label per window.
        """
        if patient_labels is None:
            patient_labels = self.patient_labels
        windows: List[np.ndarray] = []
        labels: List[int] = []
        provenance: List[str] = []
        for record in self.records:
            if record.patient_label not in patient_labels:
                continue
            result = record.result
            windows.append(result.benign_window)
            labels.append(0)
            provenance.append(record.patient_label)
            if result.eligible and (result.success or include_failed):
                windows.append(result.adversarial_window)
                labels.append(1)
                provenance.append(record.patient_label)
        if not windows:
            return np.empty((0, 0, 0)), np.empty((0,), dtype=int), []
        return np.stack(windows), np.asarray(labels, dtype=int), provenance

    def sample_dataset(
        self,
        patient_labels: Optional[Sequence[str]] = None,
        include_failed: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        """Assemble a labeled per-sample dataset for point anomaly detectors.

        The paper's kNN and OneClassSVM detectors inspect individual glucose
        measurements (the sample transmitted at time ``t``) rather than whole
        windows; this view exposes the final row of each benign window as a
        benign sample and the final row of each (successful) adversarial
        window as a malicious sample.

        Returns
        -------
        samples:
            Array ``(n, 1, features)`` — single-timestep windows, so the same
            detector interface applies to both views.
        labels:
            1 for manipulated measurements, 0 for benign measurements.
        provenance:
            Patient label per sample.
        """
        if patient_labels is None:
            patient_labels = self.patient_labels
        samples: List[np.ndarray] = []
        labels: List[int] = []
        provenance: List[str] = []
        for record in self.records:
            if record.patient_label not in patient_labels:
                continue
            result = record.result
            samples.append(result.benign_window[-1:])
            labels.append(0)
            provenance.append(record.patient_label)
            if result.eligible and (result.success or include_failed):
                samples.append(result.adversarial_window[-1:])
                labels.append(1)
                provenance.append(record.patient_label)
        if not samples:
            return np.empty((0, 1, 0)), np.empty((0,), dtype=int), []
        return np.stack(samples), np.asarray(labels, dtype=int), provenance


def _campaign_worker(campaign: "AttackCampaign", tasks: Dict[str, tuple], conn) -> None:
    """Forked worker: run a subset of per-model group searches and report back.

    Fork semantics matter here: the campaign (and its possibly-unpicklable
    ``attack_factory`` closure) is inherited by memory image, never pickled;
    only the :class:`AttackResult` lists return through the pipe.
    """
    try:
        results = {key: campaign._attack_one_group(*task) for key, task in tasks.items()}
        conn.send(("ok", results))
    except Exception:
        import traceback

        conn.send(("err", traceback.format_exc()))
    finally:
        conn.close()


class AttackCampaign:
    """Run the evasion attack over patient traces.

    Parameters
    ----------
    zoo:
        Trained model zoo; each patient is attacked through the model the
        deployment would use for them (personalized if available, otherwise
        the aggregate model).
    dataset:
        Windowing configuration (must match the zoo's).
    stride:
        Attack every ``stride``-th window of the trace (1 = every window).
    attack_factory:
        Callable building an :class:`EvasionAttack` from a predictor; lets the
        caller swap explorers or transformation sets.
    batched:
        When True (the default) each patient's windows are attacked through
        :meth:`EvasionAttack.attack_batch`: a single model call screens every
        window for eligibility and the explorer advances all windows in
        lockstep.  Set False to restore the sequential per-window loop
        (identical records, far slower).
    cohort_batched:
        When True, :meth:`run_cohort` merges the eligible windows of every
        patient *sharing a target model* (e.g. the aggregate-model campaign)
        into one lockstep search, so a whole cohort advances together with
        one model query per search depth.  Sharing is decided by
        :meth:`GlucosePredictor.state_hash` — weights plus scaler, not object
        identity — so separately loaded copies of one checkpoint also merge.
        Per-patient
        :class:`WindowAttackRecord` attribution and record ordering are
        preserved.  Defaults to ``batched``; with deterministic explorers
        (greedy, beam) the records are identical to per-patient runs, while
        stochastic explorers allocate their RNG stream across the merged
        batch (still reproducible for a fixed seed — see
        ``tests/test_attacks_batched.py``).
    obs:
        Optional :class:`~repro.obs.Observer`.  Each run folds its record
        totals into ``campaign.windows_attacked_total`` (labeled eligible /
        success) and ``campaign.model_queries_total`` — per-record event
        counts, so the series are independent of batching mode or worker
        count.  None (the default) records nothing.
    """

    def __init__(
        self,
        zoo: GlucoseModelZoo,
        dataset: Optional[ForecastingDataset] = None,
        stride: int = 1,
        attack_factory=None,
        batched: bool = True,
        cohort_batched: Optional[bool] = None,
        obs=None,
    ):
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.zoo = zoo
        self.dataset = dataset or zoo.dataset
        self.stride = int(stride)
        self.attack_factory = attack_factory or (lambda predictor: EvasionAttack(predictor))
        self.batched = bool(batched)
        self.cohort_batched = self.batched if cohort_batched is None else bool(cohort_batched)
        self.obs = obs

    def _emit_records(self, records: Sequence[WindowAttackRecord]) -> None:
        """Fold one run's per-window outcomes into the campaign counters."""
        if self.obs is None:
            return
        registry = self.obs.registry
        for record in records:
            result = record.result
            registry.inc(
                "campaign.windows_attacked_total",
                eligible="yes" if result.eligible else "no",
                success="yes" if result.success else "no",
            )
            registry.inc("campaign.model_queries_total", int(result.queries))

    def _prepare_patient(self, record: PatientRecord, split: str):
        """Strided windows + scenarios for one patient, or None if the trace is empty."""
        windows, _, target_indices = self.dataset.from_record(record, split)
        if len(windows) == 0:
            return None
        carbs = record.features(split)[:, 2]
        scenarios = scenario_for_samples(carbs)
        window_indices = list(range(0, len(windows), self.stride))
        window_scenarios = [scenarios[target_indices[index]] for index in window_indices]
        return windows[window_indices], window_indices, target_indices, window_scenarios

    def _records_for(
        self,
        record: PatientRecord,
        split: str,
        window_indices: Sequence[int],
        target_indices: Sequence[int],
        attack_results,
    ) -> List[WindowAttackRecord]:
        return [
            WindowAttackRecord(
                patient_label=record.label,
                split=split,
                window_index=window_index,
                target_index=target_indices[window_index],
                result=attack_result,
            )
            for window_index, attack_result in zip(window_indices, attack_results)
        ]

    def run_patient(self, record: PatientRecord, split: str = "test") -> CampaignResult:
        """Attack one patient's trace."""
        result = CampaignResult()
        prepared = self._prepare_patient(record, split)
        if prepared is None:
            return result
        windows, window_indices, target_indices, window_scenarios = prepared
        attack = self.attack_factory(self.zoo.model_for(record.label))
        attack_results = attack.attack_batch(windows, window_scenarios, batched=self.batched)
        result.records.extend(
            self._records_for(record, split, window_indices, target_indices, attack_results)
        )
        self._emit_records(result.records)
        return result

    def run_cohort(
        self,
        cohort: Cohort,
        split: str = "test",
        n_workers: Optional[int] = None,
    ) -> CampaignResult:
        """Attack every patient in a cohort and merge the records.

        With ``cohort_batched`` (the default when ``batched``), patients that
        share a target model are attacked through ONE merged lockstep search:
        a single eligibility screen covers every patient's windows and each
        search depth issues one model query for the whole cohort, instead of
        one batch per patient.  Records keep per-patient attribution and are
        ordered exactly as the per-patient loop would order them (cohort
        order, then trace order).

        ``n_workers`` shards the per-model groups across forked worker
        processes (requires ``cohort_batched``).  Each group's lockstep
        search is the atomic unit of work and runs *unchanged* inside its
        worker — same factory call, same merged batch — so the records are
        equal record-for-record to the single-process path; per-patient
        attribution and cohort record ordering are preserved by the parent.
        Workers are forked, so ``attack_factory`` closures need not be
        picklable; but a factory must not close over one *live* shared
        ``RandomState`` expecting cross-group draw interleaving — after the
        fork each worker advances a private copy of the stream (the aliasing
        hazard :meth:`repro.utils.rng.RandomState.fork` documents).  Seeded
        explorers built per group (the default shape) are unaffected.  Falls
        back to in-process execution when ``fork`` is unavailable or there
        are fewer than two groups.
        """
        merged = CampaignResult()
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not (self.batched and self.cohort_batched):
            if n_workers is not None and n_workers > 1:
                raise ValueError(
                    "n_workers > 1 requires cohort_batched campaigns: the "
                    "per-model merged search is the unit of work sharded "
                    "across workers"
                )
            for record in cohort:
                merged.records.extend(self.run_patient(record, split).records)
            return merged

        prepared_by_label: Dict[str, tuple] = {}
        groups: Dict[str, List[PatientRecord]] = {}
        predictors: Dict[str, object] = {}
        # state_hash digests every weight tensor; hash each distinct object
        # once per run (the zoo keeps predictors alive, so ids are stable).
        hash_by_id: Dict[int, str] = {}
        for record in cohort:
            prepared = self._prepare_patient(record, split)
            if prepared is None:
                continue
            predictor = self.zoo.model_for(record.label)
            # Group by weight+scaler hash rather than object identity, so
            # separately loaded copies of the same checkpoint (which answer
            # every query identically) merge into one lockstep search.
            key = hash_by_id.get(id(predictor))
            if key is None:
                key = hash_by_id[id(predictor)] = predictor.state_hash()
            prepared_by_label[record.label] = prepared
            predictors[key] = predictor
            groups.setdefault(key, []).append(record)

        tasks: Dict[str, tuple] = {}
        for key, group in groups.items():
            merged_windows = np.concatenate(
                [prepared_by_label[record.label][0] for record in group]
            )
            merged_scenarios = [
                scenario
                for record in group
                for scenario in prepared_by_label[record.label][3]
            ]
            tasks[key] = (predictors[key], merged_windows, merged_scenarios)
        results_by_key = self._attack_groups(tasks, n_workers)

        records_by_label: Dict[str, List[WindowAttackRecord]] = {}
        for key, group in groups.items():
            attack_results = results_by_key[key]
            offset = 0
            for record in group:
                _, window_indices, target_indices, _ = prepared_by_label[record.label]
                count = len(window_indices)
                records_by_label[record.label] = self._records_for(
                    record,
                    split,
                    window_indices,
                    target_indices,
                    attack_results[offset : offset + count],
                )
                offset += count

        for record in cohort:  # preserve the per-patient record ordering
            merged.records.extend(records_by_label.get(record.label, []))
        # The per-patient path emitted inside run_patient; the merged path
        # emits here — either way, once per attacked window.
        self._emit_records(merged.records)
        return merged

    # ------------------------------------------------------------------ sharding
    def _attack_one_group(self, predictor, windows, scenarios) -> List[AttackResult]:
        """One merged lockstep search — identical in- and cross-process."""
        attack = self.attack_factory(predictor)
        return attack.attack_batch(windows, scenarios, batched=True)

    def _attack_groups(
        self, tasks: Dict[str, tuple], n_workers: Optional[int]
    ) -> Dict[str, List[AttackResult]]:
        """Run every per-model group search, optionally across forked workers.

        Groups are assigned round-robin in group-creation order (first
        patient appearance — deterministic and independent of worker
        count's effect on results: each group's search runs identically
        wherever it lands).  Worker exceptions are re-raised parent-side
        with the worker traceback attached.
        """
        import multiprocessing

        keys = list(tasks)
        use_workers = (
            n_workers is not None
            and n_workers > 1
            and len(keys) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if not use_workers:
            return {key: self._attack_one_group(*tasks[key]) for key in keys}

        context = multiprocessing.get_context("fork")
        shards = [keys[index::n_workers] for index in range(n_workers)]
        shards = [shard for shard in shards if shard]
        workers = []
        for shard in shards:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_campaign_worker,
                args=(self, {key: tasks[key] for key in shard}, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((process, parent_conn))

        results_by_key: Dict[str, List[AttackResult]] = {}
        failure: Optional[RuntimeError] = None
        for process, conn in workers:
            try:
                status, payload = conn.recv()
            except EOFError:
                status, payload = "err", "campaign worker died before reporting"
            if status == "ok":
                results_by_key.update(payload)
            elif failure is None:
                failure = RuntimeError(f"campaign worker failed:\n{payload}")
            conn.close()
        for process, _ in workers:
            process.join()
        if failure is not None:
            raise failure
        return results_by_key
