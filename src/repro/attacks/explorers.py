"""Search strategies over the transformation graph (URET "explorers")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.constraints import Constraint
from repro.attacks.transformers import TransformationEdge, Transformer
from repro.utils.rng import RandomState, SeedLike, as_random_state

#: Scores a batch of candidate windows; larger is better for the adversary.
ScoreFunction = Callable[[np.ndarray], np.ndarray]

#: Decides whether a (window, score) pair reaches the adversarial goal.
GoalFunction = Callable[[np.ndarray, float], bool]


@dataclass
class ExplorationResult:
    """Outcome of an explorer search."""

    success: bool
    window: np.ndarray
    score: float
    path: List[str] = field(default_factory=list)
    queries: int = 0


def _expand(
    window: np.ndarray,
    original: np.ndarray,
    transformers: Sequence[Transformer],
    constraint: Constraint,
) -> List[TransformationEdge]:
    """Generate all admissible candidate edges from ``window``."""
    edges: List[TransformationEdge] = []
    for transformer in transformers:
        for edge in transformer.candidates(window):
            projected = constraint.project(edge.window, original)
            if constraint.is_satisfied(projected, original):
                edges.append(TransformationEdge(projected, edge.description))
    return edges


def _edges_as_arrays(edges: List[TransformationEdge]) -> Tuple[np.ndarray, List[str]]:
    """Convert a per-edge list into the (candidates, descriptions) batch form."""
    if not edges:
        return np.empty((0, 0, 0)), []
    return (
        np.stack([edge.window for edge in edges]),
        [edge.description for edge in edges],
    )


def _expand_many(
    windows: Sequence[np.ndarray],
    originals: Sequence[np.ndarray],
    transformers: Sequence[Transformer],
    constraints: Sequence[Constraint],
) -> List[Tuple[np.ndarray, List[str]]]:
    """Vectorized :func:`_expand` over many (window, original, constraint) triples.

    One ``candidates_batch`` call per transformer builds every raw candidate of
    every window at once, and each window's constraint runs one vectorized
    project + admissibility pass over its whole candidate stack — no per-edge
    Python objects anywhere.  Returns, per input window, the admissible
    candidate array ``(n_admissible, history, features)`` and the matching
    descriptions, in exactly the order :func:`_expand` would produce them.
    """
    stacked_windows = np.stack([np.asarray(window, dtype=np.float64) for window in windows])
    candidate_blocks: List[np.ndarray] = []
    descriptions: List[str] = []
    for transformer in transformers:
        block, block_descriptions = transformer.candidates_batch(stacked_windows)
        candidate_blocks.append(block)
        descriptions.extend(block_descriptions)
    if not candidate_blocks:
        return [(np.empty((0,) + stacked_windows.shape[1:]), []) for _ in windows]
    raw = (
        candidate_blocks[0]
        if len(candidate_blocks) == 1
        else np.concatenate(candidate_blocks, axis=1)
    )

    results: List[Tuple[np.ndarray, List[str]]] = []
    for index in range(len(windows)):
        constraint = constraints[index]
        projected = constraint.project_batch(raw[index], originals[index])
        mask = constraint.satisfied_mask(projected, originals[index])
        kept = projected[mask]
        kept_descriptions = [
            description for description, keep in zip(descriptions, mask) if keep
        ]
        results.append((kept, kept_descriptions))
    return results


#: One explorer-seed entry: an already-scored window plus the transformation
#: path that produced it — ``(window, score, path)``.  See ``seed_entries``.
SeedEntry = Tuple[np.ndarray, float, List[str]]


def _check_batch_alignment(
    originals, constraints, goal_functions, initial_scores, seed_entries=None
) -> None:
    """Validate that every per-window sequence of a batch search lines up."""
    if not (len(originals) == len(constraints) == len(goal_functions)):
        raise ValueError("originals, constraints, and goal_functions must align")
    if initial_scores is not None and len(initial_scores) != len(originals):
        raise ValueError("initial_scores must align with originals")
    if seed_entries is not None and len(seed_entries) != len(originals):
        raise ValueError("seed_entries must align with originals")


class Explorer:
    """Interface for transformation-graph search strategies.

    ``initial_score`` lets the caller hand over an already-computed model
    score for ``original`` (e.g. the eligibility screen of
    :class:`~repro.attacks.uret.EvasionAttack`).  When provided, the explorer
    does not re-query the model for the starting window and its ``queries``
    counter covers only the queries the search itself issued — so reported
    query counts match actual model queries.

    ``use_batched_candidates`` selects how lockstep ``search_batch`` modes
    expand the transformation graph: vectorized ``candidates_batch`` +
    batched constraint passes (the default), or the per-edge reference
    expansion (kept for benchmarking and for pinning parity — see
    ``tests/test_explorer_parity.py``).  Both produce identical searches.
    """

    #: Lockstep search modes use vectorized candidate generation by default;
    #: set False on an instance to force the per-edge reference expansion.
    use_batched_candidates: bool = True

    def _expand_active(
        self,
        windows: Sequence[np.ndarray],
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
    ) -> List[Tuple[np.ndarray, List[str]]]:
        """Expand many windows, honoring :attr:`use_batched_candidates`."""
        if self.use_batched_candidates:
            return _expand_many(windows, originals, transformers, constraints)
        return [
            _edges_as_arrays(_expand(window, original, transformers, constraint))
            for window, original, constraint in zip(windows, originals, constraints)
        ]

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        raise NotImplementedError

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
        seed_entries: Optional[Sequence[Optional[SeedEntry]]] = None,
    ) -> List[ExplorationResult]:
        """Search many windows; one constraint and goal function per window.

        The base implementation loops :meth:`search` and serves as the
        *reference semantics* for batching: every shipped explorer (greedy,
        beam, random) overrides it with a true lockstep mode that issues one
        model query per search depth across all windows, and the parity suite
        (``tests/test_explorer_parity.py``) pins each override to this loop —
        same windows, same scores, same per-window query counts.

        ``seed_entries`` (one optional already-scored ``(window, score,
        path)`` per window) seeds the explorer's *starting beam*: a seed
        that improves on the starting score becomes the initial best — the
        greedy search continues from it, the beam search adds it to the
        initial beam, the random baseline tracks it as the best-so-far —
        without costing any model query (the caller already paid for the
        seed's score; see ``EvasionAttack.attack_batch(seed_beam=True)``).
        Seeding is a lockstep-only feature: the sequential reference loop
        rejects it.
        """
        _check_batch_alignment(
            originals, constraints, goal_functions, initial_scores, seed_entries
        )
        if seed_entries is not None and any(entry is not None for entry in seed_entries):
            raise ValueError(
                "seed_entries requires a lockstep search_batch override; the "
                "sequential reference loop cannot honor pre-scored beam seeds"
            )
        results: List[ExplorationResult] = []
        for index, original in enumerate(originals):
            initial = None if initial_scores is None else float(initial_scores[index])
            results.append(
                self.search(
                    original,
                    transformers,
                    constraints[index],
                    score_function,
                    goal_functions[index],
                    initial_score=initial,
                )
            )
        return results

    def _score_original(
        self,
        original: np.ndarray,
        score_function: ScoreFunction,
        initial_score: Optional[float],
    ) -> Tuple[float, int]:
        """Resolve the starting score and how many queries it cost."""
        if initial_score is not None:
            return float(initial_score), 0
        return float(score_function(original[np.newaxis])[0]), 1

    def _start_lockstep(
        self,
        originals: Sequence[np.ndarray],
        constraints: Sequence[Constraint],
        goal_functions: Sequence[GoalFunction],
        score_function: ScoreFunction,
        initial_scores: Optional[Sequence[float]],
    ) -> Tuple[List[np.ndarray], Optional[np.ndarray], int]:
        """Shared lockstep prologue: alignment check, coercion, start scores.

        Returns ``(originals, start_scores, base_queries)``; ``start_scores``
        is None only for an empty batch.  ``base_queries`` mirrors what each
        sequential :meth:`search` call would have spent on its starting
        window (1 without handed-over scores, 0 with them).
        """
        _check_batch_alignment(originals, constraints, goal_functions, initial_scores)
        originals = [np.asarray(window, dtype=np.float64) for window in originals]
        if not originals:
            return originals, None, 0
        if initial_scores is None:
            return originals, score_function(np.stack(originals)), 1
        return originals, np.asarray(initial_scores, dtype=np.float64), 0

    def _init_best_tracking(
        self,
        originals: List[np.ndarray],
        start_scores: np.ndarray,
        base_queries: int,
        goal_functions: Sequence[GoalFunction],
        seed_entries: Optional[Sequence[Optional[SeedEntry]]] = None,
    ):
        """Per-window (window, score, path) best tracking for lockstep modes.

        Returns ``(queries, results, best, active, finalize)``: windows whose
        goal already holds are finalized as immediate successes, the rest are
        active.  ``finalize(index, success=None)`` freezes a window's current
        best into its :class:`ExplorationResult` (evaluating the goal when
        ``success`` is not forced), exactly like the tail of a sequential
        :meth:`search`.

        A window's ``seed_entries`` entry — an already-scored ``(window,
        score, path)`` — replaces its starting best when the seed's score
        improves on the starting score (strictly, the same rule every
        explorer uses to move its best).  The seed costs no query here: the
        caller scored it.
        """
        n_windows = len(originals)
        queries = [base_queries] * n_windows
        results: List[Optional[ExplorationResult]] = [None] * n_windows
        best: List[Tuple[np.ndarray, float, List[str]]] = [
            (originals[index].copy(), float(start_scores[index]), [])
            for index in range(n_windows)
        ]
        if seed_entries is not None:
            if len(seed_entries) != n_windows:
                raise ValueError("seed_entries must align with originals")
            for index, entry in enumerate(seed_entries):
                if entry is None:
                    continue
                window, score, path = entry
                if float(score) > best[index][1]:
                    best[index] = (
                        np.array(window, dtype=np.float64, copy=True),
                        float(score),
                        list(path),
                    )

        def finalize(index: int, success: Optional[bool] = None) -> None:
            window, score, path = best[index]
            reached = goal_functions[index](window, score) if success is None else success
            results[index] = ExplorationResult(reached, window, score, path, queries[index])

        active: List[int] = []
        for index in range(n_windows):
            window, score, path = best[index]
            if goal_functions[index](window, score):
                finalize(index, success=True)
            else:
                active.append(index)
        return queries, results, best, active, finalize


@dataclass
class GreedyExplorer(Explorer):
    """Follow the single best-scoring edge at every depth."""

    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        current = original.copy()
        current_score, queries = self._score_original(original, score_function, initial_score)
        path: List[str] = []

        if goal_function(current, current_score):
            return ExplorationResult(True, current, current_score, path, queries)

        for _ in range(self.max_depth):
            edges = _expand(current, original, transformers, constraint)
            if not edges:
                break
            batch = np.stack([edge.window for edge in edges])
            scores = score_function(batch)
            queries += len(edges)
            best_index = int(np.argmax(scores))
            best_score = float(scores[best_index])
            if best_score <= current_score:
                break  # no edge improves the adversarial objective
            current = edges[best_index].window
            current_score = best_score
            path.append(edges[best_index].description)
            if goal_function(current, current_score):
                return ExplorationResult(True, current, current_score, path, queries)
        return ExplorationResult(
            goal_function(current, current_score), current, current_score, path, queries
        )

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
        seed_entries: Optional[Sequence[Optional[SeedEntry]]] = None,
    ) -> List[ExplorationResult]:
        """Lockstep greedy search: all still-active windows advance together.

        Each search depth issues **one** model query covering every candidate
        edge of every active window, instead of one query per window.  Window
        decisions (edge choice, stopping, per-window query accounting) are
        identical to running :meth:`search` per window; only the batching of
        model calls differs.  A window's ``seed_entries`` entry becomes its
        starting best when it improves on the start score — the greedy walk
        then expands from the seed endpoint instead of the original window.
        """
        originals, start_scores, base_queries = self._start_lockstep(
            originals, constraints, goal_functions, score_function, initial_scores
        )
        if not originals:
            return []
        # Greedy's current window is always its best: it only moves on strict
        # improvement, so the shared best tracking is the whole search state.
        queries, results, best, active, finalize = self._init_best_tracking(
            originals, start_scores, base_queries, goal_functions, seed_entries
        )

        for _ in range(self.max_depth):
            if not active:
                break
            expansions = self._expand_active(
                [best[index][0] for index in active],
                [originals[index] for index in active],
                transformers,
                [constraints[index] for index in active],
            )
            edge_lists = {}
            expandable: List[int] = []
            for index, (candidates, descriptions) in zip(active, expansions):
                if len(candidates):
                    edge_lists[index] = (candidates, descriptions)
                    expandable.append(index)
                else:
                    finalize(index)
            if not expandable:
                active = []
                break

            # ONE model query for every candidate of every active window.
            batch = np.concatenate([edge_lists[index][0] for index in expandable], axis=0)
            batch_scores = score_function(batch)

            offset = 0
            still_active: List[int] = []
            for index in expandable:
                candidates, descriptions = edge_lists[index]
                scores = batch_scores[offset : offset + len(candidates)]
                offset += len(candidates)
                queries[index] += len(candidates)
                best_index = int(np.argmax(scores))
                best_score = float(scores[best_index])
                if best_score <= best[index][1]:
                    finalize(index)
                    continue
                best[index] = (
                    candidates[best_index],
                    best_score,
                    best[index][2] + [descriptions[best_index]],
                )
                if goal_functions[index](best[index][0], best[index][1]):
                    finalize(index, success=True)
                else:
                    still_active.append(index)
            active = still_active

        for index in active:
            finalize(index)
        return results  # type: ignore[return-value]


@dataclass
class BeamExplorer(Explorer):
    """Keep the ``beam_width`` best windows at every depth."""

    beam_width: int = 3
    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        start_score, queries = self._score_original(original, score_function, initial_score)
        if goal_function(original, start_score):
            return ExplorationResult(True, original.copy(), start_score, [], queries)

        beam: List[Tuple[np.ndarray, float, List[str]]] = [(original.copy(), start_score, [])]
        best_window, best_score, best_path = original.copy(), start_score, []

        for _ in range(self.max_depth):
            candidates: List[Tuple[np.ndarray, float, List[str]]] = []
            for window, _, path in beam:
                edges = _expand(window, original, transformers, constraint)
                if not edges:
                    continue
                batch = np.stack([edge.window for edge in edges])
                scores = score_function(batch)
                queries += len(edges)
                for edge, score in zip(edges, scores):
                    candidates.append((edge.window, float(score), path + [edge.description]))
            if not candidates:
                break
            candidates.sort(key=lambda item: item[1], reverse=True)
            beam = candidates[: self.beam_width]
            if beam[0][1] > best_score:
                best_window, best_score, best_path = beam[0]
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
        seed_entries: Optional[Sequence[Optional[SeedEntry]]] = None,
    ) -> List[ExplorationResult]:
        """Lockstep beam search: one model query per depth for the union of beams.

        Every still-active window's beam items are expanded together and all
        their candidates are scored in a single model call per depth.  Beam
        updates (candidate ordering, stable sort, best tracking, per-window
        query accounting) replicate :meth:`search` exactly.  A window's
        ``seed_entries`` entry joins its *starting beam* (score-ordered,
        original first on ties, truncated to ``beam_width``), so depth-1
        expansion explores the seed endpoint's neighborhood alongside the
        original window's.
        """
        originals, start_scores, base_queries = self._start_lockstep(
            originals, constraints, goal_functions, score_function, initial_scores
        )
        if not originals:
            return []
        queries, results, best, active, finalize = self._init_best_tracking(
            originals, start_scores, base_queries, goal_functions, seed_entries
        )
        # Per active window: (window, score, path) triples, exactly as in
        # `search` — plus the optional pre-scored seed in the starting beam.
        beams = {}
        for index in active:
            entries = [(originals[index].copy(), float(start_scores[index]), [])]
            seed = None if seed_entries is None else seed_entries[index]
            if seed is not None:
                entries.append(
                    (
                        np.array(seed[0], dtype=np.float64, copy=True),
                        float(seed[1]),
                        list(seed[2]),
                    )
                )
                entries.sort(key=lambda item: item[1], reverse=True)
                entries = entries[: self.beam_width]
            beams[index] = entries

        for _ in range(self.max_depth):
            if not active:
                break
            # Flatten every beam item of every active window for one expansion.
            entry_windows: List[np.ndarray] = []
            entry_originals: List[np.ndarray] = []
            entry_constraints: List[Constraint] = []
            entry_owners: List[int] = []
            entry_paths: List[List[str]] = []
            for index in active:
                for window, _, path in beams[index]:
                    entry_windows.append(window)
                    entry_originals.append(originals[index])
                    entry_constraints.append(constraints[index])
                    entry_owners.append(index)
                    entry_paths.append(path)
            expansions = self._expand_active(
                entry_windows, entry_originals, transformers, entry_constraints
            )
            chunks = {index: [] for index in active}
            for (candidates, descriptions), owner, path in zip(
                expansions, entry_owners, entry_paths
            ):
                if len(candidates):
                    chunks[owner].append((candidates, descriptions, path))

            scorable = [index for index in active if chunks[index]]
            if not scorable:
                for index in active:
                    finalize(index)
                active = []
                break

            # ONE model query for every candidate of every beam of every window.
            batch = np.concatenate(
                [candidates for index in scorable for candidates, _, _ in chunks[index]],
                axis=0,
            )
            batch_scores = score_function(batch)

            offset = 0
            still_active: List[int] = []
            for index in active:
                if not chunks[index]:
                    # No admissible edge anywhere in the beam: `search` breaks.
                    finalize(index)
                    continue
                candidates_with_scores: List[Tuple[np.ndarray, float, List[str]]] = []
                for candidates, descriptions, path in chunks[index]:
                    count = len(candidates)
                    scores = batch_scores[offset : offset + count]
                    offset += count
                    queries[index] += count
                    for edge_index in range(count):
                        candidates_with_scores.append(
                            (
                                candidates[edge_index],
                                float(scores[edge_index]),
                                path + [descriptions[edge_index]],
                            )
                        )
                candidates_with_scores.sort(key=lambda item: item[1], reverse=True)
                beams[index] = candidates_with_scores[: self.beam_width]
                if beams[index][0][1] > best[index][1]:
                    best[index] = beams[index][0]
                if goal_functions[index](best[index][0], best[index][1]):
                    finalize(index, success=True)
                else:
                    still_active.append(index)
            active = still_active

        for index in active:
            finalize(index)
        return results  # type: ignore[return-value]


@dataclass
class RandomExplorer(Explorer):
    """Uniform random walks through the transformation graph (baseline).

    The explorer keeps one persistent random stream across ``search`` calls,
    so consecutive windows draw *different* walks (a fixed per-search seed
    would correlate the baseline).  Each search consumes exactly **one** draw
    from that persistent stream — a seed for a per-search child stream that
    drives every walk of that search.  Because :meth:`search_batch` draws the
    same one-seed-per-window sequence (in window order) before running its
    lockstep rounds, batched campaigns consume the persistent RNG in exactly
    the same order as sequential ``search`` calls: for a fixed ``seed`` the
    two modes produce identical walks, windows, scores, and query counts,
    regardless of how windows are batched or when individual searches stop.

    ``seed`` accepts an integer for a reproducible stream or a shared
    :class:`~repro.utils.rng.RandomState` to interleave with other components.
    """

    max_depth: int = 3
    n_walks: int = 10
    seed: SeedLike = 0

    def __post_init__(self):
        self._rng = as_random_state(self.seed)

    def _spawn_walk_rng(self) -> RandomState:
        """One persistent-stream draw → an independent per-search walk stream."""
        return RandomState(int(self._rng.integers(0, 2**63 - 1)))

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        rng = self._spawn_walk_rng()
        original = np.asarray(original, dtype=np.float64)
        best_window = original.copy()
        best_score, queries = self._score_original(original, score_function, initial_score)
        best_path: List[str] = []
        if goal_function(best_window, best_score):
            return ExplorationResult(True, best_window, best_score, best_path, queries)

        for _ in range(self.n_walks):
            current = original.copy()
            path: List[str] = []
            for _ in range(self.max_depth):
                edges = _expand(current, original, transformers, constraint)
                if not edges:
                    break
                edge = edges[int(rng.integers(0, len(edges)))]
                current = edge.window
                path.append(edge.description)
            score = float(score_function(current[np.newaxis])[0])
            queries += 1
            if score > best_score:
                best_window, best_score, best_path = current, score, path
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
        seed_entries: Optional[Sequence[Optional[SeedEntry]]] = None,
    ) -> List[ExplorationResult]:
        """Lockstep random walks: one model query per walk round.

        Walk proposals are generated round-by-round — round ``r`` advances
        walk ``r`` of every still-active window step by step through one
        vectorized expansion per depth, then scores every round endpoint in a
        single model call.  Each window draws from its own per-search child
        stream (seeded in window order from the persistent RNG, exactly like
        sequential :meth:`search` calls), so walks, stopping decisions, and
        query counts are identical to the per-window loop.  A window's
        ``seed_entries`` entry seeds its best-so-far tracking (walks still
        restart from the original window, as in :meth:`search`).
        """
        originals, start_scores, base_queries = self._start_lockstep(
            originals, constraints, goal_functions, score_function, initial_scores
        )
        if not originals:
            return []

        # Window-major seed draws: identical persistent-RNG consumption to
        # n sequential `search` calls (which draw before any goal check).
        walk_rngs = [self._spawn_walk_rng() for _ in originals]

        queries, results, best, active, finalize = self._init_best_tracking(
            originals, start_scores, base_queries, goal_functions, seed_entries
        )

        for _ in range(self.n_walks):
            if not active:
                break
            current = {index: originals[index].copy() for index in active}
            walk_paths = {index: [] for index in active}
            walking = list(active)
            for _ in range(self.max_depth):
                if not walking:
                    break
                expansions = self._expand_active(
                    [current[index] for index in walking],
                    [originals[index] for index in walking],
                    transformers,
                    [constraints[index] for index in walking],
                )
                still_walking: List[int] = []
                for index, (candidates, descriptions) in zip(walking, expansions):
                    if not len(candidates):
                        continue  # this window's walk ends early
                    choice = int(walk_rngs[index].integers(0, len(candidates)))
                    current[index] = candidates[choice]
                    walk_paths[index].append(descriptions[choice])
                    still_walking.append(index)
                walking = still_walking

            # ONE model query for every round endpoint.
            endpoints = np.stack([current[index] for index in active])
            round_scores = score_function(endpoints)

            still_active: List[int] = []
            for index, score in zip(active, round_scores):
                queries[index] += 1
                score = float(score)
                if score > best[index][1]:
                    best[index] = (current[index], score, walk_paths[index])
                if goal_functions[index](best[index][0], best[index][1]):
                    finalize(index, success=True)
                else:
                    still_active.append(index)
            active = still_active

        for index in active:
            finalize(index)
        return results  # type: ignore[return-value]
