"""Search strategies over the transformation graph (URET "explorers")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.constraints import Constraint
from repro.attacks.transformers import TransformationEdge, Transformer
from repro.utils.rng import SeedLike, as_random_state

#: Scores a batch of candidate windows; larger is better for the adversary.
ScoreFunction = Callable[[np.ndarray], np.ndarray]

#: Decides whether a (window, score) pair reaches the adversarial goal.
GoalFunction = Callable[[np.ndarray, float], bool]


@dataclass
class ExplorationResult:
    """Outcome of an explorer search."""

    success: bool
    window: np.ndarray
    score: float
    path: List[str] = field(default_factory=list)
    queries: int = 0


def _expand(
    window: np.ndarray,
    original: np.ndarray,
    transformers: Sequence[Transformer],
    constraint: Constraint,
) -> List[TransformationEdge]:
    """Generate all admissible candidate edges from ``window``."""
    edges: List[TransformationEdge] = []
    for transformer in transformers:
        for edge in transformer.candidates(window):
            projected = constraint.project(edge.window, original)
            if constraint.is_satisfied(projected, original):
                edges.append(TransformationEdge(projected, edge.description))
    return edges


def _check_batch_alignment(originals, constraints, goal_functions, initial_scores) -> None:
    """Validate that every per-window sequence of a batch search lines up."""
    if not (len(originals) == len(constraints) == len(goal_functions)):
        raise ValueError("originals, constraints, and goal_functions must align")
    if initial_scores is not None and len(initial_scores) != len(originals):
        raise ValueError("initial_scores must align with originals")


class Explorer:
    """Interface for transformation-graph search strategies.

    ``initial_score`` lets the caller hand over an already-computed model
    score for ``original`` (e.g. the eligibility screen of
    :class:`~repro.attacks.uret.EvasionAttack`).  When provided, the explorer
    does not re-query the model for the starting window and its ``queries``
    counter covers only the queries the search itself issued — so reported
    query counts match actual model queries.
    """

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        raise NotImplementedError

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
    ) -> List[ExplorationResult]:
        """Search many windows; one constraint and goal function per window.

        The base implementation simply loops :meth:`search`; explorers with a
        true lockstep mode (see :class:`GreedyExplorer`) override it to batch
        model queries across windows.
        """
        _check_batch_alignment(originals, constraints, goal_functions, initial_scores)
        results: List[ExplorationResult] = []
        for index, original in enumerate(originals):
            initial = None if initial_scores is None else float(initial_scores[index])
            results.append(
                self.search(
                    original,
                    transformers,
                    constraints[index],
                    score_function,
                    goal_functions[index],
                    initial_score=initial,
                )
            )
        return results

    def _score_original(
        self,
        original: np.ndarray,
        score_function: ScoreFunction,
        initial_score: Optional[float],
    ) -> Tuple[float, int]:
        """Resolve the starting score and how many queries it cost."""
        if initial_score is not None:
            return float(initial_score), 0
        return float(score_function(original[np.newaxis])[0]), 1


@dataclass
class GreedyExplorer(Explorer):
    """Follow the single best-scoring edge at every depth."""

    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        current = original.copy()
        current_score, queries = self._score_original(original, score_function, initial_score)
        path: List[str] = []

        if goal_function(current, current_score):
            return ExplorationResult(True, current, current_score, path, queries)

        for _ in range(self.max_depth):
            edges = _expand(current, original, transformers, constraint)
            if not edges:
                break
            batch = np.stack([edge.window for edge in edges])
            scores = score_function(batch)
            queries += len(edges)
            best_index = int(np.argmax(scores))
            best_score = float(scores[best_index])
            if best_score <= current_score:
                break  # no edge improves the adversarial objective
            current = edges[best_index].window
            current_score = best_score
            path.append(edges[best_index].description)
            if goal_function(current, current_score):
                return ExplorationResult(True, current, current_score, path, queries)
        return ExplorationResult(
            goal_function(current, current_score), current, current_score, path, queries
        )

    def search_batch(
        self,
        originals: Sequence[np.ndarray],
        transformers: Sequence[Transformer],
        constraints: Sequence[Constraint],
        score_function: ScoreFunction,
        goal_functions: Sequence[GoalFunction],
        initial_scores: Optional[Sequence[float]] = None,
    ) -> List[ExplorationResult]:
        """Lockstep greedy search: all still-active windows advance together.

        Each search depth issues **one** model query covering every candidate
        edge of every active window, instead of one query per window.  Window
        decisions (edge choice, stopping, per-window query accounting) are
        identical to running :meth:`search` per window; only the batching of
        model calls differs.
        """
        _check_batch_alignment(originals, constraints, goal_functions, initial_scores)
        originals = [np.asarray(window, dtype=np.float64) for window in originals]
        n_windows = len(originals)
        if n_windows == 0:
            return []

        if initial_scores is None:
            start_scores = score_function(np.stack(originals))
            base_queries = 1
        else:
            start_scores = np.asarray(initial_scores, dtype=np.float64)
            base_queries = 0

        current = [window.copy() for window in originals]
        current_score = [float(score) for score in start_scores]
        queries = [base_queries] * n_windows
        paths: List[List[str]] = [[] for _ in range(n_windows)]
        results: List[Optional[ExplorationResult]] = [None] * n_windows

        def finalize(index: int, success: Optional[bool] = None) -> None:
            reached = (
                goal_functions[index](current[index], current_score[index])
                if success is None
                else success
            )
            results[index] = ExplorationResult(
                reached, current[index], current_score[index], paths[index], queries[index]
            )

        active: List[int] = []
        for index in range(n_windows):
            if goal_functions[index](current[index], current_score[index]):
                finalize(index, success=True)
            else:
                active.append(index)

        for _ in range(self.max_depth):
            if not active:
                break
            edge_lists = {}
            expandable: List[int] = []
            for index in active:
                edges = _expand(current[index], originals[index], transformers, constraints[index])
                if edges:
                    edge_lists[index] = edges
                    expandable.append(index)
                else:
                    finalize(index)
            if not expandable:
                active = []
                break

            # ONE model query for every candidate of every active window.
            batch = np.concatenate(
                [np.stack([edge.window for edge in edge_lists[index]]) for index in expandable],
                axis=0,
            )
            batch_scores = score_function(batch)

            offset = 0
            still_active: List[int] = []
            for index in expandable:
                edges = edge_lists[index]
                scores = batch_scores[offset : offset + len(edges)]
                offset += len(edges)
                queries[index] += len(edges)
                best_index = int(np.argmax(scores))
                best_score = float(scores[best_index])
                if best_score <= current_score[index]:
                    finalize(index)
                    continue
                current[index] = edges[best_index].window
                current_score[index] = best_score
                paths[index].append(edges[best_index].description)
                if goal_functions[index](current[index], current_score[index]):
                    finalize(index, success=True)
                else:
                    still_active.append(index)
            active = still_active

        for index in active:
            finalize(index)
        return results  # type: ignore[return-value]


@dataclass
class BeamExplorer(Explorer):
    """Keep the ``beam_width`` best windows at every depth."""

    beam_width: int = 3
    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        start_score, queries = self._score_original(original, score_function, initial_score)
        if goal_function(original, start_score):
            return ExplorationResult(True, original.copy(), start_score, [], queries)

        beam: List[Tuple[np.ndarray, float, List[str]]] = [(original.copy(), start_score, [])]
        best_window, best_score, best_path = original.copy(), start_score, []

        for _ in range(self.max_depth):
            candidates: List[Tuple[np.ndarray, float, List[str]]] = []
            for window, _, path in beam:
                edges = _expand(window, original, transformers, constraint)
                if not edges:
                    continue
                batch = np.stack([edge.window for edge in edges])
                scores = score_function(batch)
                queries += len(edges)
                for edge, score in zip(edges, scores):
                    candidates.append((edge.window, float(score), path + [edge.description]))
            if not candidates:
                break
            candidates.sort(key=lambda item: item[1], reverse=True)
            beam = candidates[: self.beam_width]
            if beam[0][1] > best_score:
                best_window, best_score, best_path = beam[0]
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )


@dataclass
class RandomExplorer(Explorer):
    """Uniform random walks through the transformation graph (baseline).

    The explorer keeps one persistent random stream across ``search`` calls:
    consecutive windows draw *different* walks (previously a fixed per-search
    seed made every window take identical walks, correlating the baseline).
    ``seed`` accepts an integer for a reproducible stream or a shared
    :class:`~repro.utils.rng.RandomState` to interleave with other components.
    """

    max_depth: int = 3
    n_walks: int = 10
    seed: SeedLike = 0

    def __post_init__(self):
        self._rng = as_random_state(self.seed)

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
        initial_score: Optional[float] = None,
    ) -> ExplorationResult:
        rng = self._rng
        original = np.asarray(original, dtype=np.float64)
        best_window = original.copy()
        best_score, queries = self._score_original(original, score_function, initial_score)
        best_path: List[str] = []
        if goal_function(best_window, best_score):
            return ExplorationResult(True, best_window, best_score, best_path, queries)

        for _ in range(self.n_walks):
            current = original.copy()
            path: List[str] = []
            for _ in range(self.max_depth):
                edges = _expand(current, original, transformers, constraint)
                if not edges:
                    break
                edge = edges[int(rng.integers(0, len(edges)))]
                current = edge.window
                path.append(edge.description)
            score = float(score_function(current[np.newaxis])[0])
            queries += 1
            if score > best_score:
                best_window, best_score, best_path = current, score, path
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )
