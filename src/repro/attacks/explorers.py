"""Search strategies over the transformation graph (URET "explorers")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.constraints import Constraint
from repro.attacks.transformers import TransformationEdge, Transformer
from repro.utils.rng import as_random_state

#: Scores a batch of candidate windows; larger is better for the adversary.
ScoreFunction = Callable[[np.ndarray], np.ndarray]

#: Decides whether a (window, score) pair reaches the adversarial goal.
GoalFunction = Callable[[np.ndarray, float], bool]


@dataclass
class ExplorationResult:
    """Outcome of an explorer search."""

    success: bool
    window: np.ndarray
    score: float
    path: List[str] = field(default_factory=list)
    queries: int = 0


def _expand(
    window: np.ndarray,
    original: np.ndarray,
    transformers: Sequence[Transformer],
    constraint: Constraint,
) -> List[TransformationEdge]:
    """Generate all admissible candidate edges from ``window``."""
    edges: List[TransformationEdge] = []
    for transformer in transformers:
        for edge in transformer.candidates(window):
            projected = constraint.project(edge.window, original)
            if constraint.is_satisfied(projected, original):
                edges.append(TransformationEdge(projected, edge.description))
    return edges


class Explorer:
    """Interface for transformation-graph search strategies."""

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
    ) -> ExplorationResult:
        raise NotImplementedError


@dataclass
class GreedyExplorer(Explorer):
    """Follow the single best-scoring edge at every depth."""

    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        current = original.copy()
        current_score = float(score_function(current[np.newaxis])[0])
        queries = 1
        path: List[str] = []

        if goal_function(current, current_score):
            return ExplorationResult(True, current, current_score, path, queries)

        for _ in range(self.max_depth):
            edges = _expand(current, original, transformers, constraint)
            if not edges:
                break
            batch = np.stack([edge.window for edge in edges])
            scores = score_function(batch)
            queries += len(edges)
            best_index = int(np.argmax(scores))
            best_score = float(scores[best_index])
            if best_score <= current_score:
                break  # no edge improves the adversarial objective
            current = edges[best_index].window
            current_score = best_score
            path.append(edges[best_index].description)
            if goal_function(current, current_score):
                return ExplorationResult(True, current, current_score, path, queries)
        return ExplorationResult(
            goal_function(current, current_score), current, current_score, path, queries
        )


@dataclass
class BeamExplorer(Explorer):
    """Keep the ``beam_width`` best windows at every depth."""

    beam_width: int = 3
    max_depth: int = 3

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
    ) -> ExplorationResult:
        original = np.asarray(original, dtype=np.float64)
        start_score = float(score_function(original[np.newaxis])[0])
        queries = 1
        if goal_function(original, start_score):
            return ExplorationResult(True, original.copy(), start_score, [], queries)

        beam: List[Tuple[np.ndarray, float, List[str]]] = [(original.copy(), start_score, [])]
        best_window, best_score, best_path = original.copy(), start_score, []

        for _ in range(self.max_depth):
            candidates: List[Tuple[np.ndarray, float, List[str]]] = []
            for window, _, path in beam:
                edges = _expand(window, original, transformers, constraint)
                if not edges:
                    continue
                batch = np.stack([edge.window for edge in edges])
                scores = score_function(batch)
                queries += len(edges)
                for edge, score in zip(edges, scores):
                    candidates.append((edge.window, float(score), path + [edge.description]))
            if not candidates:
                break
            candidates.sort(key=lambda item: item[1], reverse=True)
            beam = candidates[: self.beam_width]
            if beam[0][1] > best_score:
                best_window, best_score, best_path = beam[0]
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )


@dataclass
class RandomExplorer(Explorer):
    """Uniform random walks through the transformation graph (baseline)."""

    max_depth: int = 3
    n_walks: int = 10
    seed: int = 0

    def search(
        self,
        original: np.ndarray,
        transformers: Sequence[Transformer],
        constraint: Constraint,
        score_function: ScoreFunction,
        goal_function: GoalFunction,
    ) -> ExplorationResult:
        rng = as_random_state(self.seed)
        original = np.asarray(original, dtype=np.float64)
        best_window = original.copy()
        best_score = float(score_function(original[np.newaxis])[0])
        best_path: List[str] = []
        queries = 1
        if goal_function(best_window, best_score):
            return ExplorationResult(True, best_window, best_score, best_path, queries)

        for _ in range(self.n_walks):
            current = original.copy()
            path: List[str] = []
            for _ in range(self.max_depth):
                edges = _expand(current, original, transformers, constraint)
                if not edges:
                    break
                edge = edges[int(rng.integers(0, len(edges)))]
                current = edge.window
                path.append(edge.description)
            score = float(score_function(current[np.newaxis])[0])
            queries += 1
            if score > best_score:
                best_window, best_score, best_path = current, score, path
            if goal_function(best_window, best_score):
                return ExplorationResult(True, best_window, best_score, best_path, queries)
        return ExplorationResult(
            goal_function(best_window, best_score), best_window, best_score, best_path, queries
        )
