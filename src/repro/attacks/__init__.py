"""URET-style evasion attack framework: transformers, constraints, explorers."""

from repro.attacks.constraints import (
    CompositeConstraint,
    Constraint,
    GlucoseRangeConstraint,
    MaxModifiedSamplesConstraint,
    constraint_for_scenario,
)
from repro.attacks.transformers import (
    RampTransformer,
    ScaleTransformer,
    SuffixLevelTransformer,
    SuffixOffsetTransformer,
    TransformationEdge,
    Transformer,
    default_transformers,
)
from repro.attacks.explorers import (
    BeamExplorer,
    ExplorationResult,
    Explorer,
    GreedyExplorer,
    RandomExplorer,
)
from repro.attacks.uret import AttackResult, EvasionAttack, replay_transformation_path
from repro.attacks.campaign import (
    AttackCampaign,
    CampaignResult,
    CampaignSummary,
    WindowAttackRecord,
)

__all__ = [
    "CompositeConstraint",
    "Constraint",
    "GlucoseRangeConstraint",
    "MaxModifiedSamplesConstraint",
    "constraint_for_scenario",
    "RampTransformer",
    "ScaleTransformer",
    "SuffixLevelTransformer",
    "SuffixOffsetTransformer",
    "TransformationEdge",
    "Transformer",
    "default_transformers",
    "BeamExplorer",
    "ExplorationResult",
    "Explorer",
    "GreedyExplorer",
    "RandomExplorer",
    "AttackResult",
    "EvasionAttack",
    "replay_transformation_path",
    "AttackCampaign",
    "CampaignResult",
    "CampaignSummary",
    "WindowAttackRecord",
]
