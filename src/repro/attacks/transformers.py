"""Input transformations available to the evasion adversary.

URET models evasion as a search over a graph of input transformations.  Each
transformer proposes candidate edges (modified copies of the current window);
the explorer picks which edge to follow based on the target model's response.

All transformers here only touch the CGM channel of the feature window, in
line with the paper's threat model (the adversary compromises the Bluetooth
link between the CGM sensor and the smartphone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN


@dataclass(frozen=True)
class TransformationEdge:
    """One candidate transformation: the resulting window plus a description."""

    window: np.ndarray
    description: str

    def __post_init__(self):
        object.__setattr__(self, "window", np.asarray(self.window, dtype=np.float64))


class Transformer:
    """Interface: propose candidate transformed windows."""

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        raise NotImplementedError


@dataclass
class SuffixLevelTransformer(Transformer):
    """Overwrite the last ``k`` CGM samples with a constant plausible level.

    This is the workhorse transformation: the adversary replaces the most
    recent glucose readings (the ones that dominate the forecaster's output)
    with a chosen hyperglycemic level.
    """

    levels: Sequence[float] = (185.0, 220.0, 260.0, 320.0, 400.0)
    suffix_lengths: Sequence[int] = (2, 4, 6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for level in self.levels:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] = level
                edges.append(
                    TransformationEdge(candidate, f"set_last_{length}_to_{level:g}")
                )
        return edges


@dataclass
class SuffixOffsetTransformer(Transformer):
    """Add a constant offset to the last ``k`` CGM samples."""

    offsets: Sequence[float] = (20.0, 40.0, 80.0, 120.0)
    suffix_lengths: Sequence[int] = (3, 6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for offset in self.offsets:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] += offset
                edges.append(
                    TransformationEdge(candidate, f"offset_last_{length}_by_{offset:g}")
                )
        return edges


@dataclass
class RampTransformer(Transformer):
    """Add a linearly increasing ramp to the CGM suffix.

    A ramp mimics a rapidly rising glucose trend, which forecasting models
    extrapolate upward; it is often stealthier than a flat overwrite because
    the early samples stay close to the benign trace.
    """

    final_offsets: Sequence[float] = (60.0, 120.0, 200.0)
    suffix_lengths: Sequence[int] = (6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            ramp_base = np.linspace(0.0, 1.0, num=length)
            for final_offset in self.final_offsets:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] += ramp_base * final_offset
                edges.append(
                    TransformationEdge(candidate, f"ramp_last_{length}_to_{final_offset:g}")
                )
        return edges


@dataclass
class ScaleTransformer(Transformer):
    """Multiply the CGM suffix by a factor greater than one."""

    factors: Sequence[float] = (1.2, 1.5, 2.0)
    suffix_lengths: Sequence[int] = (6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for factor in self.factors:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] *= factor
                edges.append(
                    TransformationEdge(candidate, f"scale_last_{length}_by_{factor:g}")
                )
        return edges


def default_transformers() -> List[Transformer]:
    """The default transformation set used by the attack campaigns."""
    return [
        SuffixLevelTransformer(),
        SuffixOffsetTransformer(),
        RampTransformer(),
        ScaleTransformer(),
    ]
