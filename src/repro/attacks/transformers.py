"""Input transformations available to the evasion adversary.

URET models evasion as a search over a graph of input transformations.  Each
transformer proposes candidate edges (modified copies of the current window);
the explorer picks which edge to follow based on the target model's response.

All transformers here only touch the CGM channel of the feature window, in
line with the paper's threat model (the adversary compromises the Bluetooth
link between the CGM sensor and the smartphone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.data.cohort import CGM_COLUMN


@dataclass(frozen=True)
class TransformationEdge:
    """One candidate transformation: the resulting window plus a description."""

    window: np.ndarray
    description: str

    def __post_init__(self):
        object.__setattr__(self, "window", np.asarray(self.window, dtype=np.float64))


class Transformer:
    """Interface: propose candidate transformed windows.

    Implementations must define :meth:`candidates`.  The batched attack engine
    additionally calls :meth:`candidates_batch`, whose default stacks per-window
    :meth:`candidates` output; transformers on the hot path override it with a
    fully vectorized edit (see :class:`SuffixLevelTransformer` and friends).

    Contract for batching: the *edge set* (count, order, and descriptions) may
    depend only on the window's shape, never on its values, so every window of
    an equally-shaped batch yields the same edges.  All built-in transformers
    satisfy this; ``tests/test_property_based.py`` pins batch output to the
    per-window reference for each of them.
    """

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        raise NotImplementedError

    def candidates_batch(self, windows: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        """Vectorized candidates for a stack of equally-shaped windows.

        Parameters
        ----------
        windows:
            Array ``(n_windows, history, n_features)``.

        Returns
        -------
        candidates:
            Array ``(n_windows, n_edges, history, n_features)`` where
            ``candidates[i, j]`` equals ``self.candidates(windows[i])[j].window``.
        descriptions:
            The ``n_edges`` edge descriptions (shared across the batch).
        """
        windows = np.asarray(windows, dtype=np.float64)
        per_window = [self.candidates(window) for window in windows]
        if not per_window:
            raise ValueError("candidates_batch requires at least one window")
        descriptions = [edge.description for edge in per_window[0]]
        for edges in per_window[1:]:
            if [edge.description for edge in edges] != descriptions:
                raise ValueError(
                    f"{type(self).__name__} emits window-dependent edge sets; "
                    "candidates_batch requires a fixed edge set per window shape"
                )
        if not descriptions:
            # An empty edge set for this window shape is contract-compliant
            # (the per-edge reference path simply contributes no edges).
            return np.empty((len(windows), 0) + windows.shape[1:]), []
        stacked = np.stack(
            [np.stack([edge.window for edge in edges]) for edges in per_window]
        )
        return stacked, descriptions

    def _tile_for_edits(self, windows: np.ndarray, n_edges: int) -> np.ndarray:
        """Replicate each window once per edge: ``(n, E, history, features)``."""
        windows = np.asarray(windows, dtype=np.float64)
        return np.repeat(windows[:, np.newaxis], n_edges, axis=1)


@dataclass
class SuffixLevelTransformer(Transformer):
    """Overwrite the last ``k`` CGM samples with a constant plausible level.

    This is the workhorse transformation: the adversary replaces the most
    recent glucose readings (the ones that dominate the forecaster's output)
    with a chosen hyperglycemic level.
    """

    levels: Sequence[float] = (185.0, 220.0, 260.0, 320.0, 400.0)
    suffix_lengths: Sequence[int] = (2, 4, 6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for level in self.levels:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] = level
                edges.append(
                    TransformationEdge(candidate, f"set_last_{length}_to_{level:g}")
                )
        return edges

    def candidates_batch(self, windows: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        windows = np.asarray(windows, dtype=np.float64)
        history = windows.shape[1]
        edits = [
            (min(suffix, history), level)
            for suffix in self.suffix_lengths
            for level in self.levels
        ]
        stacked = self._tile_for_edits(windows, len(edits))
        for index, (length, level) in enumerate(edits):
            stacked[:, index, history - length :, self.feature_column] = level
        descriptions = [f"set_last_{length}_to_{level:g}" for length, level in edits]
        return stacked, descriptions


@dataclass
class SuffixOffsetTransformer(Transformer):
    """Add a constant offset to the last ``k`` CGM samples."""

    offsets: Sequence[float] = (20.0, 40.0, 80.0, 120.0)
    suffix_lengths: Sequence[int] = (3, 6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for offset in self.offsets:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] += offset
                edges.append(
                    TransformationEdge(candidate, f"offset_last_{length}_by_{offset:g}")
                )
        return edges

    def candidates_batch(self, windows: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        windows = np.asarray(windows, dtype=np.float64)
        history = windows.shape[1]
        edits = [
            (min(suffix, history), offset)
            for suffix in self.suffix_lengths
            for offset in self.offsets
        ]
        stacked = self._tile_for_edits(windows, len(edits))
        for index, (length, offset) in enumerate(edits):
            stacked[:, index, history - length :, self.feature_column] += offset
        descriptions = [f"offset_last_{length}_by_{offset:g}" for length, offset in edits]
        return stacked, descriptions


@dataclass
class RampTransformer(Transformer):
    """Add a linearly increasing ramp to the CGM suffix.

    A ramp mimics a rapidly rising glucose trend, which forecasting models
    extrapolate upward; it is often stealthier than a flat overwrite because
    the early samples stay close to the benign trace.
    """

    final_offsets: Sequence[float] = (60.0, 120.0, 200.0)
    suffix_lengths: Sequence[int] = (6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            ramp_base = np.linspace(0.0, 1.0, num=length)
            for final_offset in self.final_offsets:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] += ramp_base * final_offset
                edges.append(
                    TransformationEdge(candidate, f"ramp_last_{length}_to_{final_offset:g}")
                )
        return edges

    def candidates_batch(self, windows: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        windows = np.asarray(windows, dtype=np.float64)
        history = windows.shape[1]
        edits = [
            (min(suffix, history), final_offset)
            for suffix in self.suffix_lengths
            for final_offset in self.final_offsets
        ]
        stacked = self._tile_for_edits(windows, len(edits))
        for index, (length, final_offset) in enumerate(edits):
            ramp = np.linspace(0.0, 1.0, num=length) * final_offset
            stacked[:, index, history - length :, self.feature_column] += ramp
        descriptions = [
            f"ramp_last_{length}_to_{final_offset:g}" for length, final_offset in edits
        ]
        return stacked, descriptions


@dataclass
class ScaleTransformer(Transformer):
    """Multiply the CGM suffix by a factor greater than one."""

    factors: Sequence[float] = (1.2, 1.5, 2.0)
    suffix_lengths: Sequence[int] = (6, 12)
    feature_column: int = CGM_COLUMN

    def candidates(self, window: np.ndarray) -> List[TransformationEdge]:
        window = np.asarray(window, dtype=np.float64)
        edges: List[TransformationEdge] = []
        history = window.shape[0]
        for suffix in self.suffix_lengths:
            length = min(suffix, history)
            for factor in self.factors:
                candidate = window.copy()
                candidate[history - length :, self.feature_column] *= factor
                edges.append(
                    TransformationEdge(candidate, f"scale_last_{length}_by_{factor:g}")
                )
        return edges

    def candidates_batch(self, windows: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        windows = np.asarray(windows, dtype=np.float64)
        history = windows.shape[1]
        edits = [
            (min(suffix, history), factor)
            for suffix in self.suffix_lengths
            for factor in self.factors
        ]
        stacked = self._tile_for_edits(windows, len(edits))
        for index, (length, factor) in enumerate(edits):
            stacked[:, index, history - length :, self.feature_column] *= factor
        descriptions = [f"scale_last_{length}_by_{factor:g}" for length, factor in edits]
        return stacked, descriptions


def default_transformers() -> List[Transformer]:
    """The default transformation set used by the attack campaigns."""
    return [
        SuffixLevelTransformer(),
        SuffixOffsetTransformer(),
        RampTransformer(),
        ScaleTransformer(),
    ]
