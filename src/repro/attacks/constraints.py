"""Constraints on adversarially manipulated inputs.

The paper's threat model allows the adversary to manipulate only the CGM
measurements (intercepted over Bluetooth) and requires the manipulated values
to stay physiologically plausible:

* fasting scenario: manipulated CGM values in [125, 499] mg/dL,
* postprandial scenario: manipulated CGM values in [180, 499] mg/dL,

where 499 mg/dL is the highest glucose value reported in the OhioT1DM dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.data.cohort import CGM_COLUMN
from repro.glucose.states import (
    FASTING_HYPER_THRESHOLD,
    MAX_PLAUSIBLE_GLUCOSE,
    POSTPRANDIAL_HYPER_THRESHOLD,
    Scenario,
)


class Constraint:
    """Interface for admissibility checks and projections of candidate inputs."""

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        """True when the candidate window is admissible."""
        raise NotImplementedError

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Return the closest admissible window to ``window``."""
        raise NotImplementedError


@dataclass
class GlucoseRangeConstraint(Constraint):
    """Manipulated CGM values must lie within a plausible hyperglycemic range.

    Only samples that the adversary actually modified are required to fall in
    ``[low, high]``; untouched samples keep their original (benign) values.

    Attributes
    ----------
    low, high:
        Bounds on manipulated CGM values in mg/dL.
    feature_column:
        Column of the CGM signal inside the feature window.
    tolerance:
        Numerical tolerance when deciding whether a sample was modified.
    """

    low: float
    high: float = MAX_PLAUSIBLE_GLUCOSE
    feature_column: int = CGM_COLUMN
    tolerance: float = 1e-9

    def __post_init__(self):
        if self.low >= self.high:
            raise ValueError(f"low ({self.low}) must be below high ({self.high})")

    #: Same defaults as :func:`numpy.allclose`, used for the non-CGM channels.
    _RTOL = 1e-5
    _ATOL = 1e-8

    def _modified_mask(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        return (
            np.abs(window[:, self.feature_column] - original[:, self.feature_column])
            > self.tolerance
        )

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        # This runs once per candidate edge of every search depth — the
        # hottest non-model code in an attack campaign — so it is written as
        # two fused comparisons with no np.delete/np.allclose temporaries.
        window = np.asarray(window, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        if window.shape != original.shape:
            raise ValueError("window and original must have the same shape")
        # Only the CGM channel may be touched (allclose semantics elsewhere).
        close = np.abs(window - original) <= self._ATOL + self._RTOL * np.abs(original)
        close[:, self.feature_column] = True
        if not close.all():
            return False
        cgm = window[:, self.feature_column]
        modified = self._modified_mask(window, original)
        in_range = (cgm >= self.low) & (cgm <= self.high)
        return bool(np.all(in_range | ~modified))

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        # Restore every non-CGM channel the transformation may have touched.
        projected = original.copy()
        cgm = window[:, self.feature_column]
        modified = self._modified_mask(window, original)
        projected[:, self.feature_column] = np.where(
            modified, np.clip(cgm, self.low, self.high), cgm
        )
        return projected


def constraint_for_scenario(scenario: Scenario) -> GlucoseRangeConstraint:
    """The paper's CGM manipulation constraint for a scenario."""
    if scenario == Scenario.FASTING:
        return GlucoseRangeConstraint(low=FASTING_HYPER_THRESHOLD)
    if scenario == Scenario.POSTPRANDIAL:
        return GlucoseRangeConstraint(low=POSTPRANDIAL_HYPER_THRESHOLD)
    raise ValueError(f"unknown scenario {scenario!r}")


@dataclass
class CompositeConstraint(Constraint):
    """Logical AND over several constraints (projection applies them in order)."""

    constraints: Sequence[Constraint]

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        return all(constraint.is_satisfied(window, original) for constraint in self.constraints)

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        projected = window
        for constraint in self.constraints:
            projected = constraint.project(projected, original)
        return projected


@dataclass
class MaxModifiedSamplesConstraint(Constraint):
    """Limit how many CGM samples within the window the adversary may modify.

    This models a stealthier adversary who cannot rewrite the whole Bluetooth
    stream without being noticed; it is used by the ablation benchmarks.
    """

    max_modified: int
    feature_column: int = CGM_COLUMN
    tolerance: float = 1e-9

    def _modified_mask(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        return (
            np.abs(window[:, self.feature_column] - original[:, self.feature_column])
            > self.tolerance
        )

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        return int(self._modified_mask(np.asarray(window), np.asarray(original)).sum()) <= self.max_modified

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        window = np.array(window, dtype=np.float64, copy=True)
        original = np.asarray(original, dtype=np.float64)
        modified = np.where(self._modified_mask(window, original))[0]
        if len(modified) <= self.max_modified:
            return window
        # Keep the latest (most influential) modifications and revert the rest.
        keep = set(modified[-self.max_modified :])
        for index in modified:
            if index not in keep:
                window[index, self.feature_column] = original[index, self.feature_column]
        return window
