"""Constraints on adversarially manipulated inputs.

The paper's threat model allows the adversary to manipulate only the CGM
measurements (intercepted over Bluetooth) and requires the manipulated values
to stay physiologically plausible:

* fasting scenario: manipulated CGM values in [125, 499] mg/dL,
* postprandial scenario: manipulated CGM values in [180, 499] mg/dL,

where 499 mg/dL is the highest glucose value reported in the OhioT1DM dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.data.cohort import CGM_COLUMN
from repro.glucose.states import (
    FASTING_HYPER_THRESHOLD,
    MAX_PLAUSIBLE_GLUCOSE,
    POSTPRANDIAL_HYPER_THRESHOLD,
    Scenario,
)


class Constraint:
    """Interface for admissibility checks and projections of candidate inputs.

    The scalar methods (:meth:`is_satisfied`, :meth:`project`) are the
    reference implementations.  The batched attack engine calls the vectorized
    twins (:meth:`satisfied_mask`, :meth:`project_batch`), whose defaults loop
    the scalar methods; hot-path constraints override them with fused array
    operations that are pinned to the scalar reference by
    ``tests/test_property_based.py``.
    """

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        """True when the candidate window is admissible."""
        raise NotImplementedError

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Return the closest admissible window to ``window``."""
        raise NotImplementedError

    def satisfied_mask(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Admissibility of a stack of candidates against one original window.

        ``windows`` has shape ``(n, history, features)``; returns a boolean
        array of length ``n`` equal to ``[is_satisfied(w, original) for w in
        windows]``.
        """
        windows = np.asarray(windows, dtype=np.float64)
        return np.fromiter(
            (self.is_satisfied(window, original) for window in windows),
            dtype=bool,
            count=len(windows),
        )

    def project_batch(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Project a stack of candidates against one original window.

        Equal to ``np.stack([project(w, original) for w in windows])``.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) == 0:
            return windows.copy()
        return np.stack([self.project(window, original) for window in windows])


@dataclass
class GlucoseRangeConstraint(Constraint):
    """Manipulated CGM values must lie within a plausible hyperglycemic range.

    Only samples that the adversary actually modified are required to fall in
    ``[low, high]``; untouched samples keep their original (benign) values.

    Attributes
    ----------
    low, high:
        Bounds on manipulated CGM values in mg/dL.
    feature_column:
        Column of the CGM signal inside the feature window.
    tolerance:
        Numerical tolerance when deciding whether a sample was modified.
    """

    low: float
    high: float = MAX_PLAUSIBLE_GLUCOSE
    feature_column: int = CGM_COLUMN
    tolerance: float = 1e-9

    def __post_init__(self):
        if self.low >= self.high:
            raise ValueError(f"low ({self.low}) must be below high ({self.high})")

    #: Same defaults as :func:`numpy.allclose`, used for the non-CGM channels.
    _RTOL = 1e-5
    _ATOL = 1e-8

    def _modified_mask(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        return (
            np.abs(window[:, self.feature_column] - original[:, self.feature_column])
            > self.tolerance
        )

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        # This runs once per candidate edge of every search depth — the
        # hottest non-model code in an attack campaign — so it is written as
        # two fused comparisons with no np.delete/np.allclose temporaries.
        window = np.asarray(window, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        if window.shape != original.shape:
            raise ValueError("window and original must have the same shape")
        # Only the CGM channel may be touched (allclose semantics elsewhere).
        close = np.abs(window - original) <= self._ATOL + self._RTOL * np.abs(original)
        close[:, self.feature_column] = True
        if not close.all():
            return False
        cgm = window[:, self.feature_column]
        modified = self._modified_mask(window, original)
        in_range = (cgm >= self.low) & (cgm <= self.high)
        return bool(np.all(in_range | ~modified))

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        # Restore every non-CGM channel the transformation may have touched.
        projected = original.copy()
        cgm = window[:, self.feature_column]
        modified = self._modified_mask(window, original)
        projected[:, self.feature_column] = np.where(
            modified, np.clip(cgm, self.low, self.high), cgm
        )
        return projected

    # ------------------------------------------------------------- batched twins
    def satisfied_mask(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        # Vectorized twin of is_satisfied: one fused pass over the whole
        # candidate stack of a search depth instead of one call per edge.
        windows = np.asarray(windows, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        if windows.shape[1:] != original.shape:
            raise ValueError("windows and original must have the same window shape")
        close = np.abs(windows - original) <= self._ATOL + self._RTOL * np.abs(original)
        close[:, :, self.feature_column] = True
        cgm = windows[:, :, self.feature_column]
        modified = np.abs(cgm - original[:, self.feature_column]) > self.tolerance
        in_range = (cgm >= self.low) & (cgm <= self.high)
        return close.all(axis=(1, 2)) & np.all(in_range | ~modified, axis=1)

    def project_batch(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        if windows.shape[1:] != original.shape:
            raise ValueError("windows and original must have the same window shape")
        projected = np.broadcast_to(original, windows.shape).copy()
        cgm = windows[:, :, self.feature_column]
        modified = np.abs(cgm - original[:, self.feature_column]) > self.tolerance
        projected[:, :, self.feature_column] = np.where(
            modified, np.clip(cgm, self.low, self.high), cgm
        )
        return projected


def constraint_for_scenario(scenario: Scenario) -> GlucoseRangeConstraint:
    """The paper's CGM manipulation constraint for a scenario."""
    if scenario == Scenario.FASTING:
        return GlucoseRangeConstraint(low=FASTING_HYPER_THRESHOLD)
    if scenario == Scenario.POSTPRANDIAL:
        return GlucoseRangeConstraint(low=POSTPRANDIAL_HYPER_THRESHOLD)
    raise ValueError(f"unknown scenario {scenario!r}")


@dataclass
class CompositeConstraint(Constraint):
    """Logical AND over several constraints (projection applies them in order)."""

    constraints: Sequence[Constraint]

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        return all(constraint.is_satisfied(window, original) for constraint in self.constraints)

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        projected = window
        for constraint in self.constraints:
            projected = constraint.project(projected, original)
        return projected

    def satisfied_mask(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        mask = np.ones(len(windows), dtype=bool)
        for constraint in self.constraints:
            mask &= constraint.satisfied_mask(windows, original)
        return mask

    def project_batch(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        projected = np.asarray(windows, dtype=np.float64)
        for constraint in self.constraints:
            projected = constraint.project_batch(projected, original)
        return projected


@dataclass
class MaxModifiedSamplesConstraint(Constraint):
    """Limit how many CGM samples within the window the adversary may modify.

    This models a stealthier adversary who cannot rewrite the whole Bluetooth
    stream without being noticed; it is used by the ablation benchmarks.
    """

    max_modified: int
    feature_column: int = CGM_COLUMN
    tolerance: float = 1e-9

    def _modified_mask(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        return (
            np.abs(window[:, self.feature_column] - original[:, self.feature_column])
            > self.tolerance
        )

    def is_satisfied(self, window: np.ndarray, original: np.ndarray) -> bool:
        return int(self._modified_mask(np.asarray(window), np.asarray(original)).sum()) <= self.max_modified

    def satisfied_mask(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        modified = (
            np.abs(windows[:, :, self.feature_column] - original[:, self.feature_column])
            > self.tolerance
        )
        return modified.sum(axis=1) <= self.max_modified

    def project(self, window: np.ndarray, original: np.ndarray) -> np.ndarray:
        window = np.array(window, dtype=np.float64, copy=True)
        original = np.asarray(original, dtype=np.float64)
        modified = np.where(self._modified_mask(window, original))[0]
        if len(modified) <= self.max_modified:
            return window
        # Keep the latest (most influential) modifications and revert the rest.
        # (The explicit zero case matters: modified[-0:] would keep everything.)
        keep = set(modified[-self.max_modified :]) if self.max_modified > 0 else set()
        for index in modified:
            if index not in keep:
                window[index, self.feature_column] = original[index, self.feature_column]
        return window

    def project_batch(self, windows: np.ndarray, original: np.ndarray) -> np.ndarray:
        # Vectorized twin of project: one fused pass over the whole candidate
        # stack.  "Keep the latest max_modified modifications" becomes a
        # suffix-count test — a modification survives iff at most
        # ``max_modified`` modifications exist from its position to the end
        # of the window (itself included).
        windows = np.array(windows, dtype=np.float64, copy=True)
        original = np.asarray(original, dtype=np.float64)
        if len(windows) == 0:
            return windows
        if windows.shape[1:] != original.shape:
            raise ValueError("windows and original must have the same window shape")
        original_cgm = original[:, self.feature_column]
        modified = np.abs(windows[:, :, self.feature_column] - original_cgm) > self.tolerance
        suffix_counts = np.cumsum(modified[:, ::-1], axis=1)[:, ::-1]
        revert = modified & (suffix_counts > self.max_modified)
        cgm = windows[:, :, self.feature_column]
        windows[:, :, self.feature_column] = np.where(
            revert, np.broadcast_to(original_cgm, cgm.shape), cgm
        )
        return windows
