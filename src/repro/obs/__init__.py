"""Deterministic telemetry spine: metrics, trace spans, profiling hooks.

Three pieces, with a hard determinism boundary between them:

``metrics``
    :class:`MetricsRegistry` — counters / gauges / fixed-edge histograms
    whose values are derived only from deterministic quantities (event
    counts, batch sizes, tick indices).  Snapshots are sorted and merges are
    permutation-invariant, so a sharded run's merged series equal the
    single-process series **bitwise** for every non-timing series.
``trace``
    :class:`Observer` — bundles a registry with per-tick :class:`Span`
    stages (ingress → lane gather → lane step → detector batch → health →
    merge), structured :class:`ObsEvent` occurrences, and JSONL export.
    Span ``seconds`` and the registry's ``observe_seconds`` channel are the
    only wall-clock values, and both are excluded from every bitwise
    comparison.
``timer``
    :class:`Timer` — best-of-N laps on the monotonic clock; the single
    timing source behind every ``BENCH_*.json`` number.

The null config is bitwise inert: every instrumented surface takes
``obs=None`` by default and records nothing — predictions, verdicts, and
reports are byte-for-byte the uninstrumented fabric's
(``scripts/check_parity.py`` gates it).  See ``docs/observability.md`` for
the metric catalog, span stages, and export format.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKET_EDGES,
    MetricsRegistry,
    render_key,
    series_key,
)
from repro.obs.timer import Timer
from repro.obs.trace import ObsEvent, Observer, Span

__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "MetricsRegistry",
    "ObsEvent",
    "Observer",
    "Span",
    "Timer",
    "render_key",
    "series_key",
]
