"""The one sanctioned wall-clock timing source for benchmarks.

Every ``BENCH_*.json`` number comes through this class: best-of-N laps on
the monotonic ``time.perf_counter`` clock.  The bench scripts
(``scripts/bench_attack.py`` / ``bench_serving.py`` / ``bench_train.py``)
all time through :class:`Timer` instead of hand-rolled
``perf_counter()``/``min()`` loops, so timing provenance is one
implementation — and, like the registry's timing channel, Timer values are
wall-clock and never feed any bitwise-parity series.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, List, Tuple


class Timer:
    """Best-of-N lap timer on the monotonic ``perf_counter`` clock."""

    __slots__ = ("laps",)

    def __init__(self):
        self.laps: List[float] = []

    @contextmanager
    def lap(self):
        """Time one lap: ``with timer.lap(): work()``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.laps.append(time.perf_counter() - started)

    def reset(self) -> None:
        self.laps.clear()

    @property
    def count(self) -> int:
        return len(self.laps)

    @property
    def last(self) -> float:
        """Seconds of the most recent lap."""
        return self.laps[-1]

    @property
    def best(self) -> float:
        """Best (minimum) lap — the benchmark number."""
        return min(self.laps)

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return sum(self.laps) / len(self.laps)

    @classmethod
    def best_of(cls, repeats: int, fn: Callable, *args, **kwargs) -> Tuple[float, object]:
        """Run ``fn`` ``repeats`` times; return ``(best seconds, last result)``."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        timer = cls()
        result = None
        for _ in range(repeats):
            with timer.lap():
                result = fn(*args, **kwargs)
        return timer.best, result
