"""Trace spans, structured events, and the :class:`Observer` bundle.

A :class:`Span` is one timed stage of a scheduler tick (``ingress`` →
``lane_gather`` → ``lane_step`` → ``detector_batch`` → ``health`` →
``merge``) carrying session/lane/tick identity; an :class:`ObsEvent` is one
structured occurrence (a health transition, a lane failure, a worker death).
Span *identity and detail fields* are deterministic; only the ``seconds``
field touches the wall clock, and it is excluded from every bitwise
comparison (mirroring the registry's timing channel).

The :class:`Observer` bundles one :class:`~repro.obs.metrics.MetricsRegistry`
with the span/event logs and the JSONL exporter.  Passing an Observer into
:class:`~repro.serving.scheduler.StreamScheduler`,
:class:`~repro.serving.shard.ShardedScheduler`, or
:class:`~repro.serving.replay.StreamReplayer` turns instrumentation on;
``None`` (everywhere the default) is the bitwise-inert null config — no
counter, span, or event is ever recorded and behavior is byte-for-byte the
uninstrumented fabric (``scripts/check_parity.py`` gates this).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, render_key

#: Spans kept in memory before new ones are dropped (and counted — the drop
#: is recorded in ``obs.spans_dropped_total``, never silent).
DEFAULT_MAX_SPANS = 250_000


@dataclass
class Span:
    """One timed stage of a scheduler tick (or a coarser phase).

    ``tick`` is the device-clock slot (the replayer's global tick) when the
    caller threads one through, else None; ``seconds`` is wall-clock and
    excluded from parity.  ``shard`` is stamped by the parent fabric when a
    worker's spans are ingested.
    """

    stage: str
    tick: Optional[int] = None
    lane: Optional[str] = None
    sessions: Tuple[str, ...] = ()
    detail: Dict[str, object] = field(default_factory=dict)
    seconds: Optional[float] = None
    shard: Optional[int] = None


@dataclass
class ObsEvent:
    """One structured occurrence (health transition, failure, worker death)."""

    kind: str
    fields: Dict[str, object] = field(default_factory=dict)
    shard: Optional[int] = None


class Observer:
    """Metrics registry + span/event logs + JSONL export, as one handle.

    Parameters
    ----------
    trace:
        When False, ``emit_span``/``span`` become no-ops (metrics and events
        still record) — for long fleet runs where per-tick spans would
        dominate memory.
    max_spans:
        In-memory span cap; overflow increments the
        ``obs.spans_dropped_total`` counter instead of growing unboundedly.
    """

    def __init__(self, trace: bool = True, max_spans: int = DEFAULT_MAX_SPANS):
        self.registry = MetricsRegistry()
        self.trace = bool(trace)
        self.max_spans = int(max_spans)
        self.spans: List[Span] = []
        self.events: List[ObsEvent] = []

    # ------------------------------------------------------------------- spans
    def emit_span(
        self,
        stage: str,
        started: Optional[float] = None,
        tick: Optional[int] = None,
        lane: Optional[str] = None,
        sessions: Sequence[str] = (),
        **detail,
    ) -> None:
        """Record one span; ``started`` is a ``time.perf_counter()`` origin.

        The hot-path form: callers grab ``perf_counter()`` themselves (one
        call, no context-manager frame) and hand it in; ``seconds`` is
        computed here.  ``started=None`` records an instant/aggregate span
        with ``seconds=None``.
        """
        if not self.trace:
            return
        if len(self.spans) >= self.max_spans:
            self.registry.inc("obs.spans_dropped_total")
            return
        self.spans.append(
            Span(
                stage=stage,
                tick=tick,
                lane=lane,
                sessions=tuple(sessions),
                detail=detail,
                seconds=None if started is None else time.perf_counter() - started,
            )
        )

    @contextmanager
    def span(self, stage: str, tick: Optional[int] = None, lane: Optional[str] = None, sessions: Sequence[str] = (), **detail):
        """Context-manager form of :meth:`emit_span` for coarse phases."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit_span(stage, started, tick=tick, lane=lane, sessions=sessions, **detail)

    # ------------------------------------------------------------------ events
    def event(self, kind: str, **fields) -> None:
        """Record one structured event."""
        self.events.append(ObsEvent(kind=kind, fields=fields))

    # ---------------------------------------------------------- shard shipping
    def drain(self) -> dict:
        """Ship-ready payload: cumulative series snapshot + spans/events since
        the last drain (the trace logs are cleared so worker memory stays
        bounded; the registry is cumulative and never cleared)."""
        spans, self.spans = self.spans, []
        events, self.events = self.events, []
        return {"series": self.registry.snapshot(), "spans": spans, "events": events}

    def ingest_trace(self, spans: Sequence[Span], events: Sequence[ObsEvent], shard: Optional[int] = None) -> None:
        """Parent-side: append a worker's drained spans/events, stamped with
        the shard index.  Series snapshots are NOT absorbed here — the fabric
        folds each worker's cumulative snapshot in exactly once (see
        :meth:`repro.serving.shard.ShardedScheduler.shutdown`)."""
        for span in spans:
            span.shard = shard
            if len(self.spans) >= self.max_spans:
                self.registry.inc("obs.spans_dropped_total")
                continue
            self.spans.append(span)
        for event in events:
            event.shard = shard
            self.events.append(event)

    # ------------------------------------------------------------------ export
    def export_jsonl(self, path: str, meta: Optional[dict] = None) -> int:
        """Write the run's telemetry as JSON Lines; returns the line count.

        Line types: ``meta`` (one, first), ``counter``/``gauge``/``histogram``
        (the deterministic series), ``timing`` (the wall-clock channel),
        ``span``, and ``event``.  ``scripts/obs_report.py`` renders this
        format back into the chaos-harness rollup shape.
        """
        snapshot = self.registry.snapshot()
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            def write(record: dict) -> None:
                nonlocal lines
                handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                lines += 1

            write({"type": "meta", **(meta or {})})
            for kind in ("counters", "gauges"):
                for key, value in snapshot[kind].items():
                    write(
                        {
                            "type": kind[:-1],
                            "name": key[0],
                            "labels": dict(key[1]),
                            "series": render_key(key),
                            "value": value,
                        }
                    )
            for key, hist in snapshot["histograms"].items():
                write(
                    {
                        "type": "histogram",
                        "name": key[0],
                        "labels": dict(key[1]),
                        "series": render_key(key),
                        "edges": list(hist["edges"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    }
                )
            for key, timing in self.registry.timings().items():
                write(
                    {
                        "type": "timing",
                        "name": key[0],
                        "labels": dict(key[1]),
                        "series": render_key(key),
                        **timing,
                    }
                )
            for span in self.spans:
                write(
                    {
                        "type": "span",
                        "stage": span.stage,
                        "tick": span.tick,
                        "lane": span.lane,
                        "sessions": list(span.sessions),
                        "detail": span.detail,
                        "seconds": span.seconds,
                        "shard": span.shard,
                    }
                )
            for event in self.events:
                write({"type": "event", "kind": event.kind, "shard": event.shard, **event.fields})
        return lines
