"""Deterministic metrics: counters, gauges, histograms with order-invariant merge.

The registry is the parity-safe half of the telemetry spine: every value it
holds is derived from *deterministic* quantities (event counts, batch sizes,
tick indices) — never from the wall clock — so the full non-timing snapshot
of a sharded run must equal the single-process snapshot bitwise
(``scripts/check_parity.py`` / ``tests/test_obs.py`` gate it).  Wall-clock
measurements go through a separate *timing channel*
(:meth:`MetricsRegistry.observe_seconds`) that is explicitly excluded from
:meth:`MetricsRegistry.snapshot` and therefore from every bitwise
comparison.

Merge semantics (:meth:`MetricsRegistry.merge` / :meth:`MetricsRegistry.absorb`)
are permutation-invariant by construction:

* **counters** add,
* **gauges** add (use them only for additive quantities — per-shard open
  sessions sum to the fleet value),
* **histograms** add bucket counts elementwise (fixed edges per series name,
  so two shards can never disagree on the bucket layout).

Histogram observations should be integral (batch sizes, tick latencies in
ticks): integer-valued float sums are exact, which is what keeps the merged
``sum`` field bitwise layout-independent.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: (series name, sorted (label key, label value) pairs) — the identity of one
#: time series.  Tuples are hashable, picklable, and totally ordered, which
#: is what makes snapshots deterministic and cheap to ship over a shard pipe.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram bucket upper edges (powers of two): right for the
#: quantities the serving fabric observes — batch sizes, latencies in ticks.
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


def series_key(name: str, labels: Mapping[str, object]) -> SeriesKey:
    """Canonical (name, sorted labels) identity of one series."""
    return (str(name), tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def render_key(key: SeriesKey) -> str:
    """Human/JSONL rendering: ``name{k=v,k2=v2}`` (sorted label keys)."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Counters, gauges, fixed-edge histograms, and a separate timing channel.

    One registry per process: the single-process scheduler owns one, each
    shard worker owns its own, and the parent folds worker snapshots in with
    :meth:`absorb` (shipped with every tick reply; see
    :class:`repro.serving.shard.ShardedScheduler`).
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_edges", "_timings")

    def __init__(self):
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        # key -> [edges tuple, bucket counts list (len(edges)+1), sum, count]
        self._histograms: Dict[SeriesKey, list] = {}
        self._edges: Dict[str, Tuple[float, ...]] = {}
        # key -> {"count", "total", "best", "last"} — wall-clock channel,
        # excluded from snapshot() and every bitwise comparison.
        self._timings: Dict[SeriesKey, Dict[str, float]] = {}

    # ----------------------------------------------------------------- writing
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a counter series."""
        key = series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series (merge semantics: gauges ADD across shards)."""
        self._gauges[series_key(name, labels)] = float(value)

    def declare_histogram(self, name: str, edges: Sequence[float]) -> None:
        """Pin the bucket upper edges for every series under ``name``.

        Must be called before the first ``observe`` of that name (or not at
        all — :data:`DEFAULT_BUCKET_EDGES` applies).  Edges are per *name*,
        not per labeled series, so shards can never disagree on the layout.
        """
        edges = tuple(float(edge) for edge in edges)
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        if not edges:
            raise ValueError("histogram edges must be non-empty")
        existing = self._edges.get(name)
        if existing is not None and existing != edges:
            raise ValueError(f"histogram {name!r} already declared with different edges")
        self._edges[name] = edges

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a fixed-edge histogram series.

        Observations should be deterministic, integral quantities (batch
        sizes, latencies in ticks) — the ``sum`` field must stay exact under
        any merge order.
        """
        key = series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            edges = self._edges.setdefault(name, DEFAULT_BUCKET_EDGES)
            hist = self._histograms[key] = [edges, [0] * (len(edges) + 1), 0.0, 0]
        value = float(value)
        hist[1][bisect.bisect_left(hist[0], value)] += 1
        hist[2] += value
        hist[3] += 1

    def observe_seconds(self, name: str, seconds: float, **labels) -> None:
        """Record a wall-clock measurement into the timing channel.

        Timings never appear in :meth:`snapshot` and are excluded from all
        bitwise comparisons; read them back with :meth:`timings`.
        """
        key = series_key(name, labels)
        entry = self._timings.get(key)
        if entry is None:
            entry = self._timings[key] = {"count": 0, "total": 0.0, "best": float("inf"), "last": 0.0}
        seconds = float(seconds)
        entry["count"] += 1
        entry["total"] += seconds
        entry["best"] = min(entry["best"], seconds)
        entry["last"] = seconds

    # ----------------------------------------------------------------- reading
    def snapshot(self) -> Dict[str, dict]:
        """Deterministic (sorted) snapshot of every **non-timing** series.

        The returned structure is plain data (tuples/dicts/floats): safe to
        pickle across a shard pipe, to compare with ``==`` in parity gates,
        and to feed back into :meth:`absorb`.
        """
        return {
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
            "histograms": {
                key: {
                    "edges": tuple(hist[0]),
                    "counts": tuple(hist[1]),
                    "sum": hist[2],
                    "count": hist[3],
                }
                for key, hist in sorted(self._histograms.items())
            },
        }

    def timings(self) -> Dict[SeriesKey, Dict[str, float]]:
        """Sorted copy of the wall-clock channel (never merged bitwise)."""
        return {key: dict(self._timings[key]) for key in sorted(self._timings)}

    # ----------------------------------------------------------------- merging
    def absorb(self, snapshot: Mapping[str, dict]) -> None:
        """Fold one :meth:`snapshot` into this registry (addition, commutative)."""
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges[key] = self._gauges.get(key, 0.0) + value
        for key, payload in snapshot.get("histograms", {}).items():
            edges = tuple(payload["edges"])
            declared = self._edges.setdefault(key[0], edges)
            if declared != edges:
                raise ValueError(f"histogram {key[0]!r} merged with mismatched edges")
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = [edges, [0] * (len(edges) + 1), 0.0, 0]
            for index, count in enumerate(payload["counts"]):
                hist[1][index] += count
            hist[2] += payload["sum"]
            hist[3] += payload["count"]

    @classmethod
    def merge(cls, snapshots: Iterable[Mapping[str, dict]]) -> Dict[str, dict]:
        """Merge snapshots into one; permutation-invariant (sums + sorted keys)."""
        merged = cls()
        for snapshot in snapshots:
            merged.absorb(snapshot)
        return merged.snapshot()

    # ------------------------------------------------------------------ lookup
    def counter_value(self, name: str, **labels) -> float:
        return self._counters.get(series_key(name, labels), 0.0)

    def counter_total(self, name: str, **fixed_labels) -> float:
        """Sum of a counter over every label combination matching ``fixed_labels``."""
        wanted = {str(k): str(v) for k, v in fixed_labels.items()}
        total = 0.0
        for (series_name, labels), value in self._counters.items():
            if series_name != name:
                continue
            label_map = dict(labels)
            if all(label_map.get(k) == v for k, v in wanted.items()):
                total += value
        return total
