"""Mini-batch iteration helpers for training loops."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import as_random_state
from repro.utils.validation import check_consistent_length


class BatchIterator:
    """Iterate over aligned arrays in (optionally shuffled) mini-batches.

    Batches are gathered into **preallocated per-iterator buffers** instead
    of fancy-index copies: every training epoch used to allocate a fresh
    ``(batch, T, F)`` array per batch (the dominant allocation churn of the
    fused training loop), while the gather buffers are allocated once and
    reused for the iterator's whole lifetime.  The yielded arrays are
    therefore *views into reused storage* — valid until the next batch is
    drawn.  Training loops (``FusedTrainer.step``, the graph twin, the GAN
    steps) consume each batch fully before advancing, so nothing changes
    for them; a caller that retains batches across iterations must
    ``.copy()`` them.

    Parameters
    ----------
    inputs, targets:
        Aligned arrays; ``targets`` may be ``None`` for unsupervised data.
    batch_size:
        Number of samples per batch.
    shuffle:
        Whether to reshuffle sample order at the start of each epoch.
    drop_last:
        Drop the final incomplete batch (useful for GAN training where
        batch-size mismatches complicate the discriminator).
    seed:
        Seed controlling the shuffle order.
    """

    def __init__(
        self,
        inputs,
        targets=None,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        seed=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.inputs = np.asarray(inputs, dtype=np.float64)
        self.targets = None if targets is None else np.asarray(targets, dtype=np.float64)
        if self.targets is not None:
            check_consistent_length(self.inputs, self.targets)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = as_random_state(seed)
        # Preallocated gather buffers (see class docstring); the last ragged
        # batch is served as a leading slice of the same storage.
        size = min(batch_size, len(self.inputs)) or 1
        self._input_buffer = np.empty((size,) + self.inputs.shape[1:])
        self._target_buffer = (
            None
            if self.targets is None
            else np.empty((size,) + self.targets.shape[1:])
        )

    def __len__(self) -> int:
        full, remainder = divmod(len(self.inputs), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
        count = len(self.inputs)
        order = np.arange(count)
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, count, self.batch_size):
            index = order[start : start + self.batch_size]
            n = len(index)
            if self.drop_last and n < self.batch_size:
                break
            batch_inputs = self._input_buffer[:n]
            np.take(self.inputs, index, axis=0, out=batch_inputs)
            if self.targets is None:
                batch_targets = None
            else:
                batch_targets = self._target_buffer[:n]
                np.take(self.targets, index, axis=0, out=batch_targets)
            yield batch_inputs, batch_targets
