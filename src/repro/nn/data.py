"""Mini-batch iteration helpers for training loops."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import as_random_state
from repro.utils.validation import check_consistent_length


class BatchIterator:
    """Iterate over aligned arrays in (optionally shuffled) mini-batches.

    Parameters
    ----------
    inputs, targets:
        Aligned arrays; ``targets`` may be ``None`` for unsupervised data.
    batch_size:
        Number of samples per batch.
    shuffle:
        Whether to reshuffle sample order at the start of each epoch.
    drop_last:
        Drop the final incomplete batch (useful for GAN training where
        batch-size mismatches complicate the discriminator).
    seed:
        Seed controlling the shuffle order.
    """

    def __init__(
        self,
        inputs,
        targets=None,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        seed=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.inputs = np.asarray(inputs, dtype=np.float64)
        self.targets = None if targets is None else np.asarray(targets, dtype=np.float64)
        if self.targets is not None:
            check_consistent_length(self.inputs, self.targets)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = as_random_state(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.inputs), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
        count = len(self.inputs)
        order = np.arange(count)
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, count, self.batch_size):
            index = order[start : start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                break
            batch_inputs = self.inputs[index]
            batch_targets = None if self.targets is None else self.targets[index]
            yield batch_inputs, batch_targets
