"""Layer abstractions built on the autograd :class:`~repro.nn.tensor.Tensor`."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.fused import add_matmul_grad, add_sum_grad
from repro.nn.initializers import get_initializer
from repro.nn.tensor import Tensor, as_tensor, no_grad
from repro.utils.rng import RandomState, as_random_state

_ACTIVATIONS = {
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "relu": lambda x: x.relu(),
    "leaky_relu": lambda x: x.leaky_relu(),
    "linear": lambda x: x,
    None: lambda x: x,
}

# Graph-free numpy twins of the tensor activations, used by the inference
# fast path.  Each mirrors the corresponding Tensor op bit-for-bit.
_ACTIVATION_ARRAYS = {
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "linear": lambda x: x,
    None: lambda x: x,
}


def apply_activation(value: Tensor, activation: Optional[str]) -> Tensor:
    """Apply a named activation function to a tensor."""
    if activation not in _ACTIVATIONS:
        raise ValueError(
            f"unknown activation {activation!r}; available: "
            f"{sorted(key for key in _ACTIVATIONS if key)}"
        )
    return _ACTIVATIONS[activation](value)


def apply_activation_array(values: np.ndarray, activation: Optional[str]) -> np.ndarray:
    """Apply a named activation to a raw numpy array (inference fast path)."""
    if activation not in _ACTIVATION_ARRAYS:
        raise ValueError(
            f"unknown activation {activation!r}; available: "
            f"{sorted(key for key in _ACTIVATION_ARRAYS if key)}"
        )
    return _ACTIVATION_ARRAYS[activation](values)


def _activation_backward_state(
    pre_activation: np.ndarray, output: np.ndarray, activation: Optional[str]
):
    """What the fused backward of a named activation needs from the forward."""
    if activation in ("tanh", "sigmoid"):
        return output  # both derivatives are functions of the output
    if activation in ("relu", "leaky_relu"):
        return pre_activation > 0  # the masks Tensor.relu/leaky_relu use
    return None  # linear / None: identity


def _activation_backward(
    grad_output: np.ndarray, state, activation: Optional[str]
) -> np.ndarray:
    """Gradient through a named activation, mirroring the Tensor backward ops."""
    if activation == "tanh":
        return grad_output * (1.0 - state**2)
    if activation == "sigmoid":
        return grad_output * state * (1.0 - state)
    if activation == "relu":
        return grad_output * state
    if activation == "leaky_relu":
        return grad_output * np.where(state, 1.0, 0.01)
    return grad_output


class Parameter(Tensor):
    """A tensor that is registered as trainable by its owning module."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses register :class:`Parameter` instances (directly or inside child
    modules) and implement :meth:`forward`.
    """

    def __init__(self):
        self.training = True

    def forward(self, *inputs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs):
        return self.forward(*inputs)

    # ------------------------------------------------------------- inference
    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        """Graph-free forward pass on raw numpy arrays.

        Subclasses with a hand-written fast path (fused matmuls, preallocated
        buffers) override this; the default falls back to :meth:`forward`
        under :class:`~repro.nn.tensor.no_grad`, which still skips all
        backward-closure allocation.  Implementations must match the autodiff
        forward to within 1e-10 (see ``tests/test_nn_fastpath.py``).
        """
        with no_grad():
            output = self.forward(inputs)
        return output.numpy(copy=True) if isinstance(output, Tensor) else np.asarray(output)

    def predict(self, inputs) -> np.ndarray:
        """Batched eval-mode inference without building the autodiff graph.

        Temporarily switches the module tree to evaluation mode (so dropout
        and friends are no-ops), runs the graph-free fast path, and restores
        the previous training flags.  This is the entry point the attack hot
        path uses for its thousands of model queries.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        flags = [(module, module.training) for module in self.modules()]
        try:
            for module, _ in flags:
                module.training = False
            return self.fast_forward(inputs)
        finally:
            for module, was_training in flags:
                module.training = was_training

    # ------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        """Graph-free *training* forward: returns ``(output, cache)``.

        Unlike :meth:`fast_forward` (inference only), the cache holds every
        activation the hand-written backward needs, so
        :meth:`fused_backward_train` can compute full parameter gradients
        without the autodiff graph.  Layers without an analytic backward do
        not implement this — train them through the graph.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no fused training path; train it "
            "through the autodiff graph (module(Tensor(x)) + loss.backward())"
        )

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        """Hand-written backward for :meth:`fused_forward_train`.

        Accumulates parameter gradients into ``parameter.grad`` with the same
        semantics as the autodiff engine (``None`` → set, otherwise add;
        frozen parameters are skipped entirely) and returns the gradient with
        respect to the layer's inputs.  Pinned to the graph backward within
        1e-8 by ``tests/test_nn_fused.py``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no fused training path; train it "
            "through the autodiff graph (module(Tensor(x)) + loss.backward())"
        )

    def fused_grads(self, inputs: np.ndarray, grad_output: np.ndarray):
        """One-shot fused forward + backward: ``(output, grad_inputs)``.

        ``grad_output`` is the upstream gradient seeding the backward pass
        (what ``output.backward(grad_output)`` would seed on the graph path).
        Parameter gradients are accumulated into each ``parameter.grad``;
        the per-parameter gradient buffers are preallocated and reused across
        calls, so steady-state training steps allocate nothing for them.
        """
        output, cache = self.fused_forward_train(inputs)
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != np.shape(output):
            raise ValueError(
                f"grad_output must match the output shape {np.shape(output)}, "
                f"got {grad_output.shape}"
            )
        return output, self.fused_backward_train(grad_output, cache)

    def _fused_buffers(self) -> Dict[str, np.ndarray]:
        """Lazily created per-parameter gradient buffers (see fused.py)."""
        buffers = getattr(self, "_fused_grad_buffers", None)
        if buffers is None:
            buffers = self._fused_grad_buffers = {}
        return buffers

    # ------------------------------------------------------------- traversal
    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self.children():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters in this module and its children."""
        found: List[Parameter] = []
        seen = set()
        for value in self.__dict__.values():
            candidates: Sequence = value if isinstance(value, (list, tuple)) else (value,)
            for candidate in candidates:
                if isinstance(candidate, Parameter) and id(candidate) not in seen:
                    seen.add(id(candidate))
                    found.append(candidate)
                elif isinstance(candidate, Module):
                    for parameter in candidate.parameters():
                        if id(parameter) not in seen:
                            seen.add(id(parameter))
                            found.append(parameter)
        return found

    def named_parameters(self, prefix: str = "") -> Dict[str, Parameter]:
        """Return a flat ``{path: parameter}`` mapping."""
        named: Dict[str, Parameter] = {}
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                named[path] = value
            elif isinstance(value, Module):
                named.update(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    item_path = f"{path}.{index}"
                    if isinstance(item, Parameter):
                        named[item_path] = item
                    elif isinstance(item, Module):
                        named.update(item.named_parameters(prefix=f"{item_path}."))
        return named

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def requires_grad_(self, flag: bool) -> "Module":
        """Enable or disable gradient tracking for every parameter.

        With tracking off, forward passes still build the graph along any
        differentiable *inputs* (e.g. an optimized latent), but backward skips
        every parameter-gradient computation — the weight-gradient matrix
        multiplications, bias reductions, and gradient buffers.  Use this to
        differentiate through a frozen network — e.g. the MAD-GAN generator
        step freezes the discriminator while backpropagating through it.
        Restore with ``requires_grad_(True)`` before training the frozen
        module; optimizers expect it on.
        """
        for parameter in self.parameters():
            parameter.requires_grad = bool(flag)
        return self

    def train(self) -> "Module":
        """Put the module (and children) into training mode."""
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Put the module (and children) into evaluation mode."""
        self.training = False
        for child in self.children():
            child.eval()
        return self

    # ---------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter's value keyed by path."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        named = self.named_parameters()
        missing = set(named) - set(state)
        unexpected = set(state) - set(named)
        if missing or unexpected:
            raise ValueError(
                f"state_dict mismatch; missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    def count_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(parameter.data.size for parameter in self.parameters()))

    def state_hash(self) -> str:
        """Deterministic fingerprint of every parameter (paths, shapes, values).

        Two modules share a hash exactly when :meth:`state_dict` would return
        byte-identical weights under the same parameter paths — e.g. a model
        and a separately constructed copy loaded via :meth:`load_state_dict`.
        Used to merge identical models into one batched lane/search instead of
        relying on object identity.
        """
        digest = hashlib.sha256()
        for name, parameter in sorted(self.named_parameters().items()):
            digest.update(name.encode())
            digest.update(str(parameter.data.shape).encode())
            digest.update(np.ascontiguousarray(parameter.data).tobytes())
        return digest.hexdigest()


class Dense(Module):
    """A fully connected layer ``y = activation(x @ W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    activation:
        Optional activation name (``tanh``, ``sigmoid``, ``relu``, ...).
    weight_init:
        Initializer name for the weight matrix.
    seed:
        Seed or :class:`RandomState` for initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[str] = None,
        weight_init: str = "xavier_uniform",
        use_bias: bool = True,
        seed=None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_random_state(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.use_bias = use_bias
        initializer = get_initializer(weight_init)
        self.weight = Parameter(initializer((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if use_bias else None

    def forward(self, inputs) -> Tensor:
        inputs = as_tensor(inputs)
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return apply_activation(output, self.activation)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        output = np.asarray(inputs, dtype=np.float64) @ self.weight.data
        if self.bias is not None:
            output = output + self.bias.data
        return apply_activation_array(output, self.activation)

    # ------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ValueError(
                f"Dense fused training expects (batch, features) inputs, got {inputs.shape}"
            )
        pre_activation = inputs @ self.weight.data
        if self.bias is not None:
            pre_activation = pre_activation + self.bias.data
        output = apply_activation_array(pre_activation, self.activation)
        cache = (
            inputs,
            _activation_backward_state(pre_activation, output, self.activation),
        )
        return output, cache

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        inputs, activation_state = cache
        grad_pre = _activation_backward(
            np.asarray(grad_output, dtype=np.float64), activation_state, self.activation
        )
        buffers = self._fused_buffers()
        add_matmul_grad(self.weight, buffers, "weight", inputs.T, grad_pre)
        if self.bias is not None:
            # The bias was broadcast over the batch; its gradient is the
            # row-sum, exactly what the graph's _unbroadcast computes.
            add_sum_grad(self.bias, buffers, "bias", grad_pre, axis=0)
        return grad_pre @ self.weight.data.T


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.5, seed=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_random_state(seed)

    def forward(self, inputs) -> Tensor:
        inputs = as_tensor(inputs)
        if not self.training or self.rate == 0.0:
            return inputs
        keep_probability = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep_probability) / keep_probability
        return inputs * Tensor(mask)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        # Inference fast path == eval mode: dropout is always the identity.
        return np.asarray(inputs, dtype=np.float64)

    # ------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        if self.training and self.rate:
            raise NotImplementedError(
                "Dropout has no fused training path (its mask draws from the "
                "layer RNG, which the fused engine does not replicate); train "
                "dropout models through the autodiff graph"
            )
        return np.asarray(inputs, dtype=np.float64), None

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64)


class Activation(Module):
    """A standalone activation layer."""

    def __init__(self, activation: str):
        super().__init__()
        if activation not in _ACTIVATIONS or activation is None:
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, inputs) -> Tensor:
        return apply_activation(as_tensor(inputs), self.activation)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        return apply_activation_array(np.asarray(inputs, dtype=np.float64), self.activation)

    # ------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        output = apply_activation_array(inputs, self.activation)
        return output, _activation_backward_state(inputs, output, self.activation)

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        return _activation_backward(
            np.asarray(grad_output, dtype=np.float64), cache, self.activation
        )


class Sequential(Module):
    """Compose modules by calling them in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, inputs) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        output = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            output = layer.fast_forward(output)
        return output

    # ------------------------------------------------------------- training
    def fused_forward_train(self, inputs: np.ndarray):
        output = np.asarray(inputs, dtype=np.float64)
        caches = []
        for layer in self.layers:
            output, cache = layer.fused_forward_train(output)
            caches.append(cache)
        return output, caches

    def fused_backward_train(self, grad_output: np.ndarray, cache) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer, layer_cache in zip(reversed(self.layers), reversed(cache)):
            grad = layer.fused_backward_train(grad, layer_cache)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
