"""Gradient-based optimizers for the neural-network substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_positive


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer requires at least one parameter")
        self.learning_rate = check_positive(learning_rate, "learning_rate")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm does not exceed ``max_norm``.

        Returns the pre-clipping norm, which is useful for monitoring.
        """
        check_positive(max_norm, "max_norm")
        squared = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                squared += float(np.sum(parameter.grad**2))
        total_norm = float(np.sqrt(squared))
        if total_norm > max_norm and total_norm > 0:
            scale = max_norm / total_norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return total_norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + gradient
                gradient = self._velocity[index]
            parameter.data = parameter.data - self.learning_rate * gradient


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]
        self._second_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            self._first_moment[index] = (
                self.beta1 * self._first_moment[index] + (1.0 - self.beta1) * gradient
            )
            self._second_moment[index] = (
                self.beta2 * self._second_moment[index] + (1.0 - self.beta2) * gradient**2
            )
            corrected_first = self._first_moment[index] / bias1
            corrected_second = self._second_moment[index] / bias2
            parameter.data = parameter.data - self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
