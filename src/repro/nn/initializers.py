"""Weight initialization schemes for the neural-network substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, as_random_state


def xavier_uniform(shape: Tuple[int, int], rng: RandomState) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, int], rng: RandomState) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, int], rng: RandomState) -> np.ndarray:
    """He/Kaiming uniform initialization (suited to ReLU layers)."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: Tuple[int, int], rng: RandomState, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization, commonly used for recurrent weights."""
    rows, cols = shape
    size = max(rows, cols)
    matrix = rng.normal(0.0, 1.0, size=(size, size))
    q, r = np.linalg.qr(matrix)
    q = q * np.sign(np.diag(r))
    return gain * q[:rows, :cols]


def zeros_init(shape: Tuple[int, ...], rng: RandomState = None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


_INITIALIZERS = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "orthogonal": orthogonal,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    if name not in _INITIALIZERS:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}"
        )
    return _INITIALIZERS[name]


def initialize(name: str, shape: Tuple[int, ...], seed=None) -> np.ndarray:
    """Create an initialized array via a named scheme."""
    rng = as_random_state(seed)
    return get_initializer(name)(shape, rng)
