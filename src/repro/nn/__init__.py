"""A numpy-based neural-network substrate with reverse-mode autodiff.

This package replaces the PyTorch/TensorFlow dependency of the original paper
artifacts.  It provides tensors with automatic differentiation, dense and
recurrent layers (LSTM / bidirectional LSTM), loss functions, and optimizers —
enough to train the target glucose forecaster and the MAD-GAN detector.
"""

from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    stack,
    zeros,
    ones,
)
from repro.nn.module import (
    Activation,
    Dense,
    Dropout,
    Module,
    Parameter,
    Sequential,
    apply_activation,
    apply_activation_array,
)
from repro.nn.recurrent import (
    LSTM,
    BiLSTM,
    BiLSTMStreamState,
    LSTMCell,
    LSTMStreamState,
)
from repro.nn.functional import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    huber_loss,
    l2_penalty,
    mae_loss,
    mse_loss,
    sigmoid,
)
from repro.nn.fused import (
    FusedTrainer,
    fused_bce_with_logits_loss,
    fused_gaussian_nll_loss,
    fused_kl_standard_normal,
    fused_mse_loss,
    fused_vae_loss_head,
)
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.data import BatchIterator
from repro.nn.initializers import get_initializer, initialize

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "is_grad_enabled",
    "no_grad",
    "stack",
    "zeros",
    "ones",
    "Module",
    "Parameter",
    "Dense",
    "Dropout",
    "Activation",
    "Sequential",
    "apply_activation",
    "apply_activation_array",
    "LSTMCell",
    "LSTM",
    "BiLSTM",
    "LSTMStreamState",
    "BiLSTMStreamState",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "l2_penalty",
    "sigmoid",
    "FusedTrainer",
    "fused_mse_loss",
    "fused_bce_with_logits_loss",
    "fused_gaussian_nll_loss",
    "fused_kl_standard_normal",
    "fused_vae_loss_head",
    "Optimizer",
    "SGD",
    "Adam",
    "BatchIterator",
    "get_initializer",
    "initialize",
]
