"""Loss functions and small functional helpers for training."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

_EPSILON = 1e-9


def mse_loss(predictions, targets) -> Tensor:
    """Mean squared error between predictions and targets."""
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    difference = predictions - targets
    return (difference * difference).mean()


def mae_loss(predictions, targets) -> Tensor:
    """Mean absolute error."""
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    return (predictions - targets).abs().mean()


def binary_cross_entropy(probabilities, targets) -> Tensor:
    """Binary cross-entropy on probabilities in (0, 1)."""
    probabilities = as_tensor(probabilities).clip(_EPSILON, 1.0 - _EPSILON)
    targets = as_tensor(targets)
    positive_term = targets * probabilities.log()
    negative_term = (1.0 - targets) * (1.0 - probabilities).log()
    return -(positive_term + negative_term).mean()


def binary_cross_entropy_with_logits(logits, targets) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x * target
    softplus = (1.0 + (-logits.abs()).exp()).log()
    return (logits.relu() - logits * targets + softplus).mean()


def huber_loss(predictions, targets, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented without branching on tensor values by combining the clipped
    residual with the absolute residual.
    """
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    residual = (predictions - targets).abs()
    clipped = residual.clip(0.0, delta)
    return (clipped * residual - clipped * clipped * 0.5).mean()


def l2_penalty(parameters, weight: float = 1e-4) -> Tensor:
    """Sum-of-squares regularization over a list of parameters."""
    total = Tensor(0.0)
    for parameter in parameters:
        total = total + (parameter * parameter).sum()
    return total * weight


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Plain numpy sigmoid (for non-differentiable post-processing).

    Uses the same clipped formulation as :meth:`Tensor.sigmoid`, so the
    graph-free inference fast path matches the autodiff forward exactly.
    (The clip runs through the ndarray method, which skips ``np.clip``'s
    dispatch wrapper — measurably faster on the per-timestep recurrence hot
    path and bitwise-identical.)
    """
    return 1.0 / (1.0 + np.exp(-np.asarray(values).clip(-60.0, 60.0)))


def sigmoid_(values: np.ndarray) -> np.ndarray:
    """In-place :func:`sigmoid` (training-loop hot path).

    Bitwise-identical to :func:`sigmoid` — same clipped formulation, same
    operation order — but every intermediate is written back into ``values``
    so the fused training recurrence allocates nothing per gate block.
    """
    values.clip(-60.0, 60.0, out=values)
    np.negative(values, out=values)
    np.exp(values, out=values)
    values += 1.0
    np.divide(1.0, values, out=values)
    return values


def tanh(values: np.ndarray) -> np.ndarray:
    """Plain numpy tanh (mirrors :meth:`Tensor.tanh` for the fast path)."""
    return np.tanh(values)


def relu(values: np.ndarray) -> np.ndarray:
    """Plain numpy ReLU, computed as ``x * (x > 0)`` to mirror :meth:`Tensor.relu`."""
    values = np.asarray(values)
    return values * (values > 0)


def leaky_relu(values: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Plain numpy leaky ReLU (mirrors :meth:`Tensor.leaky_relu`)."""
    values = np.asarray(values)
    return np.where(values > 0, values, negative_slope * values)
