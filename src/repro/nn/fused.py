"""Graph-free fused training engine: losses, gradient buffers, step driver.

Training, until this module, was the last subsystem that ran entirely through
the autodiff graph: every LSTM timestep of every batch allocated a dozen
``Tensor`` nodes with backward closures, and ``loss.backward()`` re-walked
them all.  The fused engine replaces that with hand-written analytic backward
passes (see ``fused_forward_train`` / ``fused_backward_train`` on ``Dense``,
``LSTM``, ``BiLSTM``, ``Sequential`` and the one-shot ``Module.fused_grads``)
plus the two loss heads the repository trains with:

* :func:`fused_mse_loss` — the predictor's regression objective,
* :func:`fused_bce_with_logits_loss` — the MAD-GAN generator/discriminator
  objective, and
* :func:`fused_vae_loss_head` — the LSTM-VAE ELBO (analytic
  :func:`fused_kl_standard_normal` KL + :func:`fused_gaussian_nll_loss`
  reconstruction likelihood), whose gradients seed the detector's
  reparameterized encoder/decoder backward chain.

Both return ``(loss_value, grad_wrt_inputs)`` and mirror the corresponding
autodiff ops operation-for-operation (same clipped sigmoid, same
``sum * (1/count)`` mean, same doubled-residual MSE seeding), so fused
gradients match the graph within 1e-8 and fixed-seed training runs produce
step-for-step matching loss curves — the same recipe
:meth:`~repro.detectors.madgan.SequenceGenerator.inversion_grad` proved for
the latent-only inversion path, generalized to full weight gradients.

Parameter gradients are accumulated with the same semantics as
:meth:`Tensor._accumulate` (``None`` → set, otherwise add), writing the first
contribution into a preallocated per-parameter buffer so a steady-state
training step allocates nothing for its weight gradients.

:class:`FusedTrainer` packages the whole step (zero-grad, fused forward,
loss head, fused backward, clip, optimizer step) and plugs into the existing
:mod:`repro.nn.optim` optimizers unchanged.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

LossHead = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


# ------------------------------------------------------------- accumulation
def add_matmul_grad(
    parameter, buffers: Dict[str, np.ndarray], key: str, a: np.ndarray, b: np.ndarray
) -> None:
    """Accumulate ``a @ b`` into ``parameter.grad`` (skip if grads are off).

    Mirrors the autodiff accumulation contract: a parameter whose ``grad`` is
    ``None`` gets the product written into a reusable preallocated buffer
    (``buffers[key]``); later contributions add on top.  Frozen parameters
    (``requires_grad=False``) skip the matrix multiplication entirely — this
    is what makes the MAD-GAN generator step cheap while the discriminator
    is frozen.
    """
    if not parameter.requires_grad:
        return
    if parameter.grad is None:
        buffer = buffers.get(key)
        if buffer is None or buffer.shape != parameter.data.shape:
            buffer = buffers[key] = np.empty_like(parameter.data)
        np.matmul(a, b, out=buffer)
        parameter.grad = buffer
    else:
        parameter.grad += a @ b


def add_sum_grad(
    parameter, buffers: Dict[str, np.ndarray], key: str, values: np.ndarray, axis
) -> None:
    """Accumulate ``values.sum(axis)`` into ``parameter.grad`` (bias reduction)."""
    if not parameter.requires_grad:
        return
    if parameter.grad is None:
        buffer = buffers.get(key)
        if buffer is None or buffer.shape != parameter.data.shape:
            buffer = buffers[key] = np.empty_like(parameter.data)
        np.sum(values, axis=axis, out=buffer)
        parameter.grad = buffer
    else:
        parameter.grad += values.sum(axis=axis)


# ------------------------------------------------------------------- losses
def fused_mse_loss(
    predictions: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Value and input gradient of :func:`repro.nn.functional.mse_loss`.

    The gradient is seeded exactly as the autodiff ``(d * d).mean()``
    backward: ``d / count`` accumulated twice (doubling is exact in floating
    point), so the fused training step reproduces the graph step.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    difference = predictions - targets
    scale = 1.0 / difference.size
    grad = difference * scale
    grad = grad + grad
    loss = float((difference * difference).sum() * scale)
    return loss, grad


def fused_bce_with_logits_loss(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Value and logit gradient of ``binary_cross_entropy_with_logits``.

    Mirrors the graph formulation ``mean(relu(x) - x * t + log(1 + e^-|x|))``
    term by term; the gradient is the textbook ``sigmoid(x) - t`` expressed
    through the same ``exp(-|x|)`` factorization the graph backward follows,
    so the two paths agree within 1e-8.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    exp_neg_abs = np.exp(-np.abs(logits))
    softplus = np.log(1.0 + exp_neg_abs)
    positive_part = logits * (logits > 0)  # mirrors Tensor.relu
    scale = 1.0 / logits.size
    loss = float((positive_part - logits * targets + softplus).sum() * scale)
    grad = (
        (logits > 0).astype(np.float64)
        - targets
        - np.sign(logits) * (exp_neg_abs / (1.0 + exp_neg_abs))
    ) * scale
    return loss, grad


#: ``log(2π)`` shared by the Gaussian-NLL loss head and the LSTM-VAE scoring
#: path so the trained objective and the serving score use the same constant.
LOG_2PI = float(np.log(2.0 * np.pi))


def fused_gaussian_nll_loss(
    mean: np.ndarray, logvar: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Elementwise-mean Gaussian negative log-likelihood and its gradients.

    The density is parameterized by a predicted mean and log-variance per
    element: ``0.5 * (logvar + (x - mean)^2 * exp(-logvar) + log 2π)``,
    averaged over every element.  Returns ``(loss, d_mean, d_logvar)``; the
    gradients are the textbook derivatives expressed through the same
    ``exp(-logvar)`` factor the loss value uses, so the fused path mirrors a
    graph built from ``exp``/``mul``/``sum`` ops within 1e-8.
    """
    mean = np.asarray(mean, dtype=np.float64)
    logvar = np.asarray(logvar, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    inv_var = np.exp(-logvar)
    difference = mean - targets
    weighted = difference * difference * inv_var
    scale = 1.0 / mean.size
    loss = float((logvar + weighted + LOG_2PI).sum() * (0.5 * scale))
    d_mean = difference * inv_var * scale
    d_logvar = (1.0 - weighted) * (0.5 * scale)
    return loss, d_mean, d_logvar


def fused_kl_standard_normal(
    mu: np.ndarray, logvar: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Elementwise-mean ``KL(N(mu, exp(logvar)) || N(0, 1))`` and gradients.

    The analytic form ``0.5 * (mu^2 + exp(logvar) - logvar - 1)`` needs no
    sampling; returns ``(kl, d_mu, d_logvar)`` with the same elementwise-mean
    reduction as :func:`fused_gaussian_nll_loss` so the two heads compose
    into one ELBO with a single ``beta`` weight.
    """
    mu = np.asarray(mu, dtype=np.float64)
    logvar = np.asarray(logvar, dtype=np.float64)
    var = np.exp(logvar)
    scale = 1.0 / mu.size
    kl = float((mu * mu + var - logvar - 1.0).sum() * (0.5 * scale))
    d_mu = mu * scale
    d_logvar = (var - 1.0) * (0.5 * scale)
    return kl, d_mu, d_logvar


def fused_vae_loss_head(beta: float = 1.0) -> LossHead:
    """Build the LSTM-VAE ELBO loss head: Gaussian NLL + ``beta`` · KL.

    The returned callable plugs into :class:`FusedTrainer` as ``loss``; it
    expects the module's ``fused_forward_train`` to output the 4-tuple
    ``(recon_mean, recon_logvar, mu, logvar)`` (see
    :class:`repro.detectors.lstm_vae.LSTMVAEDetector`) and returns the
    matching 4-tuple of output gradients, with the KL branch scaled by
    ``beta`` exactly as the loss value is.
    """
    if beta < 0:
        raise ValueError("beta must be non-negative")
    beta = float(beta)

    def fused_vae_loss(outputs, targets: np.ndarray):
        recon_mean, recon_logvar, mu, logvar = outputs
        nll, d_mean, d_recon_logvar = fused_gaussian_nll_loss(
            recon_mean, recon_logvar, targets
        )
        kl, d_mu, d_logvar = fused_kl_standard_normal(mu, logvar)
        loss = nll + beta * kl
        return loss, (d_mean, d_recon_logvar, beta * d_mu, beta * d_logvar)

    return fused_vae_loss


FUSED_LOSSES: Dict[str, LossHead] = {
    "mse": fused_mse_loss,
    "bce_logits": fused_bce_with_logits_loss,
    "vae_elbo": fused_vae_loss_head(1.0),
}


# ------------------------------------------------------------------ trainer
class FusedTrainer:
    """Drive graph-free training steps through an existing optimizer.

    Parameters
    ----------
    module:
        A module tree whose layers all implement the fused training path
        (``fused_forward_train`` / ``fused_backward_train``) — e.g. the
        glucose forecaster's ``Sequential(BiLSTM, Dense, Dense)``.
    optimizer:
        Any :mod:`repro.nn.optim` optimizer over ``module.parameters()``.
        The trainer only calls ``zero_grad`` / ``clip_gradients`` / ``step``,
        so Adam and SGD behave exactly as they do on graph gradients.
    loss:
        A :data:`FUSED_LOSSES` name (``"mse"``, ``"bce_logits"``) or any
        callable ``(outputs, targets) -> (loss_value, grad_outputs)``.
    gradient_clip:
        Optional global-norm clip applied between backward and step,
        matching ``Optimizer.clip_gradients``.
    obs:
        Optional :class:`~repro.obs.Observer` profiling the training loop:
        ``train.steps_total`` counts steps, ``train.step_seconds`` times
        them on the registry's wall-clock channel (never in any bitwise
        comparison), and the ``train.grad_buffers`` gauge tracks how many
        preallocated per-parameter gradient buffers the module tree reuses
        (it plateaus after the first step — the fused engine's
        zero-allocation steady state).  None (the default) records nothing
        and changes no arithmetic.

    One :meth:`step` is numerically the graph training step (forward, loss,
    backward, clip, update) with fused gradients pinned to autodiff within
    1e-8 — ``tests/test_nn_fused.py`` and ``scripts/check_parity.py`` enforce
    this; ``scripts/bench_train.py`` tracks the speedup in
    ``BENCH_train.json``.
    """

    def __init__(
        self,
        module,
        optimizer,
        loss: Union[str, LossHead] = "mse",
        gradient_clip: Optional[float] = None,
        obs=None,
    ):
        if isinstance(loss, str):
            if loss not in FUSED_LOSSES:
                raise ValueError(
                    f"unknown fused loss {loss!r}; available: {sorted(FUSED_LOSSES)}"
                )
            loss = FUSED_LOSSES[loss]
        if gradient_clip is not None and gradient_clip <= 0:
            raise ValueError("gradient_clip must be positive or None")
        self.module = module
        self.optimizer = optimizer
        self.loss = loss
        self.gradient_clip = None if gradient_clip is None else float(gradient_clip)
        self.obs = obs

    def _grad_buffer_count(self) -> int:
        """Preallocated fused-gradient buffers across the module tree."""
        return sum(
            len(getattr(module, "_fused_grad_buffers", None) or ())
            for module in self.module.modules()
        )

    def backward(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Fused forward + loss + backward; accumulates gradients, returns the loss.

        Does not touch the optimizer — callers composing multiple loss
        branches (e.g. a GAN discriminator on real and fake batches) can run
        several ``backward`` calls before one ``optimizer.step()``.
        """
        output, cache = self.module.fused_forward_train(inputs)
        loss_value, grad_output = self.loss(output, np.asarray(targets, dtype=np.float64))
        self.module.fused_backward_train(grad_output, cache)
        return loss_value

    def step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One full training step; returns the (pre-update) batch loss."""
        obs = self.obs
        started = perf_counter() if obs is not None else 0.0
        self.optimizer.zero_grad()
        loss_value = self.backward(inputs, targets)
        if self.gradient_clip is not None:
            self.optimizer.clip_gradients(self.gradient_clip)
        self.optimizer.step()
        if obs is not None:
            obs.registry.inc("train.steps_total")
            obs.registry.observe("train.step_batch", len(np.asarray(inputs)))
            obs.registry.set_gauge("train.grad_buffers", self._grad_buffer_count())
            obs.registry.observe_seconds("train.step_seconds", perf_counter() - started)
        return loss_value
