"""Recurrent layers: LSTM cell, unrolled LSTM, and bidirectional LSTM."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import sigmoid as _sigmoid
from repro.nn.initializers import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, concatenate, stack
from repro.utils.rng import as_random_state


class LSTMCell(Module):
    """A single LSTM step.

    The four gate transformations are fused into one matrix multiplication for
    both the input-to-hidden and hidden-to-hidden paths.  Gate order within the
    fused matrices is ``[input, forget, cell, output]``.
    """

    def __init__(self, input_size: int, hidden_size: int, seed=None, forget_bias: float = 1.0):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = as_random_state(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size

        self.weight_input = Parameter(
            xavier_uniform((input_size, 4 * hidden_size), rng), name="weight_input"
        )
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 4 * hidden_size), rng), name="weight_hidden"
        )
        bias = np.zeros(4 * hidden_size)
        # A positive forget-gate bias keeps early gradients flowing through time.
        bias[hidden_size : 2 * hidden_size] = forget_bias
        self.bias = Parameter(bias, name="bias")

    def forward(
        self, inputs, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Advance one timestep.

        Parameters
        ----------
        inputs:
            Tensor of shape ``(batch, input_size)``.
        state:
            Tuple ``(hidden, cell)`` each of shape ``(batch, hidden_size)``.
        """
        inputs = as_tensor(inputs)
        hidden, cell = state
        gates = inputs @ self.weight_input + hidden @ self.weight_hidden + self.bias
        size = self.hidden_size
        input_gate = gates[:, 0:size].sigmoid()
        forget_gate = gates[:, size : 2 * size].sigmoid()
        candidate = gates[:, 2 * size : 3 * size].tanh()
        output_gate = gates[:, 3 * size : 4 * size].sigmoid()

        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def fast_step(
        self,
        input_projection: np.ndarray,
        hidden: np.ndarray,
        cell: np.ndarray,
        gates_buffer: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free LSTM step on raw numpy arrays.

        ``input_projection`` is the precomputed ``x_t @ weight_input`` row
        block (the input projection for every timestep is fused into one
        matrix multiplication by :meth:`LSTM.fast_forward`); ``gates_buffer``
        is a reusable ``(batch, 4 * hidden)`` scratch array so the recurrence
        allocates nothing per timestep beyond the new states.
        """
        np.matmul(hidden, self.weight_hidden.data, out=gates_buffer)
        gates_buffer += input_projection
        gates_buffer += self.bias.data
        size = self.hidden_size
        input_gate = _sigmoid(gates_buffer[:, 0:size])
        forget_gate = _sigmoid(gates_buffer[:, size : 2 * size])
        candidate = np.tanh(gates_buffer[:, 2 * size : 3 * size])
        output_gate = _sigmoid(gates_buffer[:, 3 * size : 4 * size])

        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * np.tanh(new_cell)
        return new_hidden, new_cell

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero-valued hidden and cell state for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """An LSTM layer unrolled over a full sequence.

    Parameters
    ----------
    input_size:
        Number of features per timestep.
    hidden_size:
        Width of the hidden state.
    return_sequences:
        When True the layer outputs the hidden state at every timestep
        (``(batch, time, hidden)``); otherwise only the final hidden state
        (``(batch, hidden)``).
    reverse:
        Process the sequence from last timestep to first (used by
        :class:`BiLSTM`).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        return_sequences: bool = False,
        reverse: bool = False,
        seed=None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, seed=seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.reverse = reverse

    def forward(self, inputs, initial_state: Optional[Tuple[Tensor, Tensor]] = None) -> Tensor:
        inputs = as_tensor(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        batch_size, timesteps, _ = inputs.shape
        state = initial_state or self.cell.initial_state(batch_size)
        hidden, cell = state

        time_order = range(timesteps - 1, -1, -1) if self.reverse else range(timesteps)
        outputs = []
        for step in time_order:
            step_input = inputs[:, step, :]
            hidden, cell = self.cell(step_input, (hidden, cell))
            outputs.append(hidden)

        if not self.return_sequences:
            return hidden
        if self.reverse:
            outputs = outputs[::-1]
        return stack(outputs, axis=1)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        """Graph-free unrolled forward.

        The input-to-hidden projection of *all* timesteps is fused into one
        ``(batch * time, features) @ (features, 4 * hidden)`` matrix
        multiplication, and the per-step recurrence reuses a single gate
        scratch buffer — no :class:`Tensor` nodes are allocated anywhere.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects inputs of shape (batch, time, features), got {inputs.shape}"
            )
        batch_size, timesteps, features = inputs.shape
        size = self.hidden_size
        projections = (
            inputs.reshape(batch_size * timesteps, features) @ self.cell.weight_input.data
        ).reshape(batch_size, timesteps, 4 * size)

        hidden = np.zeros((batch_size, size))
        cell_state = np.zeros((batch_size, size))
        gates_buffer = np.empty((batch_size, 4 * size))
        sequence = (
            np.empty((batch_size, timesteps, size)) if self.return_sequences else None
        )

        time_order = range(timesteps - 1, -1, -1) if self.reverse else range(timesteps)
        for step in time_order:
            hidden, cell_state = self.cell.fast_step(
                projections[:, step, :], hidden, cell_state, gates_buffer
            )
            if sequence is not None:
                sequence[:, step, :] = hidden
        return hidden if sequence is None else sequence


class BiLSTM(Module):
    """A bidirectional LSTM that concatenates forward and backward states.

    When ``return_sequences`` is False the output is the concatenation of the
    final forward hidden state and the final backward hidden state, matching
    the sequence-to-one forecasting architecture of Rubin-Falcone et al. used
    as the paper's target glucose model.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        return_sequences: bool = False,
        seed=None,
    ):
        super().__init__()
        rng = as_random_state(seed)
        forward_seed, backward_seed = rng.spawn(2)
        self.forward_layer = LSTM(
            input_size, hidden_size, return_sequences=return_sequences, seed=forward_seed
        )
        self.backward_layer = LSTM(
            input_size,
            hidden_size,
            return_sequences=return_sequences,
            reverse=True,
            seed=backward_seed,
        )
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(self, inputs) -> Tensor:
        forward_out = self.forward_layer(inputs)
        backward_out = self.backward_layer(inputs)
        return concatenate([forward_out, backward_out], axis=-1)

    def fast_forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        forward_out = self.forward_layer.fast_forward(inputs)
        backward_out = self.backward_layer.fast_forward(inputs)
        return np.concatenate([forward_out, backward_out], axis=-1)
